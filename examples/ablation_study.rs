//! Ablation study (Figs. 5-6 in miniature): trains the full model and
//! each ST-TransRec variant, showing what every component buys.
//!
//! Run with: `cargo run --release --example ablation_study`

use st_transrec::prelude::*;

fn main() {
    let config = synth::SynthConfig::yelp_like().with_scale(0.03);
    let (dataset, _) = synth::generate(&config);
    let target = CityId(config.target_city as u16);
    let split = CrossingCitySplit::build(&dataset, target);
    let eval_cfg = EvalConfig::default();

    let variants = [
        (Variant::Full, "ST-TransRec (full)"),
        (Variant::NoMmd, "ST-TransRec-1 (no MMD transfer)"),
        (Variant::NoText, "ST-TransRec-2 (no textual context)"),
        (Variant::NoResample, "ST-TransRec-3 (no resampling)"),
    ];

    let mut results = Vec::new();
    for (variant, label) in variants {
        eprintln!("training {label}...");
        let mut cfg = ModelConfig::yelp();
        cfg.epochs = 3;
        let cfg = cfg.with_variant(variant);
        let mut model = STTransRec::new(&dataset, &split, cfg);
        model.fit(&dataset);
        let report = evaluate(&model, &dataset, &split, &eval_cfg);
        results.push((label, report));
    }

    println!("\n{:>36}{:>12}{:>12}", "variant", "Recall@10", "NDCG@10");
    for (label, report) in &results {
        println!(
            "{label:>36}{:>12.4}{:>12.4}",
            report.get(Metric::Recall, 10),
            report.get(Metric::Ndcg, 10)
        );
    }
    let full = results[0].1.get(Metric::Ndcg, 10);
    println!("\nFull-model NDCG@10 improvement over each variant:");
    for (label, report) in &results[1..] {
        let theirs = report.get(Metric::Ndcg, 10);
        println!(
            "  {label}: {:+.2}%",
            (full - theirs) / theirs.max(1e-9) * 100.0
        );
    }
}
