//! Quickstart: generate a crossing-city dataset, train ST-TransRec,
//! evaluate it under the paper's protocol, and print recommendations
//! for a first-time visitor.
//!
//! Run with: `cargo run --release --example quickstart`

use st_transrec::prelude::*;

fn main() {
    // A small Yelp-like world: Phoenix (source) and Las Vegas (target).
    let config = synth::SynthConfig::yelp_like().with_scale(0.03);
    let (dataset, _) = synth::generate(&config);
    let target = CityId(config.target_city as u16);
    println!("Generated: {}", DatasetStats::compute(&dataset, target));

    // Hold out the crossing-city users' target check-ins.
    let split = CrossingCitySplit::build(&dataset, target);
    println!(
        "\n{} crossing-city test users, {} training check-ins\n",
        split.test_users.len(),
        split.train.len()
    );

    // Train the full model (small epochs for a quick demo).
    let mut model_config = ModelConfig::yelp();
    model_config.epochs = 3;
    let mut model = STTransRec::new(&dataset, &split, model_config);
    for epoch in model.fit(&dataset) {
        println!(
            "epoch {}: L_I^s={:.4} L_I^t={:.4} L_G^s={:.4} L_G^t={:.4} MMD={:.4}",
            epoch.epoch,
            epoch.losses.interaction_source,
            epoch.losses.interaction_target,
            epoch.losses.context_source,
            epoch.losses.context_target,
            epoch.losses.mmd,
        );
    }

    // Evaluate with the paper's 100-negative ranking protocol.
    let report = evaluate(&model, &dataset, &split, &EvalConfig::default());
    println!("\n{report}\n");

    // Top-5 recommendations for the first test user.
    let user = split.test_users[0];
    println!("Top-5 Las Vegas recommendations for user {:?}:", user);
    let truth = split.ground_truth_for(0);
    for rec in recommend_top_k(&model, &dataset, user, target, 5, &[]) {
        let poi = dataset.poi(rec.poi);
        let hit = if truth.contains(&rec.poi) {
            "  <- ground truth"
        } else {
            ""
        };
        println!("  {:.3}  {}{hit}", rec.score, poi.name);
    }
}
