//! Region explorer: runs the paper's Algorithm 1 on the synthetic Los
//! Angeles, prints the uniformly accessible regions with their
//! densities, and shows how the density-based resampler (Eq. 6-9)
//! rebalances the POI distribution — Fig. 2, reproduced in ASCII.
//!
//! Run with: `cargo run --release --example region_explorer`

use rand::{rngs::SmallRng, SeedableRng};
use st_transrec::core::CityResampler;
use st_transrec::geo::RegionId;
use st_transrec::prelude::*;

fn main() {
    let config = synth::SynthConfig::foursquare_like().with_scale(0.05);
    let (dataset, _) = synth::generate(&config);
    let target = CityId(0); // Los Angeles
    let split = CrossingCitySplit::build(&dataset, target);

    let mut rng = SmallRng::seed_from_u64(42);
    let alpha = 0.10;
    let resampler = CityResampler::build(
        &dataset,
        &split.train,
        target,
        24, // grid n (reduced with the dataset scale)
        0.10,
        alpha,
        &mut rng,
    );

    let seg = resampler.segmentation();
    let densities = resampler.densities();
    println!(
        "Los Angeles: {} check-ins across {} uniformly accessible regions (delta = 0.10)\n",
        resampler.raw_checkins(),
        seg.num_regions()
    );
    println!(
        "{:>8}{:>8}{:>12}{:>10}{:>12}",
        "region", "cells", "check-ins", "density", "quota n'_r"
    );
    let mut regions: Vec<RegionId> = (0..seg.num_regions()).map(RegionId).collect();
    regions.sort_by(|&a, &b| {
        densities
            .density(b)
            .partial_cmp(&densities.density(a))
            .expect("finite")
    });
    for &r in regions.iter().take(12) {
        println!(
            "{:>8}{:>8}{:>12}{:>10.2}{:>12}",
            r.0,
            densities.size(r),
            densities.count(r),
            densities.density(r),
            densities.resample_quota(r)
        );
    }
    if regions.len() > 12 {
        println!("     ... {} more regions", regions.len() - 12);
    }

    println!(
        "\nTotal resampling quota: {} check-ins; alpha = {alpha} admits {:.0} of them.",
        densities.total_quota(),
        resampler.resample_mass()
    );

    // Show the rebalancing effect: sample POIs with and without alpha.
    let densest = densities.densest().expect("non-empty city");
    let share = |alpha: f64| -> f64 {
        let mut rng = SmallRng::seed_from_u64(7);
        let r = CityResampler::build(&dataset, &split.train, target, 24, 0.10, alpha, &mut rng);
        let n = 20_000;
        let hits = r
            .sample_batch(n, &mut rng)
            .into_iter()
            .filter(|&p| r.region_of_poi(&dataset, p) == Some(densest))
            .count();
        hits as f64 / n as f64
    };
    println!("\nShare of MMD batch drawn from the densest region:");
    for a in [0.0, 0.05, 0.10, 0.5, 1.0] {
        println!("  alpha = {a:<5} -> {:.1}%", share(a) * 100.0);
    }
    println!("\n(alpha = 0 is the raw skew; alpha = 1 fully levels region densities)");
}
