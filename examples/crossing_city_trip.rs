//! A narrated crossing-city trip: a source-city user travels to Los
//! Angeles; we inspect their source-city taste profile, then compare
//! what the full model vs the no-text ablation would recommend —
//! the paper's Table 3 scenario, end to end.
//!
//! Run with: `cargo run --release --example crossing_city_trip`

use st_transrec::core::{case_study, Variant};
use st_transrec::data::UserId;
use st_transrec::prelude::*;

fn main() {
    let config = synth::SynthConfig::foursquare_like().with_scale(0.03);
    let (dataset, _) = synth::generate(&config);
    let target = CityId(config.target_city as u16);
    let split = CrossingCitySplit::build(&dataset, target);

    // The traveller with the richest source-city history.
    let (idx, user): (usize, UserId) = split
        .test_users
        .iter()
        .enumerate()
        .max_by_key(|(_, &u)| split.train.iter().filter(|c| c.user == u).count())
        .map(|(i, &u)| (i, u))
        .expect("test users exist");
    let truth = split.ground_truth_for(idx);
    println!(
        "User #{} has {} source-city check-ins and {} held-out {} visits.\n",
        user.0,
        split.train.iter().filter(|c| c.user == user).count(),
        truth.len(),
        dataset.city(target).name
    );

    let train_variant = |variant: Variant| {
        let mut cfg = ModelConfig::foursquare();
        cfg.epochs = 3;
        let cfg = cfg.with_variant(variant);
        let mut model = STTransRec::new(&dataset, &split, cfg);
        model.fit(&dataset);
        case_study(&model, &dataset, &split.train, user, target, truth, 5, 5)
    };

    let full = train_variant(Variant::Full);
    println!("Source-city taste profile (top-10 words):");
    println!("  {}\n", full.profile_words.join(", "));

    println!("== Rank list of ST-TransRec (full) ==");
    for e in &full.entries {
        let mark = if e.is_ground_truth {
            " [GROUND TRUTH]"
        } else {
            ""
        };
        println!("  {}{mark}\n    words: {}", e.name, e.words.join(", "));
    }

    let no_text = train_variant(Variant::NoText);
    println!("\n== Rank list of ST-TransRec-2 (no textual context) ==");
    for e in &no_text.entries {
        let mark = if e.is_ground_truth {
            " [GROUND TRUTH]"
        } else {
            ""
        };
        println!("  {}{mark}\n    words: {}", e.name, e.words.join(", "));
    }

    let hits =
        |cs: &st_transrec::core::CaseStudy| cs.entries.iter().filter(|e| e.is_ground_truth).count();
    println!(
        "\nGround-truth hits in top-5: full model {} vs no-text {}",
        hits(&full),
        hits(&no_text)
    );
}
