//! Head-to-head: fits ST-TransRec and all eight baselines of the paper
//! on one small dataset and prints the Fig. 3/4-style comparison.
//!
//! Run with: `cargo run --release --example compare_baselines`

use st_transrec::baselines::{fit_method, Budget, Method};
use st_transrec::prelude::*;

fn main() {
    let config = synth::SynthConfig::yelp_like().with_scale(0.03);
    let (dataset, _) = synth::generate(&config);
    let target = CityId(config.target_city as u16);
    let split = CrossingCitySplit::build(&dataset, target);
    let eval_cfg = EvalConfig::default();

    let mut neural = ModelConfig::yelp();
    neural.epochs = 3;

    let mut rows: Vec<(String, MetricReport)> = Vec::new();
    for method in Method::ALL {
        eprintln!("fitting {}...", method.name());
        let scorer = fit_method(method, &dataset, &split, &neural, Budget::Quick);
        let report = evaluate(&*scorer, &dataset, &split, &eval_cfg);
        rows.push((method.name().to_string(), report));
    }
    eprintln!("fitting ST-TransRec...");
    let mut model = STTransRec::new(&dataset, &split, neural);
    model.fit(&dataset);
    rows.push((
        "ST-TransRec".to_string(),
        evaluate(&model, &dataset, &split, &eval_cfg),
    ));

    println!(
        "\n{:>14}{:>10}{:>10}{:>10}{:>10}",
        "method", "Recall", "Prec", "NDCG", "MAP"
    );
    println!(
        "{:>14}{:>10}{:>10}{:>10}{:>10}",
        "", "@10", "@10", "@10", "@10"
    );
    for (name, report) in &rows {
        println!(
            "{name:>14}{:>10.4}{:>10.4}{:>10.4}{:>10.4}",
            report.get(Metric::Recall, 10),
            report.get(Metric::Precision, 10),
            report.get(Metric::Ndcg, 10),
            report.get(Metric::Map, 10),
        );
    }
}
