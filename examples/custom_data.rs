//! Bring-your-own-data walkthrough: export a dataset to the text
//! interchange format, reload it (as you would a real check-in dump),
//! train, checkpoint the model, and restore it for serving.
//!
//! Run with: `cargo run --release --example custom_data`

use st_transrec::data::{read_dataset, write_dataset};
use st_transrec::prelude::*;
use std::io::BufReader;

fn main() {
    // 1. In real use this file comes from your own check-in logs; here we
    //    export a synthetic dataset to show the format.
    let (original, _) = synth::generate(&synth::SynthConfig::tiny());
    let mut text = Vec::new();
    write_dataset(&original, &mut text).expect("serialize dataset");
    println!(
        "Serialized {} check-ins / {} POIs to {} bytes of text.",
        original.checkins().len(),
        original.num_pois(),
        text.len()
    );
    println!("First lines:");
    for line in String::from_utf8_lossy(&text).lines().take(4) {
        println!("  {line}");
    }

    // 2. Load it back — this is the entry point for your own data.
    let dataset = read_dataset(BufReader::new(text.as_slice())).expect("parse dataset");
    let target = CityId(1);
    let split = CrossingCitySplit::build(&dataset, target);
    println!(
        "\nLoaded: {} users, {} crossing-city test users.",
        dataset.num_users(),
        split.test_users.len()
    );

    // 3. Train and evaluate.
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    model.fit(&dataset);
    let report = evaluate(&model, &dataset, &split, &EvalConfig::default());
    println!("\n{report}");

    // 4. Checkpoint atomically (temp file + rename — the same writer the
    //    trainer and server use), then restore into a fresh model for
    //    serving — scores are bit-identical.
    let dir = std::env::temp_dir().join(format!("st-custom-data-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let ckpt = dir.join("model.bin");
    st_transrec::tensor::save_params_atomic(model.params(), &ckpt).expect("save checkpoint");
    let mut serving = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    serving
        .restore(BufReader::new(
            std::fs::File::open(&ckpt).expect("open checkpoint"),
        ))
        .expect("restore");

    let user = split.test_users[0];
    let pois = dataset.pois_in_city(target);
    assert_eq!(
        model.score_batch(user, pois),
        serving.score_batch(user, pois),
        "restored model must score identically"
    );
    println!(
        "Checkpoint restored ({} bytes); serving scores verified identical.",
        std::fs::metadata(&ckpt).expect("stat checkpoint").len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
