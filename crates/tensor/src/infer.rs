//! The tape-free inference executor.
//!
//! [`InferCtx`] evaluates a forward tower through the shared op layer
//! ([`crate::ops`]) with none of the training machinery: no tape nodes,
//! no backward closures, no RNG, and — once its two scratch buffers have
//! grown to the workload's steady-state shapes — no allocations per
//! call. The activation ping-pongs between a *current* and a *next*
//! buffer; each op either transforms the current buffer in place
//! (activations) or writes into the next one and swaps (the affine
//! layer).
//!
//! Bit-identity with the tape path is a hard guarantee, not a tolerance:
//! both executors call the same [`crate::ops`] functions over the same
//! blocked kernels, so for equal weights and inputs their outputs are
//! equal to the last bit. The differential test suites assert exactly
//! that, which is what lets serving swap executors without responses
//! changing by a single byte.

use crate::nn::Activation;
use crate::storage::RowSource;
use crate::{ops, Matrix};

/// Reusable scratch state for tape-free forward evaluation.
///
/// Create one per thread (or per long-lived consumer, e.g. the serve
/// batcher) and reuse it across calls; the scratch buffers are resized
/// in place and only reallocate while still growing toward the
/// workload's largest shapes. [`InferCtx::grow_events`] counts those
/// reallocations, so "zero steady-state allocations" is a measurable
/// property, not a claim.
#[derive(Debug, Default)]
pub struct InferCtx {
    /// The current activation.
    cur: Matrix,
    /// Scratch for the next layer's output.
    nxt: Matrix,
    /// Buffer-capacity growths since construction.
    grows: usize,
}

impl InferCtx {
    /// A fresh context with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times a scratch buffer had to grow its allocation. In
    /// steady state (same shapes call after call) this stops increasing.
    pub fn grow_events(&self) -> usize {
        self.grows
    }

    /// Reshapes `m`'s storage to a zero-filled `r x c`, reallocating only
    /// if the capacity is insufficient (counted in `grows`).
    fn reshape_zeroed(m: Matrix, r: usize, c: usize, grows: &mut usize) -> Matrix {
        let mut v = m.into_vec();
        if v.capacity() < r * c {
            *grows += 1;
        }
        v.clear();
        v.resize(r * c, 0.0);
        Matrix::from_vec(r, c, v)
    }

    /// Loads an explicit input batch (copied into scratch).
    pub fn set_input(&mut self, x: &Matrix) {
        let (r, c) = x.shape();
        self.cur = Self::reshape_zeroed(std::mem::take(&mut self.cur), r, c, &mut self.grows);
        self.cur.as_mut_slice().copy_from_slice(x.as_slice());
    }

    /// Loads the fused embedding gather + pair concat
    /// `[a[ai[i]] | b[bi[i]]]` as the current activation — the
    /// interaction tower's input, built without intermediate gather
    /// matrices. The tables may be plain matrices or quantized/mapped
    /// [`crate::TableStorage`]; quantized rows dequantize straight into
    /// the scratch buffer.
    ///
    /// # Panics
    /// Panics if the index slices differ in length or any index is out
    /// of range.
    pub fn gather_concat2<A: RowSource + ?Sized, B: RowSource + ?Sized>(
        &mut self,
        a: &A,
        ai: &[usize],
        b: &B,
        bi: &[usize],
    ) {
        let (r, c) = (ai.len(), a.cols() + b.cols());
        self.cur = Self::reshape_zeroed(std::mem::take(&mut self.cur), r, c, &mut self.grows);
        ops::gather_concat2_assign(a, ai, b, bi, &mut self.cur);
    }

    /// The affine map `x W + b`: multiplies the current activation by `w`
    /// into the next buffer, adds the bias row, and swaps the buffers.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn linear(&mut self, w: &Matrix, b: &Matrix) {
        let (r, c) = (self.cur.rows(), w.cols());
        self.nxt = Self::reshape_zeroed(std::mem::take(&mut self.nxt), r, c, &mut self.grows);
        ops::matmul(&self.cur, w, &mut self.nxt);
        ops::add_row_broadcast_assign(&mut self.nxt, b);
        std::mem::swap(&mut self.cur, &mut self.nxt);
    }

    /// Applies `act` to the current activation in place.
    pub fn activation(&mut self, act: Activation) {
        ops::activation_assign(act, &mut self.cur);
    }

    /// Applies the stable logistic sigmoid in place (the Eq. 12 output
    /// layer).
    pub fn sigmoid(&mut self) {
        ops::sigmoid_assign(&mut self.cur);
    }

    /// The current activation (the evaluation's output after the last
    /// op).
    pub fn value(&self) -> &Matrix {
        &self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ping_pong_matches_matrix_math() {
        let x = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        let w = Matrix::from_vec(3, 2, vec![0.5, 1.0, -1.0, 0.25, 2.0, -0.5]);
        let b = Matrix::row_vec(&[0.1, -0.2]);
        let mut ctx = InferCtx::new();
        ctx.set_input(&x);
        ctx.linear(&w, &b);
        assert_eq!(ctx.value(), &x.matmul(&w).add_row_broadcast(&b));
    }

    #[test]
    fn scratch_reaches_zero_allocation_steady_state() {
        let x = Matrix::from_vec(4, 3, vec![0.25; 12]);
        let w = Matrix::from_vec(3, 3, vec![0.5; 9]);
        let b = Matrix::row_vec(&[0.0; 3]);
        let mut ctx = InferCtx::new();
        for _ in 0..3 {
            ctx.set_input(&x);
            ctx.linear(&w, &b);
            ctx.activation(Activation::Relu);
        }
        let settled = ctx.grow_events();
        for _ in 0..10 {
            ctx.set_input(&x);
            ctx.linear(&w, &b);
            ctx.activation(Activation::Relu);
        }
        assert_eq!(ctx.grow_events(), settled, "scratch kept reallocating");
    }

    #[test]
    fn empty_batch_is_harmless() {
        let table = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(4, 1, vec![1.0; 4]);
        let b = Matrix::row_vec(&[0.0]);
        let mut ctx = InferCtx::new();
        ctx.gather_concat2(&table, &[], &table, &[]);
        ctx.linear(&w, &b);
        ctx.sigmoid();
        assert_eq!(ctx.value().shape(), (0, 1));
    }
}
