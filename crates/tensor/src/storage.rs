//! Table storage behind the embedding-table API: owned or memory-mapped,
//! f32 or quantized.
//!
//! Embedding tables at serving time are read-only and dominated by
//! gathers, so they do not need to live as owned `f32` matrices. A
//! [`TableStorage`] is the set of representations the snapshot layer can
//! hand to the gather kernels:
//!
//! - [`TableStorage::F32`] — today's owned [`Matrix`] (what training and
//!   live capture produce).
//! - [`TableStorage::F32Bytes`] — little-endian `f32` rows viewed
//!   straight out of a byte region (typically a mapped v2 snapshot):
//!   zero-copy reload, full precision.
//! - [`TableStorage::F16`] — 2 bytes/element, dequantized on gather.
//! - [`TableStorage::I8`] — 1 byte/element + one `f32` scale per row,
//!   dequantized on gather.
//!
//! Byte-backed variants share their backing region through [`Bytes`],
//! which is either an owned buffer or a slice of a [`Mmap`]; cloning a
//! storage clones an `Arc`, never table bytes. The gather kernels
//! ([`crate::ops::gather_concat2_assign`], [`crate::ops::nearest_centroids`])
//! are generic over [`RowSource`], so dequantization happens *inside*
//! the gather — fused, row at a time, straight into the destination
//! buffer — and quantized tables never materialize as `f32` matrices on
//! the serving path.
//!
//! All multi-byte values are little-endian; rows are decoded with
//! explicit `from_le_bytes` element loads (no pointer casts), so a
//! mapped region with any alignment is safe by construction — the v2
//! container still 64-byte-aligns every tensor for cache-line friendly
//! access.

use crate::quant::{f16_bits_to_f32, f32_to_f16_bits, quantize_row_i8};
use crate::Matrix;
use std::sync::Arc;

/// A read-only memory-mapped file region (whole file).
///
/// On unix this is a real `mmap(2)` (private, read-only) so reloading a
/// snapshot touches no table bytes until they are gathered, and the OS
/// page cache shares hot pages across processes. Elsewhere it degrades
/// to reading the file into memory (same API, no zero-copy).
///
/// The serving publish protocol only ever *renames* a new snapshot over
/// the old path; the mapped inode is never truncated in place, so an
/// established mapping stays valid for its lifetime.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut core::ffi::c_void,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mmap {
    /// Maps `file` read-only in its entirety. Zero-length files map to an
    /// empty slice without calling `mmap` (which rejects length 0).
    #[cfg(unix)]
    pub fn map(file: &std::fs::File) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: a fresh private read-only mapping of a file we own a
        // handle to; the result is checked against MAP_FAILED below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self { ptr, len })
    }

    /// Fallback for non-unix targets: reads the file into memory.
    #[cfg(not(unix))]
    pub fn map(file: &std::fs::File) -> std::io::Result<Self> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Self { buf })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len come from a successful mmap that lives as
            // long as `self`; the mapping is never mutated or unmapped
            // before drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for an empty mapping.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: exact ptr/len pair returned by mmap.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

// SAFETY: the mapping is private and read-only for its entire lifetime;
// shared references to immutable bytes are Send + Sync.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

/// The backing allocation a [`Bytes`] region points into.
#[derive(Debug, Clone)]
enum BytesBacking {
    Owned(Arc<Vec<u8>>),
    Mapped(Arc<Mmap>),
}

/// A cheaply clonable view of a byte range inside a shared backing
/// buffer (owned or memory-mapped). This is how several tables in one
/// snapshot share a single mapping without lifetimes leaking into the
/// storage API.
#[derive(Debug, Clone)]
pub struct Bytes {
    backing: BytesBacking,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Wraps an owned buffer in full.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            backing: BytesBacking::Owned(Arc::new(v)),
            offset: 0,
            len,
        }
    }

    /// A sub-range of an owned shared buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn from_arc(buf: Arc<Vec<u8>>, offset: usize, len: usize) -> Self {
        assert!(offset.checked_add(len).is_some_and(|end| end <= buf.len()));
        Self {
            backing: BytesBacking::Owned(buf),
            offset,
            len,
        }
    }

    /// A sub-range of a shared mapping.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn from_mmap(map: Arc<Mmap>, offset: usize, len: usize) -> Self {
        assert!(offset.checked_add(len).is_some_and(|end| end <= map.len()));
        Self {
            backing: BytesBacking::Mapped(map),
            offset,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        let full = match &self.backing {
            BytesBacking::Owned(v) => v.as_slice(),
            BytesBacking::Mapped(m) => m.as_slice(),
        };
        &full[self.offset..self.offset + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty view.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the view reads straight out of a memory-mapped file
    /// (zero-copy) rather than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, BytesBacking::Mapped(_))
    }
}

/// The on-disk (and in-memory) encoding of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageEncoding {
    /// 4 bytes/element, exact.
    F32,
    /// 2 bytes/element IEEE binary16.
    F16,
    /// 1 byte/element plus a 4-byte per-row scale.
    I8,
}

impl StorageEncoding {
    /// The container's one-byte encoding tag.
    pub fn code(self) -> u8 {
        match self {
            StorageEncoding::F32 => 0,
            StorageEncoding::F16 => 1,
            StorageEncoding::I8 => 2,
        }
    }

    /// Parses the container tag.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(StorageEncoding::F32),
            1 => Some(StorageEncoding::F16),
            2 => Some(StorageEncoding::I8),
            _ => None,
        }
    }

    /// Bytes of element data per row of `cols` columns (excluding the
    /// per-row scale for [`StorageEncoding::I8`]).
    pub fn row_data_bytes(self, cols: usize) -> usize {
        match self {
            StorageEncoding::F32 => 4 * cols,
            StorageEncoding::F16 => 2 * cols,
            StorageEncoding::I8 => cols,
        }
    }

    /// Total stored bytes per row, including per-row scales.
    pub fn bytes_per_row(self, cols: usize) -> usize {
        match self {
            StorageEncoding::I8 => cols + 4,
            other => other.row_data_bytes(cols),
        }
    }
}

impl std::fmt::Display for StorageEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageEncoding::F32 => "f32",
            StorageEncoding::F16 => "f16",
            StorageEncoding::I8 => "int8",
        })
    }
}

impl std::str::FromStr for StorageEncoding {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(StorageEncoding::F32),
            "f16" => Ok(StorageEncoding::F16),
            "int8" | "i8" => Ok(StorageEncoding::I8),
            other => Err(format!(
                "unknown storage encoding '{other}' (expected f32, f16 or int8)"
            )),
        }
    }
}

/// Rows of `f32`s that a gather kernel can copy out, whatever the
/// underlying representation. Implemented by [`Matrix`] (plain copy) and
/// [`TableStorage`] (dequantize-on-read for quantized variants).
pub trait RowSource {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Row width.
    fn cols(&self) -> usize;
    /// Writes row `row` (decoded to `f32`) into `out`.
    ///
    /// # Panics
    /// Panics if `row` is out of range or `out.len() != self.cols()`.
    fn copy_row_into(&self, row: usize, out: &mut [f32]);
}

impl RowSource for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn copy_row_into(&self, row: usize, out: &mut [f32]) {
        out.copy_from_slice(self.row(row));
    }
}

/// One embedding table in any supported representation. See the module
/// docs for the variants' trade-offs.
#[derive(Debug, Clone)]
pub enum TableStorage {
    /// Owned full-precision matrix (training capture).
    F32(Matrix),
    /// Little-endian `f32` rows viewed out of a shared byte region
    /// (mapped v2 snapshot): zero-copy, full precision.
    F32Bytes {
        /// Table height.
        rows: usize,
        /// Row width.
        cols: usize,
        /// `rows * cols * 4` little-endian bytes.
        data: Bytes,
    },
    /// IEEE binary16 elements, dequantized on gather.
    F16 {
        /// Table height.
        rows: usize,
        /// Row width.
        cols: usize,
        /// `rows * cols * 2` little-endian bytes.
        data: Bytes,
    },
    /// int8 elements with one `f32` scale per row, dequantized on
    /// gather.
    I8 {
        /// Table height.
        rows: usize,
        /// Row width.
        cols: usize,
        /// `rows * cols` bytes of quantized elements.
        data: Bytes,
        /// `rows * 4` little-endian bytes of per-row scales.
        scales: Bytes,
    },
}

impl TableStorage {
    /// Encodes a matrix into the requested representation (owned
    /// buffers). [`StorageEncoding::F32`] keeps the matrix as is.
    pub fn encode(m: &Matrix, encoding: StorageEncoding) -> Self {
        match encoding {
            StorageEncoding::F32 => TableStorage::F32(m.clone()),
            StorageEncoding::F16 => {
                let mut data = Vec::with_capacity(m.len() * 2);
                for &x in m.as_slice() {
                    data.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
                }
                TableStorage::F16 {
                    rows: m.rows(),
                    cols: m.cols(),
                    data: Bytes::from_vec(data),
                }
            }
            StorageEncoding::I8 => {
                let (rows, cols) = m.shape();
                let mut data = vec![0u8; rows * cols];
                let mut scales = Vec::with_capacity(rows * 4);
                let mut qrow = vec![0i8; cols];
                for r in 0..rows {
                    let scale = quantize_row_i8(m.row(r), &mut qrow);
                    scales.extend_from_slice(&scale.to_le_bytes());
                    for (dst, &q) in data[r * cols..(r + 1) * cols].iter_mut().zip(&qrow) {
                        *dst = q as u8;
                    }
                }
                TableStorage::I8 {
                    rows,
                    cols,
                    data: Bytes::from_vec(data),
                    scales: Bytes::from_vec(scales),
                }
            }
        }
    }

    /// The table's encoding.
    pub fn encoding(&self) -> StorageEncoding {
        match self {
            TableStorage::F32(_) | TableStorage::F32Bytes { .. } => StorageEncoding::F32,
            TableStorage::F16 { .. } => StorageEncoding::F16,
            TableStorage::I8 { .. } => StorageEncoding::I8,
        }
    }

    /// Table height.
    pub fn rows(&self) -> usize {
        match self {
            TableStorage::F32(m) => m.rows(),
            TableStorage::F32Bytes { rows, .. }
            | TableStorage::F16 { rows, .. }
            | TableStorage::I8 { rows, .. } => *rows,
        }
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        match self {
            TableStorage::F32(m) => m.cols(),
            TableStorage::F32Bytes { cols, .. }
            | TableStorage::F16 { cols, .. }
            | TableStorage::I8 { cols, .. } => *cols,
        }
    }

    /// Bytes of table storage held by this representation (element data
    /// plus per-row scales; excludes `Arc`/struct overhead).
    pub fn stored_bytes(&self) -> usize {
        match self {
            TableStorage::F32(m) => m.len() * 4,
            TableStorage::F32Bytes { data, .. } | TableStorage::F16 { data, .. } => data.len(),
            TableStorage::I8 { data, scales, .. } => data.len() + scales.len(),
        }
    }

    /// True when the bytes are served straight out of a memory-mapped
    /// snapshot (zero-copy reload).
    pub fn is_mapped(&self) -> bool {
        match self {
            TableStorage::F32(_) => false,
            TableStorage::F32Bytes { data, .. } | TableStorage::F16 { data, .. } => {
                data.is_mapped()
            }
            TableStorage::I8 { data, .. } => data.is_mapped(),
        }
    }

    /// Decodes the full table into an owned matrix (migration and
    /// differential-test path; the serving path gathers rows instead).
    pub fn to_matrix(&self) -> Matrix {
        match self {
            TableStorage::F32(m) => m.clone(),
            _ => {
                let (rows, cols) = (self.rows(), self.cols());
                let mut out = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    self.copy_row_into(r, out.row_mut(r));
                }
                out
            }
        }
    }
}

impl RowSource for TableStorage {
    fn rows(&self) -> usize {
        TableStorage::rows(self)
    }

    fn cols(&self) -> usize {
        TableStorage::cols(self)
    }

    fn copy_row_into(&self, row: usize, out: &mut [f32]) {
        let cols = TableStorage::cols(self);
        assert!(
            row < TableStorage::rows(self),
            "row {row} out of {} rows",
            TableStorage::rows(self)
        );
        assert_eq!(out.len(), cols, "destination width mismatch");
        match self {
            TableStorage::F32(m) => out.copy_from_slice(m.row(row)),
            TableStorage::F32Bytes { data, .. } => {
                let raw = &data.as_slice()[row * cols * 4..(row + 1) * cols * 4];
                for (o, c) in out.iter_mut().zip(raw.chunks_exact(4)) {
                    *o = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                }
            }
            TableStorage::F16 { data, .. } => {
                let raw = &data.as_slice()[row * cols * 2..(row + 1) * cols * 2];
                for (o, c) in out.iter_mut().zip(raw.chunks_exact(2)) {
                    *o = f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]));
                }
            }
            TableStorage::I8 { data, scales, .. } => {
                let raw = &data.as_slice()[row * cols..(row + 1) * cols];
                let s = &scales.as_slice()[row * 4..row * 4 + 4];
                let scale = f32::from_le_bytes([s[0], s[1], s[2], s[3]]);
                // Fused dequantize into the destination row: i8 -> f32
                // multiply, no intermediate buffer.
                for (o, &q) in out.iter_mut().zip(raw) {
                    *o = f32::from(q as i8) * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::i8_row_error_bound;

    fn sample() -> Matrix {
        let mut v = Vec::new();
        for i in 0..6 * 5 {
            v.push(((i * 37 % 100) as f32 - 50.0) / 40.0);
        }
        Matrix::from_vec(6, 5, v)
    }

    #[test]
    fn f32_encoding_is_identity() {
        let m = sample();
        let s = TableStorage::encode(&m, StorageEncoding::F32);
        assert_eq!(s.encoding(), StorageEncoding::F32);
        assert_eq!(s.to_matrix(), m);
        assert_eq!(s.stored_bytes(), m.len() * 4);
    }

    #[test]
    fn f32_bytes_roundtrip_is_exact() {
        let m = sample();
        let mut raw = Vec::new();
        for &x in m.as_slice() {
            raw.extend_from_slice(&x.to_le_bytes());
        }
        let s = TableStorage::F32Bytes {
            rows: m.rows(),
            cols: m.cols(),
            data: Bytes::from_vec(raw),
        };
        assert_eq!(s.to_matrix(), m);
        assert!(!s.is_mapped());
    }

    #[test]
    fn quantized_roundtrips_within_bounds() {
        let m = sample();
        let f16 = TableStorage::encode(&m, StorageEncoding::F16).to_matrix();
        for (&x, &y) in m.as_slice().iter().zip(f16.as_slice()) {
            assert!((x - y).abs() <= x.abs() / 1024.0 + 1e-7, "f16 {x} -> {y}");
        }
        let i8t = TableStorage::encode(&m, StorageEncoding::I8);
        assert_eq!(i8t.stored_bytes(), m.len() + m.rows() * 4);
        let i8m = i8t.to_matrix();
        for r in 0..m.rows() {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let bound = i8_row_error_bound(max_abs) * 1.0001 + 1e-9;
            for (&x, &y) in m.row(r).iter().zip(i8m.row(r)) {
                assert!((x - y).abs() <= bound, "i8 row {r}: {x} -> {y}");
            }
        }
    }

    #[test]
    fn bytes_per_row_accounting() {
        assert_eq!(StorageEncoding::F32.bytes_per_row(64), 256);
        assert_eq!(StorageEncoding::F16.bytes_per_row(64), 128);
        assert_eq!(StorageEncoding::I8.bytes_per_row(64), 68);
    }

    #[test]
    fn mmap_roundtrips_file_bytes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("st-tensor-mmap-{}", std::process::id()));
        std::fs::write(&path, b"hello mapped world").unwrap();
        let map = Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(map.as_slice(), b"hello mapped world");
        // Empty files map to an empty slice.
        std::fs::write(&path, b"").unwrap();
        let empty = Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap();
        assert!(empty.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bytes_subranges_share_backing() {
        let buf = Arc::new((0u8..64).collect::<Vec<u8>>());
        let a = Bytes::from_arc(buf.clone(), 0, 16);
        let b = Bytes::from_arc(buf.clone(), 16, 48);
        assert_eq!(a.as_slice()[15], 15);
        assert_eq!(b.as_slice()[0], 16);
        assert_eq!(b.len(), 48);
    }
}
