//! Persistent parameter storage shared across training steps.
//!
//! Trainable parameters live in a [`ParamStore`], addressed by the
//! copyable [`ParamId`] newtype. Each training step builds a fresh
//! [`crate::Tape`] over the store, runs backward, and collects gradients
//! into a [`Gradients`] buffer keyed by the same ids, which an optimizer
//! then applies.

use crate::{Init, Matrix};
use rand::Rng;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Named, trainable parameter matrices.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter initialized by `init`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> ParamId {
        self.register_value(name, init.sample(rows, cols, rng))
    }

    /// Registers a parameter with an explicit initial value.
    pub fn register_value(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Immutable access to a parameter's current value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter's current value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (v, n))| (ParamId(i), n.as_str(), v))
    }

    /// All ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// True if any parameter contains NaN or infinity.
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().any(Matrix::has_non_finite)
    }
}

/// Per-parameter gradient accumulator produced by a backward pass.
///
/// Gradients are accumulated (summed), so several backward passes over the
/// same buffer implement loss-term addition for free, and sparse updates
/// (embedding rows) only touch the rows actually used.
#[derive(Debug, Clone)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Creates a buffer with a slot per parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        Self {
            grads: vec![None; store.len()],
        }
    }

    /// The accumulated gradient for `id`, if any backward pass touched it.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Accumulates `delta` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        match &mut self.grads[id.0] {
            Some(g) => g.axpy(1.0, delta),
            slot @ None => *slot = Some(delta.clone()),
        }
    }

    /// Accumulates a single row `delta_row` into row `row` of the slot,
    /// creating a zero matrix of shape `(rows, cols)` on first touch.
    pub fn accumulate_row(
        &mut self,
        id: ParamId,
        rows: usize,
        cols: usize,
        row: usize,
        delta_row: &[f32],
    ) {
        let slot = self.grads[id.0].get_or_insert_with(|| Matrix::zeros(rows, cols));
        debug_assert_eq!(slot.shape(), (rows, cols));
        for (g, &d) in slot.row_mut(row).iter_mut().zip(delta_row) {
            *g += d;
        }
    }

    /// Scales every accumulated gradient by `c` (e.g. averaging across
    /// data-parallel workers).
    pub fn scale(&mut self, c: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.map_inplace(|x| x * c);
        }
    }

    /// Merges another gradient buffer into this one (summing).
    pub fn merge(&mut self, other: &Gradients) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "gradient arity mismatch"
        );
        for (i, g) in other.grads.iter().enumerate() {
            if let Some(g) = g {
                self.accumulate(ParamId(i), g);
            }
        }
    }

    /// Iterates over parameters that received gradient.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i), g)))
    }

    /// Global L2 norm over all accumulated gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Clips by global norm: rescales so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn store() -> (ParamStore, ParamId, ParamId) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        let a = s.register("a", 2, 2, Init::Constant(1.0), &mut rng);
        let b = s.register("b", 1, 3, Init::Zeros, &mut rng);
        (s, a, b)
    }

    #[test]
    fn register_and_lookup() {
        let (s, a, b) = store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_weights(), 7);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.get(b).shape(), (1, 3));
        assert_eq!(s.ids().count(), 2);
    }

    #[test]
    fn gradients_accumulate_and_merge() {
        let (s, a, b) = store();
        let mut g1 = Gradients::zeros_like(&s);
        g1.accumulate(a, &Matrix::full(2, 2, 1.0));
        g1.accumulate(a, &Matrix::full(2, 2, 2.0));
        assert!(g1.get(a).unwrap().approx_eq(&Matrix::full(2, 2, 3.0), 0.0));
        assert!(g1.get(b).is_none());

        let mut g2 = Gradients::zeros_like(&s);
        g2.accumulate(b, &Matrix::full(1, 3, 5.0));
        g1.merge(&g2);
        assert!(g1.get(b).unwrap().approx_eq(&Matrix::full(1, 3, 5.0), 0.0));
    }

    #[test]
    fn sparse_row_accumulation() {
        let (s, a, _) = store();
        let mut g = Gradients::zeros_like(&s);
        g.accumulate_row(a, 2, 2, 1, &[1.0, -1.0]);
        g.accumulate_row(a, 2, 2, 1, &[1.0, 0.0]);
        let m = g.get(a).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, -1.0]);
    }

    #[test]
    fn global_norm_and_clipping() {
        let (s, a, _) = store();
        let mut g = Gradients::zeros_like(&s);
        g.accumulate(a, &Matrix::full(2, 2, 3.0));
        assert!((g.global_norm() - 6.0).abs() < 1e-6);
        g.clip_global_norm(3.0);
        assert!((g.global_norm() - 3.0).abs() < 1e-5);
        // Clipping below the threshold is a no-op.
        let before = g.get(a).unwrap().clone();
        g.clip_global_norm(100.0);
        assert!(g.get(a).unwrap().approx_eq(&before, 0.0));
    }
}
