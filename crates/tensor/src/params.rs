//! Persistent parameter storage shared across training steps.
//!
//! Trainable parameters live in a [`ParamStore`], addressed by the
//! copyable [`ParamId`] newtype. Each training step builds a fresh
//! [`crate::Tape`] over the store, runs backward, and collects gradients
//! into a [`Gradients`] buffer keyed by the same ids, which an optimizer
//! then applies.
//!
//! Gradients are **row-sparse by default**: embedding-style parameters
//! touched through [`Gradients::accumulate_row`] store only the touched
//! rows ([`SparseRows`]), so per-step gradient cost and memory scale with
//! the batch, not with the table. Parameters that receive a full-matrix
//! gradient ([`Gradients::accumulate`]) are promoted to a dense slot.

use crate::{Init, Matrix};
use rand::Rng;
use std::collections::HashMap;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Named, trainable parameter matrices.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter initialized by `init`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> ParamId {
        self.register_value(name, init.sample(rows, cols, rng))
    }

    /// Registers a parameter with an explicit initial value.
    pub fn register_value(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Immutable access to a parameter's current value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter's current value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (v, n))| (ParamId(i), n.as_str(), v))
    }

    /// All ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// True if any parameter contains NaN or infinity.
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().any(Matrix::has_non_finite)
    }
}

/// A row-sparse gradient: only the touched rows of a `rows x cols`
/// parameter are stored, packed contiguously in touch order with a
/// row-index map for O(1) lookup.
///
/// Memory and iteration cost are O(touched rows x cols) regardless of the
/// full table height, which is what makes embedding-scale training
/// O(batch) per step instead of O(table).
#[derive(Debug, Clone, Default)]
pub struct SparseRows {
    rows: usize,
    cols: usize,
    /// table row -> packed slot.
    index: HashMap<usize, usize>,
    /// packed slot -> table row (touch order).
    touched: Vec<usize>,
    /// Packed row data, `touched.len() * cols` long.
    data: Vec<f32>,
}

impl SparseRows {
    /// An empty row-sparse gradient for a `rows x cols` parameter.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            index: HashMap::new(),
            touched: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Full parameter shape this gradient is sparse over.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of distinct touched rows.
    pub fn touched_rows(&self) -> usize {
        self.touched.len()
    }

    /// Touched table-row ids in touch order.
    pub fn row_ids(&self) -> &[usize] {
        &self.touched
    }

    /// The packed data for touched row `slot` (see [`SparseRows::row_ids`]).
    pub fn packed_row(&self, slot: usize) -> &[f32] {
        &self.data[slot * self.cols..(slot + 1) * self.cols]
    }

    /// Allocated gradient storage in scalar elements.
    pub fn allocated_elems(&self) -> usize {
        self.data.capacity()
    }

    /// The packed row for table row `row`, inserted (zeroed) on first touch.
    pub fn row_mut_or_insert(&mut self, row: usize) -> &mut [f32] {
        debug_assert!(row < self.rows, "row {row} out of {}", self.rows);
        let cols = self.cols;
        let slot = match self.index.get(&row) {
            Some(&s) => s,
            None => {
                let s = self.touched.len();
                self.index.insert(row, s);
                self.touched.push(row);
                self.data.resize((s + 1) * cols, 0.0);
                s
            }
        };
        &mut self.data[slot * cols..(slot + 1) * cols]
    }

    /// Accumulates `delta_row` into table row `row`.
    pub fn add_row(&mut self, row: usize, delta_row: &[f32]) {
        for (g, &d) in self.row_mut_or_insert(row).iter_mut().zip(delta_row) {
            *g += d;
        }
    }

    /// Iterates `(table_row, packed_row)` in touch order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.touched
            .iter()
            .enumerate()
            .map(|(slot, &row)| (row, self.packed_row(slot)))
    }

    /// Packed slots ordered by ascending table row. Consumers that must
    /// match a dense full-matrix sweep bit for bit (norms, differential
    /// tests) iterate in this order; untouched rows contribute exact
    /// zeros in the dense sweep, so the sorted fold is identical.
    pub fn sorted_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = (0..self.touched.len()).collect();
        slots.sort_unstable_by_key(|&s| self.touched[s]);
        slots
    }

    /// Scales every stored element by `c`.
    pub fn scale(&mut self, c: f32) {
        for x in &mut self.data {
            *x *= c;
        }
    }

    /// Materializes the equivalent dense gradient matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (row, packed) in self.iter() {
            out.row_mut(row).copy_from_slice(packed);
        }
        out
    }

    /// Adds every stored row into the matching row of a dense matrix.
    pub fn add_to_dense(&self, dense: &mut Matrix) {
        debug_assert_eq!(dense.shape(), (self.rows, self.cols));
        for (row, packed) in self.iter() {
            for (g, &d) in dense.row_mut(row).iter_mut().zip(packed) {
                *g += d;
            }
        }
    }

    /// Merges another row-sparse gradient into this one (summing).
    pub fn merge(&mut self, other: &SparseRows) {
        debug_assert_eq!(self.shape(), other.shape());
        for (row, packed) in other.iter() {
            self.add_row(row, packed);
        }
    }

    /// Empties the gradient while keeping the allocated storage, so a
    /// buffer reused across training steps stops allocating once it has
    /// seen its steady-state touch pattern.
    pub fn clear(&mut self) {
        self.index.clear();
        self.touched.clear();
        self.data.clear();
    }

    /// True if any stored element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// One parameter's accumulated gradient: dense, or packed touched rows.
#[derive(Debug, Clone)]
pub enum GradSlot {
    /// Full-matrix gradient (MLP weights, or promoted sparse slots).
    Dense(Matrix),
    /// Row-sparse gradient (embedding tables touched through gathers).
    Sparse(SparseRows),
}

impl GradSlot {
    /// Allocated gradient storage in scalar elements.
    pub fn allocated_elems(&self) -> usize {
        match self {
            GradSlot::Dense(m) => m.len(),
            GradSlot::Sparse(s) => s.allocated_elems(),
        }
    }

    /// Materializes the slot as a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        match self {
            GradSlot::Dense(m) => m.clone(),
            GradSlot::Sparse(s) => s.to_dense(),
        }
    }

    /// Squared Frobenius contribution, computed exactly the way the dense
    /// path computes it (`norm = sqrt(sum of squares); norm * norm`) so
    /// sparse and dense buffers agree bit for bit: a dense sweep's
    /// untouched rows add exact `+0.0` terms, which never perturb the
    /// running sum, and the sparse fold visits rows in ascending order —
    /// the same element order as the dense sweep.
    fn sq_frobenius(&self) -> f32 {
        match self {
            GradSlot::Dense(m) => {
                let n = m.frobenius_norm();
                n * n
            }
            GradSlot::Sparse(s) => {
                let mut acc = 0.0f32;
                for slot in s.sorted_slots() {
                    for &x in s.packed_row(slot) {
                        acc += x * x;
                    }
                }
                let n = acc.sqrt();
                n * n
            }
        }
    }

    fn scale(&mut self, c: f32) {
        match self {
            GradSlot::Dense(m) => m.map_inplace(|x| x * c),
            GradSlot::Sparse(s) => s.scale(c),
        }
    }

    fn clear(&mut self) {
        match self {
            GradSlot::Dense(m) => m.as_mut_slice().fill(0.0),
            GradSlot::Sparse(s) => s.clear(),
        }
    }
}

/// Per-parameter gradient accumulator produced by a backward pass.
///
/// Gradients are accumulated (summed), so several backward passes over the
/// same buffer implement loss-term addition for free. Row-touched
/// parameters (embedding rows reached through gathers) stay row-sparse:
/// per-step cost and memory scale with the touched rows, never with the
/// table height. A full-matrix [`Gradients::accumulate`] promotes the
/// slot to dense.
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    grads: Vec<Option<GradSlot>>,
    /// Slots released by [`Gradients::clear`], kept per parameter so a
    /// buffer reused across steps re-acquires warmed storage instead of
    /// allocating.
    cache: Vec<Option<GradSlot>>,
    /// When set, `accumulate_row` materializes dense slots immediately —
    /// the pre-sparse behaviour, kept as the differential/perf oracle.
    force_dense: bool,
}

impl Gradients {
    /// Creates a row-sparse buffer with a slot per parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        Self {
            grads: vec![None; store.len()],
            cache: vec![None; store.len()],
            force_dense: false,
        }
    }

    /// Creates a buffer that materializes **dense** slots even for row
    /// touches — the representation every touched table had before the
    /// row-sparse path existed. Kept as the differential-test oracle and
    /// the benchmark baseline.
    pub fn dense_like(store: &ParamStore) -> Self {
        Self {
            grads: vec![None; store.len()],
            cache: vec![None; store.len()],
            force_dense: true,
        }
    }

    /// Number of parameter slots (the arity of the store this buffer was
    /// created for; 0 for a defaulted/taken buffer).
    pub fn arity(&self) -> usize {
        self.grads.len()
    }

    /// True when this buffer forces dense slots (see
    /// [`Gradients::dense_like`]).
    pub fn is_force_dense(&self) -> bool {
        self.force_dense
    }

    /// The accumulated slot for `id`, if any backward pass touched it.
    pub fn slot(&self, id: ParamId) -> Option<&GradSlot> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// The accumulated **dense** gradient for `id`.
    ///
    /// # Panics
    /// Panics if the slot is row-sparse — call [`Gradients::to_dense`]
    /// (or match on [`Gradients::slot`]) for representation-agnostic
    /// access.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        match self.slot(id) {
            None => None,
            Some(GradSlot::Dense(m)) => Some(m),
            Some(GradSlot::Sparse(_)) => panic!(
                "gradient slot {} is row-sparse; use Gradients::to_dense or Gradients::slot",
                id.0
            ),
        }
    }

    /// Materializes the gradient for `id` as a dense matrix, whatever the
    /// slot representation.
    pub fn to_dense(&self, id: ParamId) -> Option<Matrix> {
        self.slot(id).map(GradSlot::to_dense)
    }

    /// Total allocated gradient storage in scalar elements (live slots
    /// plus cleared slots kept for reuse). On the sparse path this scales
    /// with touched rows; on the dense path with total table size.
    pub fn allocated_elems(&self) -> usize {
        self.grads
            .iter()
            .chain(&self.cache)
            .flatten()
            .map(GradSlot::allocated_elems)
            .sum()
    }

    /// Takes a cleared slot of the right kind out of the reuse cache.
    fn cached_slot(&mut self, idx: usize, want_dense: bool) -> Option<GradSlot> {
        match self.cache.get_mut(idx).and_then(Option::take) {
            Some(GradSlot::Dense(m)) if want_dense => Some(GradSlot::Dense(m)),
            Some(GradSlot::Sparse(s)) if !want_dense => Some(GradSlot::Sparse(s)),
            // Kind changed since last step: drop the stale storage.
            _ => None,
        }
    }

    /// Accumulates `delta` into the slot for `id`, promoting a row-sparse
    /// slot to dense (full-matrix gradients touch every row anyway).
    pub fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        let slot = match self.grads[id.0].take() {
            Some(GradSlot::Dense(mut m)) => {
                m.axpy(1.0, delta);
                GradSlot::Dense(m)
            }
            Some(GradSlot::Sparse(s)) => {
                let mut m = s.to_dense();
                m.axpy(1.0, delta);
                GradSlot::Dense(m)
            }
            None => match self.cached_slot(id.0, true) {
                Some(GradSlot::Dense(mut m)) => {
                    debug_assert_eq!(m.shape(), delta.shape());
                    m.axpy(1.0, delta);
                    GradSlot::Dense(m)
                }
                _ => GradSlot::Dense(delta.clone()),
            },
        };
        self.grads[id.0] = Some(slot);
    }

    /// Accumulates a single row `delta_row` into row `row` of the slot.
    ///
    /// First touch creates a [`SparseRows`] slot (or, for a
    /// [`Gradients::dense_like`] buffer, a zero-filled dense matrix — the
    /// pre-sparse behaviour); accumulation cost is O(cols) either way.
    pub fn accumulate_row(
        &mut self,
        id: ParamId,
        rows: usize,
        cols: usize,
        row: usize,
        delta_row: &[f32],
    ) {
        if self.grads[id.0].is_none() {
            let fresh = match self.cached_slot(id.0, self.force_dense) {
                Some(slot) => slot,
                None if self.force_dense => GradSlot::Dense(Matrix::zeros(rows, cols)),
                None => GradSlot::Sparse(SparseRows::new(rows, cols)),
            };
            self.grads[id.0] = Some(fresh);
        }
        match self.grads[id.0].as_mut().expect("slot just ensured") {
            GradSlot::Dense(m) => {
                debug_assert_eq!(m.shape(), (rows, cols));
                for (g, &d) in m.row_mut(row).iter_mut().zip(delta_row) {
                    *g += d;
                }
            }
            GradSlot::Sparse(s) => {
                debug_assert_eq!(s.shape(), (rows, cols));
                s.add_row(row, delta_row);
            }
        }
    }

    /// Scales every accumulated gradient by `c` (e.g. averaging across
    /// data-parallel workers). Cost is O(stored elements): touched rows
    /// only on the sparse path.
    pub fn scale(&mut self, c: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale(c);
        }
    }

    /// Merges another gradient buffer into this one (summing), cloning
    /// the other buffer's storage on first touch. Prefer
    /// [`Gradients::merge_from`] when the other buffer can be consumed.
    pub fn merge(&mut self, other: &Gradients) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "gradient arity mismatch"
        );
        for (i, g) in other.grads.iter().enumerate() {
            let Some(g) = g else { continue };
            match (&mut self.grads[i], g) {
                (Some(GradSlot::Sparse(a)), GradSlot::Sparse(b)) => a.merge(b),
                (slot @ None, g) => *slot = Some(g.clone()),
                // Mixed or dense pairs go through the dense accumulate.
                (Some(_), g) => self.accumulate(ParamId(i), &g.to_dense()),
            }
        }
    }

    /// Merges `other` into this buffer by **moving** its slots: slots this
    /// buffer lacks are taken wholesale (no clone, no zero-fill), matching
    /// slots are summed in place. This is the data-parallel worker merge —
    /// in steady state every worker touches the same parameters, so the
    /// move only happens on the first step.
    pub fn merge_from(&mut self, mut other: Gradients) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "gradient arity mismatch"
        );
        for i in 0..other.grads.len() {
            let Some(theirs) = other.grads[i].take() else {
                continue;
            };
            match (&mut self.grads[i], theirs) {
                (slot @ None, theirs) => *slot = Some(theirs),
                (Some(GradSlot::Sparse(a)), GradSlot::Sparse(b)) => a.merge(&b),
                (Some(GradSlot::Dense(a)), GradSlot::Dense(b)) => a.axpy(1.0, &b),
                (Some(GradSlot::Dense(a)), GradSlot::Sparse(b)) => b.add_to_dense(a),
                (Some(GradSlot::Sparse(_)), GradSlot::Dense(b)) => {
                    self.accumulate(ParamId(i), &b);
                }
            }
        }
    }

    /// Empties every slot while keeping its storage for the next step:
    /// dense slots are zero-filled in place, sparse slots drop their row
    /// maps but keep capacity. A buffer cleared and refilled each step
    /// reaches an allocation-free steady state.
    pub fn clear(&mut self) {
        for i in 0..self.grads.len() {
            if let Some(mut slot) = self.grads[i].take() {
                slot.clear();
                self.cache[i] = Some(slot);
            }
        }
    }

    /// Iterates over parameters that received gradient, exposing the slot
    /// representation (optimizers handle sparse slots row by row).
    pub fn iter_slots(&self) -> impl Iterator<Item = (ParamId, &GradSlot)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i), g)))
    }

    /// Iterates over parameters that received **dense** gradient.
    ///
    /// # Panics
    /// Panics on the first row-sparse slot; use
    /// [`Gradients::iter_slots`] for representation-agnostic iteration.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.iter_slots().map(|(id, slot)| match slot {
            GradSlot::Dense(m) => (id, m),
            GradSlot::Sparse(_) => panic!(
                "gradient slot {} is row-sparse; use Gradients::iter_slots",
                id.0
            ),
        })
    }

    /// Global L2 norm over all accumulated gradients. Bit-identical
    /// between sparse and dense buffers holding the same values (see
    /// [`GradSlot`] internals).
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(GradSlot::sq_frobenius)
            .sum::<f32>()
            .sqrt()
    }

    /// Clips by global norm: rescales so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// True if any stored gradient element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.grads.iter().flatten().any(|g| match g {
            GradSlot::Dense(m) => m.has_non_finite(),
            GradSlot::Sparse(s) => s.has_non_finite(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn store() -> (ParamStore, ParamId, ParamId) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        let a = s.register("a", 2, 2, Init::Constant(1.0), &mut rng);
        let b = s.register("b", 1, 3, Init::Zeros, &mut rng);
        (s, a, b)
    }

    #[test]
    fn register_and_lookup() {
        let (s, a, b) = store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_weights(), 7);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.get(b).shape(), (1, 3));
        assert_eq!(s.ids().count(), 2);
    }

    #[test]
    fn gradients_accumulate_and_merge() {
        let (s, a, b) = store();
        let mut g1 = Gradients::zeros_like(&s);
        g1.accumulate(a, &Matrix::full(2, 2, 1.0));
        g1.accumulate(a, &Matrix::full(2, 2, 2.0));
        assert!(g1.get(a).unwrap().approx_eq(&Matrix::full(2, 2, 3.0), 0.0));
        assert!(g1.get(b).is_none());

        let mut g2 = Gradients::zeros_like(&s);
        g2.accumulate(b, &Matrix::full(1, 3, 5.0));
        g1.merge(&g2);
        assert!(g1.get(b).unwrap().approx_eq(&Matrix::full(1, 3, 5.0), 0.0));
    }

    #[test]
    fn sparse_row_accumulation() {
        let (s, a, _) = store();
        let mut g = Gradients::zeros_like(&s);
        g.accumulate_row(a, 2, 2, 1, &[1.0, -1.0]);
        g.accumulate_row(a, 2, 2, 1, &[1.0, 0.0]);
        assert!(matches!(g.slot(a), Some(GradSlot::Sparse(_))));
        let m = g.to_dense(a).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, -1.0]);
    }

    #[test]
    fn dense_like_materializes_full_slots() {
        let (s, a, _) = store();
        let mut g = Gradients::dense_like(&s);
        g.accumulate_row(a, 2, 2, 1, &[1.0, -1.0]);
        assert!(matches!(g.slot(a), Some(GradSlot::Dense(_))));
        let m = g.get(a).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, -1.0]);
    }

    #[test]
    fn full_accumulate_promotes_sparse_to_dense() {
        let (s, a, _) = store();
        let mut g = Gradients::zeros_like(&s);
        g.accumulate_row(a, 2, 2, 0, &[1.0, 2.0]);
        g.accumulate(a, &Matrix::full(2, 2, 1.0));
        let m = g.get(a).unwrap();
        assert_eq!(m.row(0), &[2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn sparse_memory_scales_with_touched_rows() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        let big = s.register("big", 10_000, 8, Init::Zeros, &mut rng);
        let mut sparse = Gradients::zeros_like(&s);
        let mut dense = Gradients::dense_like(&s);
        for row in [3usize, 77, 4096] {
            sparse.accumulate_row(big, 10_000, 8, row, &[1.0; 8]);
            dense.accumulate_row(big, 10_000, 8, row, &[1.0; 8]);
        }
        assert!(sparse.allocated_elems() <= 4 * 8);
        assert_eq!(dense.allocated_elems(), 10_000 * 8);
        assert!(sparse
            .to_dense(big)
            .unwrap()
            .approx_eq(&dense.to_dense(big).unwrap(), 0.0));
    }

    #[test]
    fn merge_from_moves_missing_slots_and_sums_shared_ones() {
        let (s, a, b) = store();
        let mut g1 = Gradients::zeros_like(&s);
        g1.accumulate_row(a, 2, 2, 0, &[1.0, 1.0]);
        let mut g2 = Gradients::zeros_like(&s);
        g2.accumulate_row(a, 2, 2, 1, &[2.0, 2.0]);
        g2.accumulate(b, &Matrix::full(1, 3, 4.0));
        g1.merge_from(g2);
        let m = g1.to_dense(a).unwrap();
        assert_eq!(m.row(0), &[1.0, 1.0]);
        assert_eq!(m.row(1), &[2.0, 2.0]);
        assert!(g1.get(b).unwrap().approx_eq(&Matrix::full(1, 3, 4.0), 0.0));
    }

    #[test]
    fn clear_retains_storage_and_empties_values() {
        let (s, a, b) = store();
        let mut g = Gradients::zeros_like(&s);
        g.accumulate_row(a, 2, 2, 1, &[1.0, 1.0]);
        g.accumulate(b, &Matrix::full(1, 3, 2.0));
        g.clear();
        assert!(g.slot(a).is_none() && g.slot(b).is_none());
        // Refill: same touch pattern, no fresh zero-fill of table-sized
        // matrices, and values start from zero again.
        g.accumulate_row(a, 2, 2, 1, &[3.0, 0.0]);
        assert_eq!(g.to_dense(a).unwrap().row(1), &[3.0, 0.0]);
        g.accumulate(b, &Matrix::full(1, 3, 1.0));
        assert!(g.get(b).unwrap().approx_eq(&Matrix::full(1, 3, 1.0), 0.0));
    }

    #[test]
    fn global_norm_and_clipping() {
        let (s, a, _) = store();
        let mut g = Gradients::zeros_like(&s);
        g.accumulate(a, &Matrix::full(2, 2, 3.0));
        assert!((g.global_norm() - 6.0).abs() < 1e-6);
        g.clip_global_norm(3.0);
        assert!((g.global_norm() - 3.0).abs() < 1e-5);
        // Clipping below the threshold is a no-op.
        let before = g.get(a).unwrap().clone();
        g.clip_global_norm(100.0);
        assert!(g.get(a).unwrap().approx_eq(&before, 0.0));
    }

    #[test]
    fn sparse_and_dense_norms_agree_bitwise() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        let t = s.register("t", 50, 4, Init::Zeros, &mut rng);
        let mut sparse = Gradients::zeros_like(&s);
        let mut dense = Gradients::dense_like(&s);
        // Deliberately out-of-order touches.
        for (row, v) in [(31usize, 0.3f32), (2, -1.7), (47, 0.9), (2, 0.25)] {
            let delta = [v, v * 0.5, -v, v * 2.0];
            sparse.accumulate_row(t, 50, 4, row, &delta);
            dense.accumulate_row(t, 50, 4, row, &delta);
        }
        assert_eq!(
            sparse.global_norm().to_bits(),
            dense.global_norm().to_bits()
        );
        sparse.clip_global_norm(0.5);
        dense.clip_global_norm(0.5);
        assert!(sparse
            .to_dense(t)
            .unwrap()
            .approx_eq(&dense.to_dense(t).unwrap(), 0.0));
    }
}
