//! The shared forward op layer.
//!
//! Every operation the interaction tower evaluates — embedding gather,
//! pair concatenation, the affine map, activations, the sigmoid output —
//! is implemented exactly once here, over plain [`Matrix`] buffers, on
//! top of the blocked kernels in [`crate::kernels`]. Two executors
//! consume this layer:
//!
//! - [`crate::Tape`] calls these functions in its forward pass and adds
//!   gradient recording on top (node list, backward closures).
//! - [`crate::InferCtx`] calls the same functions over a pair of
//!   reusable scratch buffers and adds nothing: no nodes, no closures,
//!   no RNG, no steady-state allocations.
//!
//! Because both executors run the *same* arithmetic in the *same* order
//! over the same kernels, the tape-free inference path is bit-identical
//! to the tape path — the differential test suites assert exact `f32`
//! equality, not tolerance bounds.

use crate::nn::Activation;
use crate::storage::RowSource;
use crate::Matrix;

/// `out += a * b` through the blocked register-tile kernel. `out` must be
/// zero-filled (as pool and scratch buffers are) to compute a plain
/// product.
///
/// # Panics
/// Panics on shape mismatch.
pub fn matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    a.matmul_into(b, out);
}

/// Adds the `1 x cols` bias row `row` to every row of `x`, in place.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_row_broadcast_assign(x: &mut Matrix, row: &Matrix) {
    assert_eq!(row.rows(), 1, "broadcast operand must be 1 x cols");
    assert_eq!(row.cols(), x.cols(), "broadcast col mismatch");
    for r in 0..x.rows() {
        for (o, &b) in x.row_mut(r).iter_mut().zip(row.as_slice()) {
            *o += b;
        }
    }
}

/// `max(0, x)` elementwise, in place.
pub fn relu_assign(x: &mut Matrix) {
    x.map_inplace(|v| v.max(0.0));
}

/// Hyperbolic tangent elementwise, in place.
pub fn tanh_assign(x: &mut Matrix) {
    x.map_inplace(f32::tanh);
}

/// Overflow-safe logistic sigmoid elementwise, in place.
pub fn sigmoid_assign(x: &mut Matrix) {
    x.map_inplace(stable_sigmoid);
}

/// Applies `act` elementwise, in place ([`Activation::Identity`] is a
/// no-op).
pub fn activation_assign(act: Activation, x: &mut Matrix) {
    match act {
        Activation::Relu => relu_assign(x),
        Activation::Tanh => tanh_assign(x),
        Activation::Sigmoid => sigmoid_assign(x),
        Activation::Identity => {}
    }
}

/// Fills `out` (shape `ai.len() x (a.cols() + b.cols())`) with the
/// rowwise concatenation `[a[ai[i]] | b[bi[i]]]` — the embedding
/// gather + pair concat of the interaction tower, fused into one pass so
/// no intermediate gather matrices exist on the inference path.
///
/// Generic over [`RowSource`], so the tables may be plain matrices or
/// quantized/memory-mapped [`crate::TableStorage`]: dequantization
/// happens inside the gather, row by row, straight into `out`. For
/// `Matrix` sources the body reduces to the same `copy_from_slice` as
/// before — bit-identical to the historical implementation.
///
/// # Panics
/// Panics if the index slices differ in length, any index is out of
/// range, or `out` has the wrong shape.
pub fn gather_concat2_assign<A: RowSource + ?Sized, B: RowSource + ?Sized>(
    a: &A,
    ai: &[usize],
    b: &B,
    bi: &[usize],
    out: &mut Matrix,
) {
    assert_eq!(ai.len(), bi.len(), "index slices must be parallel");
    assert_eq!(
        out.shape(),
        (ai.len(), a.cols() + b.cols()),
        "gather_concat2 output shape mismatch"
    );
    let split = a.cols();
    for (r, (&ia, &ib)) in ai.iter().zip(bi).enumerate() {
        assert!(ia < a.rows(), "gather index {ia} out of {} rows", a.rows());
        assert!(ib < b.rows(), "gather index {ib} out of {} rows", b.rows());
        let row = out.row_mut(r);
        a.copy_row_into(ia, &mut row[..split]);
        b.copy_row_into(ib, &mut row[split..]);
    }
}

/// For each row of `points`, pushes onto `out` the index of the nearest
/// row of `centroids` under squared Euclidean distance (ties broken
/// toward the lower index). `out` is cleared first.
///
/// Runs the O(n·k·d) work through the blocked `x * y^T` kernel over
/// ~512-row point blocks via the expansion `||x||^2 + ||c||^2 - 2 x.c`;
/// the per-point norm is constant across centroids and dropped, so the
/// comparison key is `||c||^2 - 2 x.c`. This is the assignment step of
/// the IVF coarse quantizer: k-means build time and query-time probe
/// selection both reduce to it.
///
/// Generic over [`RowSource`] for the points, so IVF assignment can
/// probe frozen POI embeddings straight out of a quantized or
/// memory-mapped table: each 512-row block is decoded once into the
/// block buffer that already existed on this path, then hits the same
/// blocked matmul. For `Matrix` points the copy is the same
/// `copy_from_slice` as before — bit-identical results.
///
/// # Panics
/// Panics if the row widths differ or `centroids` is empty.
pub fn nearest_centroids<P: RowSource + ?Sized>(
    points: &P,
    centroids: &Matrix,
    out: &mut Vec<u32>,
) {
    assert_eq!(
        points.cols(),
        centroids.cols(),
        "nearest_centroids width mismatch: {} vs {}",
        points.cols(),
        centroids.cols()
    );
    assert!(
        centroids.rows() > 0,
        "nearest_centroids needs >= 1 centroid"
    );
    let (n, k) = (points.rows(), centroids.rows());
    out.clear();
    out.reserve(n);
    let csq: Vec<f32> = (0..k)
        .map(|j| centroids.row(j).iter().map(|&v| v * v).sum())
        .collect();
    const BLOCK: usize = 512;
    let mut start = 0;
    while start < n {
        let bs = BLOCK.min(n - start);
        let mut block = Matrix::zeros(bs, points.cols());
        for r in 0..bs {
            points.copy_row_into(start + r, block.row_mut(r));
        }
        let mut scores = Matrix::zeros(bs, k);
        block.matmul_transpose_b_into(centroids, &mut scores);
        for r in 0..bs {
            let row = scores.row(r);
            let mut best = 0u32;
            let mut best_d = csq[0] - 2.0 * row[0];
            for (j, (&s, &c)) in row.iter().zip(&csq).enumerate().skip(1) {
                let d = c - 2.0 * s;
                if d < best_d {
                    best_d = d;
                    best = j as u32;
                }
            }
            out.push(best);
        }
        start += bs;
    }
}

/// Overflow-safe logistic sigmoid.
pub fn stable_sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_row_broadcast_assign_matches_out_of_place() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::row_vec(&[0.5, -1.0, 2.0]);
        let mut y = x.clone();
        add_row_broadcast_assign(&mut y, &b);
        assert_eq!(y, x.add_row_broadcast(&b));
    }

    #[test]
    fn activations_match_map_forms() {
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        let mut r = x.clone();
        relu_assign(&mut r);
        assert_eq!(r, x.map(|v| v.max(0.0)));
        let mut t = x.clone();
        tanh_assign(&mut t);
        assert_eq!(t, x.map(f32::tanh));
        let mut s = x.clone();
        sigmoid_assign(&mut s);
        assert_eq!(s, x.map(stable_sigmoid));
        let mut i = x.clone();
        activation_assign(Activation::Identity, &mut i);
        assert_eq!(i, x);
    }

    #[test]
    fn gather_concat2_interleaves_rows() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(2, 1, vec![10.0, 20.0]);
        let mut out = Matrix::zeros(2, 3);
        gather_concat2_assign(&a, &[2, 0], &b, &[0, 1], &mut out);
        assert_eq!(
            out,
            Matrix::from_vec(2, 3, vec![5.0, 6.0, 10.0, 1.0, 2.0, 20.0])
        );
    }

    #[test]
    #[should_panic(expected = "gather index")]
    fn gather_concat2_rejects_out_of_range() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(1, 4);
        gather_concat2_assign(&a, &[5], &b, &[0], &mut out);
    }

    #[test]
    fn nearest_centroids_picks_obvious_clusters() {
        let centroids = Matrix::from_vec(3, 2, vec![0.0, 0.0, 10.0, 0.0, 0.0, 10.0]);
        let points = Matrix::from_vec(4, 2, vec![0.1, -0.2, 9.5, 0.3, 0.2, 11.0, 10.0, 0.0]);
        let mut out = vec![99];
        nearest_centroids(&points, &centroids, &mut out);
        assert_eq!(out, vec![0, 1, 2, 1]);
    }

    #[test]
    fn nearest_centroids_ties_break_toward_lower_index() {
        // Identical centroid rows produce bit-identical scores; the
        // strict `<` comparison must keep the first.
        let centroids = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let points = Matrix::from_vec(2, 3, vec![0.0, 0.0, 0.0, 5.0, -1.0, 2.0]);
        let mut out = Vec::new();
        nearest_centroids(&points, &centroids, &mut out);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn gather_concat2_from_storage_matches_decoded_matrix() {
        use crate::storage::{StorageEncoding, TableStorage};
        let a = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32 - 6.0) / 7.0).collect());
        let b = Matrix::from_vec(3, 2, (0..6).map(|i| (i as f32) * 0.3 - 0.8).collect());
        for enc in [
            StorageEncoding::F32,
            StorageEncoding::F16,
            StorageEncoding::I8,
        ] {
            let sa = TableStorage::encode(&a, enc);
            let sb = TableStorage::encode(&b, enc);
            // The fused quantized gather must agree bit-for-bit with
            // decode-whole-table-then-gather.
            let (da, db) = (sa.to_matrix(), sb.to_matrix());
            let ai = [3usize, 0, 2];
            let bi = [1usize, 2, 0];
            let mut fused = Matrix::zeros(3, 5);
            gather_concat2_assign(&sa, &ai, &sb, &bi, &mut fused);
            let mut decoded = Matrix::zeros(3, 5);
            gather_concat2_assign(&da, &ai, &db, &bi, &mut decoded);
            assert_eq!(fused, decoded, "{enc}");
        }
    }

    #[test]
    fn nearest_centroids_from_storage_matches_decoded_matrix() {
        use crate::storage::{StorageEncoding, TableStorage};
        let points = Matrix::from_vec(
            9,
            4,
            (0..36).map(|i| ((i * 13 % 17) as f32) / 5.0).collect(),
        );
        let centroids = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32) / 3.0).collect());
        for enc in [StorageEncoding::F16, StorageEncoding::I8] {
            let sp = TableStorage::encode(&points, enc);
            let mut via_storage = Vec::new();
            nearest_centroids(&sp, &centroids, &mut via_storage);
            let mut via_decoded = Vec::new();
            nearest_centroids(&sp.to_matrix(), &centroids, &mut via_decoded);
            assert_eq!(via_storage, via_decoded, "{enc}");
        }
    }

    #[test]
    fn nearest_centroids_matches_naive_across_block_boundary() {
        // > 512 points so at least two blocks run; deterministic LCG
        // data, verified against per-pair naive distances.
        let (n, k, d) = (700, 7, 5);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let points = Matrix::from_vec(n, d, (0..n * d).map(|_| next()).collect());
        let centroids = Matrix::from_vec(k, d, (0..k * d).map(|_| next()).collect());
        let mut out = Vec::new();
        nearest_centroids(&points, &centroids, &mut out);
        assert_eq!(out.len(), n);
        let sq = |p: &[f32], c: &[f32]| -> f32 {
            p.iter().zip(c).map(|(&a, &b)| (a - b) * (a - b)).sum()
        };
        for (i, &chosen) in out.iter().enumerate() {
            let got = sq(points.row(i), centroids.row(chosen as usize));
            let best = (0..k)
                .map(|j| sq(points.row(i), centroids.row(j)))
                .fold(f32::INFINITY, f32::min);
            assert!(
                got <= best + 1e-4,
                "row {i}: chose dist {got}, naive best {best}"
            );
        }
    }
}
