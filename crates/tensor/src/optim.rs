//! First-order optimizers over a [`ParamStore`].
//!
//! The paper trains ST-TransRec with Adam; plain SGD is provided for tests
//! and baselines. Both apply a [`Gradients`] buffer produced by
//! [`crate::Tape::backward`], skipping parameters that received no
//! gradient in the step and — on the row-sparse gradient path — touching
//! only the rows the step actually reached.
//!
//! ## Sparse-update semantics
//!
//! - **SGD** on a row-sparse slot is **bit-identical** to SGD on the
//!   equivalent dense gradient when `weight_decay == 0` (untouched rows
//!   see an exact `+(-lr)·0.0` no-op on the dense path). With
//!   `weight_decay > 0`, decay applies only to touched rows, whereas the
//!   dense path decays every row of a touched parameter.
//! - **Lazy Adam** keeps a per-row last-update step and, when a row is
//!   touched after `k` skipped steps, first decays its moments by
//!   `beta^(k-1)` — exactly what `k-1` dense zero-gradient updates would
//!   have left in the moment buffers. Rows touched on every step are
//!   therefore **bit-identical** to dense Adam. Rows with skipped steps
//!   match the moments exactly but skip the dense path's momentum-tail
//!   parameter updates and AdamW decay on those steps; training-level
//!   equivalence for that drift is covered by a convergence-parity test.
//! - **Dense (non-lazy) Adam** is kept verbatim as the differential
//!   oracle: row-sparse slots are materialized dense and walked element
//!   by element, moment buffers and all.
//!
//! ## Sharded apply
//!
//! With [`Adam::with_shards`] > 1, the per-row update of large sparse
//! slots is split by contiguous row range across `std::thread::scope`
//! workers (disjoint `split_at_mut` slices of the parameter and moment
//! buffers — no locks, no unsafe). Row updates are independent, so the
//! result is bit-identical to the single-threaded apply.

use crate::{GradSlot, Gradients, Matrix, ParamId, ParamStore, SparseRows};

/// An optimizer that applies accumulated gradients to parameters.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules / grid searches).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Adds L2 weight decay (applied only to parameters/rows that
    /// received gradient, keeping embedding updates sparse).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0);
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        let (lr, wd) = (self.lr, self.weight_decay);
        let neg_lr = -lr;
        for (id, slot) in grads.iter_slots() {
            let p = store.get_mut(id);
            match slot {
                GradSlot::Dense(g) => {
                    if wd > 0.0 {
                        for (w, &gv) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                            *w -= lr * (gv + wd * *w);
                        }
                    } else {
                        p.axpy(neg_lr, g);
                    }
                }
                GradSlot::Sparse(s) => {
                    for (row, packed) in s.iter() {
                        let pr = p.row_mut(row);
                        if wd > 0.0 {
                            for (w, &gv) in pr.iter_mut().zip(packed) {
                                *w -= lr * (gv + wd * *w);
                            }
                        } else {
                            // Mirrors axpy's `y += a*x` form so touched
                            // rows are bit-identical to the dense path.
                            for (w, &gv) in pr.iter_mut().zip(packed) {
                                *w += neg_lr * gv;
                            }
                        }
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Below this many touched scalars a sharded apply is not worth the
/// thread-spawn overhead and runs single-threaded.
const MIN_SHARD_ELEMS: usize = 16_384;

/// Hyperparameters snapshot passed into the (possibly threaded) row apply.
#[derive(Clone, Copy)]
struct AdamHyper {
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    wd: f32,
    /// Per-parameter step count for bias correction.
    t: u64,
}

/// Adam (Kingma & Ba, 2015) with bias correction.
///
/// Supports two update modes for row-sparse gradients (see the module
/// docs): the default **lazy** mode with per-row moment catch-up, and a
/// **dense** oracle mode that reproduces the pre-sparse behaviour exactly.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// First/second moment estimates, allocated lazily per parameter.
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
    /// Per-parameter step counts (bias correction must track how many
    /// updates each parameter actually received, because embedding rows
    /// update sparsely).
    t: Vec<u64>,
    /// Per-parameter, per-row step of the last update (lazy mode only):
    /// the gap to the current step tells how many decay factors the
    /// row's moments are behind.
    last: Vec<Vec<u64>>,
    /// Lazy per-row updates (true) vs dense-oracle updates (false).
    lazy: bool,
    /// Row-range shards for the sparse apply (1 = single-threaded).
    shards: usize,
}

impl Adam {
    /// Creates Adam with the paper-standard betas (0.9, 0.999) and eps 1e-8,
    /// in lazy mode with a single-threaded apply.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: Vec::new(),
            last: Vec::new(),
            lazy: true,
            shards: 1,
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0);
        self.weight_decay = wd;
        self
    }

    /// Selects lazy per-row updates (default) or the dense oracle that
    /// materializes sparse gradients and walks every weight.
    pub fn with_lazy(mut self, lazy: bool) -> Self {
        self.lazy = lazy;
        self
    }

    /// Shards the sparse-slot apply by row range across this many scoped
    /// threads (1 = single-threaded; small slots stay single-threaded
    /// regardless).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shards must be >= 1");
        self.shards = shards;
        self
    }

    /// True when per-row lazy updates are enabled.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    fn ensure_state(&mut self, id: ParamId, shape: (usize, usize)) {
        let idx = id.index();
        if self.m.len() <= idx {
            self.m.resize(idx + 1, None);
            self.v.resize(idx + 1, None);
            self.t.resize(idx + 1, 0);
            self.last.resize(idx + 1, Vec::new());
        }
        if self.m[idx].is_none() {
            self.m[idx] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[idx] = Some(Matrix::zeros(shape.0, shape.1));
            self.last[idx] = vec![0; shape.0];
        }
    }

    /// The dense element walk shared by dense slots and the oracle path.
    fn dense_update(&mut self, store: &mut ParamStore, id: ParamId, g: &Matrix) {
        let idx = id.index();
        let t = self.t[idx] as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let m = self.m[idx].as_mut().expect("state allocated");
        let v = self.v[idx].as_mut().expect("state allocated");
        let p = store.get_mut(id);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for ((w, &gv), (mi, vi)) in p
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
            .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
        {
            *mi = b1 * *mi + (1.0 - b1) * gv;
            *vi = b2 * *vi + (1.0 - b2) * gv * gv;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *w -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *w);
        }
    }

    /// Catches every row's moments up to step `t - 1` (lazy mode, ahead
    /// of a full-matrix update): `k-1` skipped zero-gradient updates
    /// collapse to one `beta^(k-1)` decay per moment.
    fn catch_up_all_rows(&mut self, idx: usize, cols: usize) {
        let t = self.t[idx];
        let (b1, b2) = (self.beta1, self.beta2);
        let m = self.m[idx].as_mut().expect("state allocated");
        let v = self.v[idx].as_mut().expect("state allocated");
        for (row, lastv) in self.last[idx].iter_mut().enumerate() {
            let behind = t - 1 - (*lastv).min(t - 1);
            if behind > 0 {
                let (dm, dv) = (b1.powf(behind as f32), b2.powf(behind as f32));
                for x in &mut m.as_mut_slice()[row * cols..(row + 1) * cols] {
                    *x *= dm;
                }
                for x in &mut v.as_mut_slice()[row * cols..(row + 1) * cols] {
                    *x *= dv;
                }
            }
            *lastv = t;
        }
    }

    /// Lazy per-row apply of a sparse slot, sharded by row range when the
    /// touched volume is large enough.
    fn sparse_update(&mut self, store: &mut ParamStore, id: ParamId, sr: &SparseRows) {
        let idx = id.index();
        let (_, cols) = store.get(id).shape();
        // (table_row, packed_slot) in ascending row order, so contiguous
        // chunks map to disjoint row ranges of the buffers.
        let mut pairs: Vec<(usize, usize)> = sr
            .row_ids()
            .iter()
            .enumerate()
            .map(|(slot, &row)| (row, slot))
            .collect();
        pairs.sort_unstable_by_key(|&(row, _)| row);
        let hyper = AdamHyper {
            lr: self.lr,
            b1: self.beta1,
            b2: self.beta2,
            eps: self.eps,
            wd: self.weight_decay,
            t: self.t[idx],
        };
        let p = store.get_mut(id).as_mut_slice();
        let m = self.m[idx]
            .as_mut()
            .expect("state allocated")
            .as_mut_slice();
        let v = self.v[idx]
            .as_mut()
            .expect("state allocated")
            .as_mut_slice();
        let last = self.last[idx].as_mut_slice();

        let shards = self.shards.min(pairs.len()).max(1);
        if shards == 1 || pairs.len() * cols < MIN_SHARD_ELEMS {
            lazy_row_apply(p, m, v, last, 0, cols, &pairs, sr, hyper);
            return;
        }
        let chunk = pairs.len().div_ceil(shards);
        std::thread::scope(|scope| {
            let (mut p, mut m, mut v, mut last) = (p, m, v, last);
            let mut base = 0usize;
            for pc in pairs.chunks(chunk) {
                // This shard owns rows [base, hi]; cut the buffers there.
                let hi = pc.last().expect("non-empty chunk").0;
                let take = hi + 1 - base;
                let (ps, pr) = p.split_at_mut(take * cols);
                let (ms, mr) = m.split_at_mut(take * cols);
                let (vs, vr) = v.split_at_mut(take * cols);
                let (ls, lr_rest) = last.split_at_mut(take);
                let shard_base = base;
                scope
                    .spawn(move || lazy_row_apply(ps, ms, vs, ls, shard_base, cols, pc, sr, hyper));
                (p, m, v, last) = (pr, mr, vr, lr_rest);
                base = hi + 1;
            }
        });
    }
}

/// Updates the given `(table_row, packed_slot)` pairs against buffer
/// slices that start at `base` table rows in: catch-up decay, then the
/// standard Adam step. Row-independent, so shards compose bit-identically.
#[allow(clippy::too_many_arguments)]
fn lazy_row_apply(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    last: &mut [u64],
    base: usize,
    cols: usize,
    pairs: &[(usize, usize)],
    sr: &SparseRows,
    hp: AdamHyper,
) {
    let t = hp.t as f32;
    let bc1 = 1.0 - hp.b1.powf(t);
    let bc2 = 1.0 - hp.b2.powf(t);
    for &(row, slot) in pairs {
        let local = row - base;
        let span = local * cols..(local + 1) * cols;
        let (pm, mm, vm) = (&mut p[span.clone()], &mut m[span.clone()], &mut v[span]);
        // k-1 skipped steps decay the moments by beta^(k-1) each.
        let behind = hp.t - 1 - last[local].min(hp.t - 1);
        if behind > 0 {
            let (dm, dv) = (hp.b1.powf(behind as f32), hp.b2.powf(behind as f32));
            for x in mm.iter_mut() {
                *x *= dm;
            }
            for x in vm.iter_mut() {
                *x *= dv;
            }
        }
        last[local] = hp.t;
        for ((w, &gv), (mi, vi)) in pm
            .iter_mut()
            .zip(sr.packed_row(slot))
            .zip(mm.iter_mut().zip(vm.iter_mut()))
        {
            *mi = hp.b1 * *mi + (1.0 - hp.b1) * gv;
            *vi = hp.b2 * *vi + (1.0 - hp.b2) * gv * gv;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *w -= hp.lr * (m_hat / (v_hat.sqrt() + hp.eps) + hp.wd * *w);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, slot) in grads.iter_slots() {
            let shape = store.get(id).shape();
            self.ensure_state(id, shape);
            let idx = id.index();
            self.t[idx] += 1;
            match slot {
                GradSlot::Dense(g) => {
                    assert_eq!(
                        g.shape(),
                        shape,
                        "gradient shape mismatch for {}",
                        store.name(id)
                    );
                    if self.lazy {
                        self.catch_up_all_rows(idx, shape.1);
                    }
                    self.dense_update(store, id, g);
                }
                GradSlot::Sparse(sr) => {
                    debug_assert_eq!(sr.shape(), shape);
                    if self.lazy {
                        self.sparse_update(store, id, sr);
                    } else {
                        // Dense oracle: the exact pre-sparse walk, moment
                        // decay on untouched rows included.
                        let g = sr.to_dense();
                        self.dense_update(store, id, &g);
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gradients, Init, Tape};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Minimizes (p - 5)^2 and checks convergence.
    fn converge(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(0.0), &mut rng);
        for _ in 0..steps {
            let mut tape = Tape::new(&store);
            let v = tape.param(p);
            let tgt = tape.input(Matrix::scalar(5.0));
            let d = tape.sub(v, tgt);
            let sq = tape.mul_elem(d, d);
            let loss = tape.sum_all(sq);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        store.get(p).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let p = converge(&mut opt, 200);
        assert!((p - 5.0).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let p = converge(&mut opt, 400);
        assert!((p - 5.0).abs() < 1e-2, "got {p}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(1.0), &mut rng);
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(p, &Matrix::scalar(0.0));
        opt.step(&mut store, &grads);
        // w <- w - lr*(0 + wd*w) = 1 - 0.05 = 0.95
        assert!((store.get(p).item() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_skips_untouched_params() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let a = store.register("a", 1, 1, Init::Constant(1.0), &mut rng);
        let b = store.register("b", 1, 1, Init::Constant(1.0), &mut rng);
        let mut opt = Adam::new(0.1);
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(a, &Matrix::scalar(1.0));
        opt.step(&mut store, &grads);
        assert!(store.get(a).item() < 1.0, "touched param moved");
        assert_eq!(store.get(b).item(), 1.0, "untouched param unchanged");
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction, |first update| ~= lr regardless of grad scale.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(0.0), &mut rng);
        let mut opt = Adam::new(0.01);
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(p, &Matrix::scalar(1234.0));
        opt.step(&mut store, &grads);
        assert!((store.get(p).item().abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Adam::new(0.5);
        assert_eq!(o.learning_rate(), 0.5);
        o.set_learning_rate(0.1);
        assert_eq!(o.learning_rate(), 0.1);
    }

    /// A table + a dense-updated param, with a deterministic row-touch
    /// pattern; returns the final table after `steps` optimizer steps.
    fn run_adam_steps(opt: &mut Adam, sparse_buffer: bool, steps: usize, all_rows: bool) -> Matrix {
        const ROWS: usize = 12;
        const COLS: usize = 4;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let table = store.register("table", ROWS, COLS, Init::Uniform { limit: 0.5 }, &mut rng);
        let dense_p = store.register("w", 2, 3, Init::Uniform { limit: 0.5 }, &mut rng);
        let mut grng = SmallRng::seed_from_u64(7);
        for step in 0..steps {
            let mut g = if sparse_buffer {
                Gradients::zeros_like(&store)
            } else {
                Gradients::dense_like(&store)
            };
            for r in 0..ROWS {
                if all_rows || (step + r) % 3 == 0 {
                    let delta: Vec<f32> = (0..COLS).map(|_| grng.gen_range(-1.0..1.0)).collect();
                    g.accumulate_row(table, ROWS, COLS, r, &delta);
                }
            }
            let mut dw = Matrix::zeros(2, 3);
            for x in dw.as_mut_slice() {
                *x = grng.gen_range(-1.0..1.0);
            }
            g.accumulate(dense_p, &dw);
            opt.step(&mut store, &g);
        }
        store.get(table).clone()
    }

    #[test]
    fn lazy_adam_matches_dense_adam_when_all_rows_touched() {
        // Every row updated every step => catch-up never fires and the
        // two modes must agree bit for bit.
        let mut lazy = Adam::new(0.05).with_weight_decay(0.01);
        let mut dense = Adam::new(0.05).with_weight_decay(0.01).with_lazy(false);
        let a = run_adam_steps(&mut lazy, true, 6, true);
        let b = run_adam_steps(&mut dense, false, 6, true);
        assert!(a.approx_eq(&b, 0.0), "lazy != dense on all-touched rows");
    }

    #[test]
    fn lazy_adam_tracks_dense_adam_on_intermittent_rows() {
        // Rows skipped on some steps: moments match exactly, parameters
        // drift only by the dense path's momentum-tail updates.
        let mut lazy = Adam::new(0.01);
        let mut dense = Adam::new(0.01).with_lazy(false);
        let a = run_adam_steps(&mut lazy, true, 8, false);
        let b = run_adam_steps(&mut dense, false, 8, false);
        assert!(
            a.approx_eq(&b, 0.05),
            "lazy drifted too far from dense oracle"
        );
    }

    #[test]
    fn sharded_apply_is_bit_identical_to_single_threaded() {
        const ROWS: usize = 512;
        const COLS: usize = 64; // 32k touched scalars => sharding engages
        let rng = SmallRng::seed_from_u64(3);
        let run = |shards: usize| {
            let mut store = ParamStore::new();
            let t = store.register(
                "t",
                ROWS,
                COLS,
                Init::Uniform { limit: 0.5 },
                &mut rng.clone(),
            );
            let mut opt = Adam::new(0.02).with_shards(shards);
            let mut grng = SmallRng::seed_from_u64(11);
            for _ in 0..3 {
                let mut g = Gradients::zeros_like(&store);
                for r in 0..ROWS {
                    let delta: Vec<f32> = (0..COLS).map(|_| grng.gen_range(-1.0..1.0)).collect();
                    g.accumulate_row(t, ROWS, COLS, r, &delta);
                }
                opt.step(&mut store, &g);
            }
            store.get(t).clone()
        };
        let one = run(1);
        let four = run(4);
        assert!(one.approx_eq(&four, 0.0), "sharded apply changed results");
    }

    #[test]
    fn sparse_sgd_is_bit_identical_to_dense_sgd() {
        const ROWS: usize = 20;
        const COLS: usize = 5;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut s1 = ParamStore::new();
        let p1 = s1.register("t", ROWS, COLS, Init::Uniform { limit: 0.5 }, &mut rng);
        let mut s2 = s1.clone();
        let p2 = p1;
        let mut o1 = Sgd::new(0.1);
        let mut o2 = Sgd::new(0.1);
        let mut grng = SmallRng::seed_from_u64(13);
        for _ in 0..4 {
            let mut gs = Gradients::zeros_like(&s1);
            let mut gd = Gradients::dense_like(&s2);
            for _ in 0..6 {
                let r = grng.gen_range(0..ROWS);
                let delta: Vec<f32> = (0..COLS).map(|_| grng.gen_range(-1.0..1.0)).collect();
                gs.accumulate_row(p1, ROWS, COLS, r, &delta);
                gd.accumulate_row(p2, ROWS, COLS, r, &delta);
            }
            o1.step(&mut s1, &gs);
            o2.step(&mut s2, &gd);
        }
        assert!(
            s1.get(p1).approx_eq(s2.get(p2), 0.0),
            "sparse SGD diverged from dense SGD"
        );
    }
}
