//! First-order optimizers over a [`ParamStore`].
//!
//! The paper trains ST-TransRec with Adam; plain SGD is provided for tests
//! and baselines. Both apply a [`Gradients`] buffer produced by
//! [`crate::Tape::backward`], skipping parameters that received no
//! gradient in the step (sparse embedding updates).

use crate::{Gradients, Matrix, ParamId, ParamStore};

/// An optimizer that applies accumulated gradients to parameters.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules / grid searches).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Adds L2 weight decay (applied only to parameters that received
    /// gradient, keeping embedding updates sparse).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0);
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let p = store.get_mut(id);
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay;
                let lr = self.lr;
                for (w, &gv) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *w -= lr * (gv + wd * *w);
                }
            } else {
                p.axpy(-self.lr, g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// First/second moment estimates, allocated lazily per parameter.
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
    /// Per-parameter step counts (bias correction must track how many
    /// updates each parameter actually received, because embedding rows
    /// update sparsely).
    t: Vec<u64>,
}

impl Adam {
    /// Creates Adam with the paper-standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0);
        self.weight_decay = wd;
        self
    }

    fn ensure_state(&mut self, id: ParamId, shape: (usize, usize)) {
        let idx = id.index();
        if self.m.len() <= idx {
            self.m.resize(idx + 1, None);
            self.v.resize(idx + 1, None);
            self.t.resize(idx + 1, 0);
        }
        if self.m[idx].is_none() {
            self.m[idx] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[idx] = Some(Matrix::zeros(shape.0, shape.1));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let shape = store.get(id).shape();
            assert_eq!(
                g.shape(),
                shape,
                "gradient shape mismatch for {}",
                store.name(id)
            );
            self.ensure_state(id, shape);
            let idx = id.index();
            self.t[idx] += 1;
            let t = self.t[idx] as f32;
            let bc1 = 1.0 - self.beta1.powf(t);
            let bc2 = 1.0 - self.beta2.powf(t);

            let m = self.m[idx].as_mut().expect("state allocated");
            let v = self.v[idx].as_mut().expect("state allocated");
            let p = store.get_mut(id);
            let (lr, b1, b2, eps, wd) =
                (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
            for ((w, &gv), (mi, vi)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mi = b1 * *mi + (1.0 - b1) * gv;
                *vi = b2 * *vi + (1.0 - b2) * gv * gv;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *w);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gradients, Init, Tape};
    use rand::{rngs::SmallRng, SeedableRng};

    /// Minimizes (p - 5)^2 and checks convergence.
    fn converge(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(0.0), &mut rng);
        for _ in 0..steps {
            let mut tape = Tape::new(&store);
            let v = tape.param(p);
            let tgt = tape.input(Matrix::scalar(5.0));
            let d = tape.sub(v, tgt);
            let sq = tape.mul_elem(d, d);
            let loss = tape.sum_all(sq);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        store.get(p).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let p = converge(&mut opt, 200);
        assert!((p - 5.0).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let p = converge(&mut opt, 400);
        assert!((p - 5.0).abs() < 1e-2, "got {p}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(1.0), &mut rng);
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(p, &Matrix::scalar(0.0));
        opt.step(&mut store, &grads);
        // w <- w - lr*(0 + wd*w) = 1 - 0.05 = 0.95
        assert!((store.get(p).item() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_skips_untouched_params() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let a = store.register("a", 1, 1, Init::Constant(1.0), &mut rng);
        let b = store.register("b", 1, 1, Init::Constant(1.0), &mut rng);
        let mut opt = Adam::new(0.1);
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(a, &Matrix::scalar(1.0));
        opt.step(&mut store, &grads);
        assert!(store.get(a).item() < 1.0, "touched param moved");
        assert_eq!(store.get(b).item(), 1.0, "untouched param unchanged");
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction, |first update| ~= lr regardless of grad scale.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(0.0), &mut rng);
        let mut opt = Adam::new(0.01);
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(p, &Matrix::scalar(1234.0));
        opt.step(&mut store, &grads);
        assert!((store.get(p).item().abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Adam::new(0.5);
        assert_eq!(o.learning_rate(), 0.5);
        o.set_learning_rate(0.1);
        assert_eq!(o.learning_rate(), 0.1);
    }
}
