//! # st-tensor
//!
//! A minimal, dependency-light tensor library with reverse-mode automatic
//! differentiation, written from scratch to power the ST-TransRec
//! reproduction (Rust's deep-learning crates were judged too immature for
//! a faithful, fully-inspectable training pipeline; see DESIGN.md).
//!
//! The library is deliberately scoped to what the paper needs, done well:
//!
//! - [`Matrix`]: dense row-major `f32` storage with cache-friendly kernels.
//! - [`ops`]: the shared forward op layer — every piece of tower math
//!   implemented once, consumed by both executors below.
//! - [`Tape`] / [`Var`]: eager reverse-mode autodiff with sparse embedding
//!   gradients ([`Tape::gather_param`]) and a fused numerically-stable
//!   binary cross-entropy ([`Tape::bce_with_logits`]).
//! - [`InferCtx`]: the tape-free inference executor — same ops, reusable
//!   scratch buffers, bit-identical outputs, zero steady-state
//!   allocations.
//! - [`nn`]: [`Linear`], [`Mlp`], [`Embedding`] layers over a shared
//!   [`ParamStore`].
//! - [`optim`]: [`Sgd`] and [`Adam`] with sparse-aware bias correction.
//! - [`grad_check`]: finite-difference verification used throughout the
//!   test suite.
//!
//! ## Example
//!
//! ```
//! use st_tensor::{Activation, Adam, Gradients, Matrix, Mlp, Optimizer, ParamStore, Tape};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "net", &[2, 8, 1], Activation::Relu, 0.0, &mut rng);
//! let mut opt = Adam::new(0.05);
//!
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let t = Matrix::column(&[0., 1., 1., 1.]); // learn OR
//! for _ in 0..200 {
//!     let mut tape = Tape::new(&store);
//!     let xv = tape.input(x.clone());
//!     let logits = mlp.forward_train(&mut tape, xv, &mut rng);
//!     let loss = tape.bce_with_logits(logits, t.clone());
//!     let mut grads = Gradients::zeros_like(&store);
//!     tape.backward(loss, &mut grads);
//!     opt.step(&mut store, &grads);
//! }
//! ```

#![warn(missing_docs)]

mod infer;
mod matrix;
mod tape;

pub mod checkpoint;
pub mod grad_check;
pub mod init;
pub mod kernels;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod params;
pub mod pool;
pub mod quant;
pub mod storage;

pub use checkpoint::{
    load_params, map_params, save_params, save_params_atomic, save_params_atomic_as,
    save_params_v2, CheckpointError, MappedParams,
};
pub use grad_check::{assert_gradients_close, check_gradients, GradCheckReport};
pub use infer::InferCtx;
pub use init::Init;
pub use matrix::Matrix;
pub use nn::{Activation, Embedding, Linear, Mlp};
pub use ops::stable_sigmoid;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{GradSlot, Gradients, ParamId, ParamStore, SparseRows};
pub use pool::MatrixPool;
pub use storage::{Bytes, Mmap, RowSource, StorageEncoding, TableStorage};
pub use tape::{Tape, Var};
