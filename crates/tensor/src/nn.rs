//! Neural-network building blocks over the tape.
//!
//! Layers own [`ParamId`]s into a shared [`ParamStore`] and expose a
//! `forward(&self, tape, x, ...)` method, so one store can back several
//! towers (ST-TransRec registers the user table, two POI tables, the word
//! table, and the interaction MLP in a single store).

use crate::{InferCtx, Init, ParamId, ParamStore, Tape, Var};
use rand::Rng;

/// A fully connected layer `x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim -> out_dim` affine layer (Xavier weights, zero bias).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        let w = store.register(
            format!("{name}.w"),
            in_dim,
            out_dim,
            Init::XavierUniform,
            rng,
        );
        let b = store.register(format!("{name}.b"), 1, out_dim, Init::Zeros, rng);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter id.
    pub fn bias(&self) -> ParamId {
        self.b
    }

    /// Applies the layer to a `batch x in_dim` input.
    pub fn forward(&self, tape: &mut Tape<'_>, x: Var) -> Var {
        assert_eq!(
            tape.value(x).cols(),
            self.in_dim,
            "Linear input width mismatch"
        );
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        tape.linear(x, w, b)
    }
}

/// Activation applied between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit — the paper's choice (Eq. 11).
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape<'_>, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// A multi-layer perceptron with per-layer activation and optional
/// inverted dropout after each hidden activation.
///
/// This is the paper's interaction tower (Eq. 11-12): the final layer is
/// produced *without* activation so it can feed `bce_with_logits` (the
/// paper's sigmoid prediction layer, Eq. 12, fused into the loss for
/// numerical stability).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    dropout: f32,
}

impl Mlp {
    /// Builds an MLP from a width list, e.g. `[128, 64, 32, 16, 1]`.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        widths: &[usize],
        activation: Activation,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "MLP needs at least input and output widths"
        );
        assert!((0.0..1.0).contains(&dropout), "dropout must be in [0, 1)");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Self {
            layers,
            activation,
            dropout,
        }
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The affine layers, first to last (snapshot capture reads weights
    /// through these ids).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The hidden-layer activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Training forward pass: dropout masks (if configured) are sampled
    /// from `rng` after each hidden activation.
    pub fn forward_train(&self, tape: &mut Tape<'_>, x: Var, rng: &mut impl Rng) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, h);
            if i < last {
                h = self.activation.apply(tape, h);
                if self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
        }
        h
    }

    /// Inference forward pass on the tape: dropout is disabled (inverted
    /// dropout needs no rescaling), so no RNG is ever consulted. Kept for
    /// gradient checking and as the differential-test oracle; the
    /// tape-free path is [`Mlp::forward_infer`].
    pub fn forward_inference(&self, tape: &mut Tape<'_>, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, h);
            if i < last {
                h = self.activation.apply(tape, h);
            }
        }
        h
    }

    /// Tape-free inference forward pass: evaluates the tower over `ctx`'s
    /// scratch buffers, reading weights straight from `store`. The input
    /// batch must already be loaded into `ctx` (via [`InferCtx::set_input`]
    /// or [`InferCtx::gather_concat2`]); afterwards `ctx.value()` holds the
    /// final layer's output (logits — no activation after the last layer,
    /// matching the tape paths).
    pub fn forward_infer(&self, store: &ParamStore, ctx: &mut InferCtx) {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            ctx.linear(store.get(layer.weight()), store.get(layer.bias()));
            if i < last {
                ctx.activation(self.activation);
            }
        }
    }
}

/// An embedding table: `count` rows of dimension `dim`.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    count: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `count x dim` table with Gaussian init (the paper
    /// randomly initializes embeddings; std 0.01 follows NCF practice).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        count: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(count > 0 && dim > 0, "embedding dims must be positive");
        let table = store.register(name, count, dim, Init::Gaussian { std: 0.01 }, rng);
        Self { table, count, dim }
    }

    /// Number of rows.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying parameter id (for direct reads at inference time).
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Looks up a batch of ids, producing a `ids.len() x dim` matrix.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn forward(&self, tape: &mut Tape<'_>, ids: &[usize]) -> Var {
        for &id in ids {
            assert!(id < self.count, "embedding id {id} out of {}", self.count);
        }
        tape.gather_param(self.table, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gradients, Matrix};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn linear_shapes_and_forward() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        assert_eq!((lin.in_dim(), lin.out_dim()), (3, 2));
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::zeros(5, 3));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 2));
    }

    #[test]
    #[should_panic(expected = "Linear input width mismatch")]
    fn linear_rejects_wrong_width() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::zeros(5, 4));
        lin.forward(&mut tape, x);
    }

    #[test]
    fn mlp_paper_tower_shape() {
        // Foursquare tower from Sec. 4.1: 128 -> 64 -> 32 -> 16 -> 1.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "tower",
            &[128, 64, 32, 16, 1],
            Activation::Relu,
            0.1,
            &mut rng,
        );
        assert_eq!(mlp.depth(), 4);
        assert_eq!(mlp.in_dim(), 128);
        assert_eq!(mlp.out_dim(), 1);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::zeros(7, 128));
        let y = mlp.forward_train(&mut tape, x, &mut rng);
        assert_eq!(tape.value(y).shape(), (7, 1));
    }

    #[test]
    fn mlp_inference_is_deterministic_despite_dropout_config() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 3, 1], Activation::Relu, 0.5, &mut rng);
        let x = Matrix::from_vec(2, 4, vec![0.5; 8]);
        let run = || {
            let mut tape = Tape::new(&store);
            let xv = tape.input(x.clone());
            let y = mlp.forward_inference(&mut tape, xv);
            tape.value(y).clone()
        };
        assert_eq!(run(), run(), "inference must be deterministic");
    }

    #[test]
    fn mlp_tape_free_forward_matches_tape_inference_bitwise() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[6, 5, 3, 1],
            Activation::Relu,
            0.3, // dropout configured but irrelevant at inference
            &mut rng,
        );
        let x = Matrix::from_vec(4, 6, (0..24).map(|i| (i as f32) * 0.17 - 2.0).collect());
        let mut tape = Tape::new(&store);
        let xv = tape.input(x.clone());
        let y = mlp.forward_inference(&mut tape, xv);
        let mut ctx = InferCtx::new();
        ctx.set_input(&x);
        mlp.forward_infer(&store, &mut ctx);
        assert_eq!(ctx.value(), tape.value(y), "executors diverged");
    }

    #[test]
    fn mlp_trains_xor() {
        // End-to-end sanity: a 2-16-1 ReLU MLP fits XOR with Adam.
        use crate::{Adam, Optimizer};
        let mut rng = SmallRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "xor",
            &[2, 16, 1],
            Activation::Relu,
            0.0,
            &mut rng,
        );
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let t = Matrix::column(&[0., 1., 1., 0.]);
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let mut tape = Tape::new(&store);
            let xv = tape.input(x.clone());
            let logits = mlp.forward_train(&mut tape, xv, &mut rng);
            let loss = tape.bce_with_logits(logits, t.clone());
            final_loss = tape.value(loss).item();
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        assert!(final_loss < 0.1, "XOR loss stayed at {final_loss}");
    }

    #[test]
    fn embedding_lookup_returns_table_rows() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        assert_eq!((emb.count(), emb.dim()), (10, 4));
        let expected = store.get(emb.table()).gather_rows(&[7, 2]);
        let mut tape = Tape::new(&store);
        let v = emb.forward(&mut tape, &[7, 2]);
        assert_eq!(tape.value(v), &expected);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn embedding_rejects_out_of_range_id() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut tape = Tape::new(&store);
        emb.forward(&mut tape, &[10]);
    }
}
