//! Weight initialization schemes.
//!
//! The paper initializes parameters "with a Gaussian distribution"; we also
//! provide Xavier/Glorot initializers, which are standard for the ReLU MLP
//! tower and make gradient-checking tests better conditioned.

use crate::Matrix;
use rand::Rng;

/// An initialization scheme for a `rows x cols` parameter matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// All elements set to a constant.
    Constant(f32),
    /// Independent Gaussian entries with the given standard deviation
    /// (mean 0). This is the paper's scheme.
    Gaussian {
        /// Standard deviation of each entry.
        std: f32,
    },
    /// Uniform on `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f32,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
}

impl Init {
    /// Materializes a `rows x cols` matrix using `rng`.
    pub fn sample(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        match self {
            Init::Zeros => {}
            Init::Constant(c) => m.map_inplace(|_| c),
            Init::Gaussian { std } => {
                for v in m.as_mut_slice() {
                    *v = std * gaussian(rng);
                }
            }
            Init::Uniform { limit } => {
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(-limit..=limit);
                }
            }
            Init::XavierUniform => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(-limit..=limit);
                }
            }
        }
        m
    }
}

/// Standard normal sample via Box-Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn zeros_and_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(Init::Zeros
            .sample(2, 3, &mut rng)
            .as_slice()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Init::Constant(2.5)
            .sample(2, 3, &mut rng)
            .as_slice()
            .iter()
            .all(|&x| x == 2.5));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = Init::Gaussian { std: 0.5 }.sample(200, 50, &mut rng);
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = Init::XavierUniform.sample(30, 70, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(m.max_abs() <= limit + 1e-6);
        // Not degenerate: spread should roughly fill the interval.
        assert!(m.max_abs() > 0.5 * limit);
    }

    #[test]
    fn uniform_respects_limit_and_is_seeded_deterministically() {
        let a = Init::Uniform { limit: 0.1 }.sample(4, 4, &mut SmallRng::seed_from_u64(9));
        let b = Init::Uniform { limit: 0.1 }.sample(4, 4, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert!(a.max_abs() <= 0.1);
    }
}
