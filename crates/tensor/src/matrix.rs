//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single storage type of the library: vectors are
//! `n x 1` or `1 x n` matrices, scalars are `1 x 1`. Keeping one layout
//! (row-major, contiguous `Vec<f32>`) keeps every kernel cache-friendly and
//! trivially testable.

use crate::kernels;
use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// The [`Default`] value is an empty `0 x 0` matrix with no allocation —
/// a placeholder for scratch buffers that are grown in place.
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix from raw row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `1 x 1` matrix holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vec(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// The single value of a `1 x 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Returns the transposed matrix (tiled kernel).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        kernels::transpose_blocked(&self.data, &mut out.data, self.rows, self.cols);
        out
    }

    /// Reference transpose: the straightforward double loop, kept for
    /// differential testing and benchmarking against [`Self::transpose`].
    pub fn transpose_naive(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other` using the cache-blocked register-tile
    /// kernel ([`kernels::matmul_blocked`]).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Self::matmul`] accumulating into a caller-provided `out` matrix
    /// (`out += self * other`), enabling buffer reuse via the tape's
    /// matrix pool. `out` must already have shape `rows x other.cols`.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        kernels::matmul_blocked(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Reference matmul: i-k-j streaming loops with a zero-skip, kept for
    /// differential testing and benchmarking against [`Self::matmul`].
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose
    /// ([`kernels::matmul_transpose_b_blocked`]).
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_b_into(other, &mut out);
        out
    }

    /// [`Self::matmul_transpose_b`] accumulating into a caller-provided
    /// `out` (`out += self * other^T`). `out` must already have shape
    /// `rows x other.rows`.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_transpose_b_into output shape mismatch"
        );
        kernels::matmul_transpose_b_blocked(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
        );
    }

    /// Reference `self * other^T`: per-element row dots, kept for
    /// differential testing and benchmarking.
    pub fn matmul_transpose_b_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose
    /// ([`kernels::matmul_transpose_a_blocked`]).
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_transpose_a_into(other, &mut out);
        out
    }

    /// [`Self::matmul_transpose_a`] accumulating into a caller-provided
    /// `out` (`out += self^T * other`). `out` must already have shape
    /// `cols x other.cols`.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_transpose_a_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_transpose_a_into output shape mismatch"
        );
        kernels::matmul_transpose_a_blocked(
            &self.data,
            &other.data,
            &mut out.data,
            self.cols,
            self.rows,
            other.cols,
        );
    }

    /// Reference `self^T * other`: k-outer streaming rank-1 updates, kept
    /// for differential testing and benchmarking.
    pub fn matmul_transpose_a_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix of pairwise squared Euclidean distances between the rows of
    /// `self` (`m x d`) and the rows of `other` (`n x d`):
    /// `out[i][j] = ||self_i - other_j||^2`, shape `m x n`.
    ///
    /// Uses the expansion `||x||^2 + ||y||^2 - 2 x.y` so the O(m.n.d)
    /// work runs through the blocked `x * y^T` kernel and the row norms
    /// are computed once instead of per pair. Clamped at zero to absorb
    /// the expansion's floating-point cancellation.
    ///
    /// # Panics
    /// Panics if the row widths differ.
    pub fn pairwise_sq_dist(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.pairwise_sq_dist_into(other, &mut out);
        out
    }

    /// [`Self::pairwise_sq_dist`] writing into a caller-provided `out`
    /// (which must be zero-filled, as pool buffers are) of shape
    /// `rows x other.rows`.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn pairwise_sq_dist_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "pairwise_sq_dist width mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let x_norms = kernels::row_sq_norms(&self.data, self.rows, self.cols);
        let y_norms = kernels::row_sq_norms(&other.data, other.rows, other.cols);
        self.matmul_transpose_b_into(other, out);
        for (i, &xn) in x_norms.iter().enumerate() {
            let row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (o, &yn) in row.iter_mut().zip(&y_norms) {
                *o = (xn + yn - 2.0 * *o).max(0.0);
            }
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary combination with a same-shaped matrix.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Matrix {
        self.map(|x| x * c)
    }

    /// `self += alpha * other`, in place (the BLAS `axpy` primitive).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column vector (`rows x 1`) of per-row sums.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Row vector (`1 x cols`) of per-column sums.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Gathers `indices` rows into a new `indices.len() x cols` matrix.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "gather index {src} out of {} rows",
                self.rows
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontal concatenation `[self | other]` (same row count).
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation (same column count).
    pub fn concat_rows(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be 1 x cols");
        assert_eq!(row.cols, self.cols, "broadcast col mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Adds a `rows x 1` column vector to every column.
    pub fn add_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "broadcast operand must be rows x 1");
        assert_eq!(col.rows, self.rows, "broadcast row mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let b = col.data[r];
            for o in out.row_mut(r) {
                *o += b;
            }
        }
        out
    }

    /// Rowwise dot products of two same-shaped matrices: `n x 1` output.
    pub fn row_dot(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "row_dot shape mismatch");
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self
                .row(r)
                .iter()
                .zip(other.row(r))
                .map(|(&a, &b)| a * b)
                .sum();
        }
        out
    }

    /// True if every pair of elements differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn construction_and_accessors() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.get(1, 2), 6.0);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_transpose_variants_agree_with_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        assert!(a
            .matmul_transpose_b(&b)
            .approx_eq(&a.matmul(&b.transpose()), 1e-6));
        let c = m(2, 4, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(a
            .matmul_transpose_a(&c)
            .approx_eq(&a.transpose().matmul(&c), 1e-6));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        m(2, 3, &[0.0; 6]).matmul(&m(2, 3, &[0.0; 6]));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b), m(1, 3, &[5.0, 7.0, 9.0]));
        assert_eq!(b.sub(&a), m(1, 3, &[3.0, 3.0, 3.0]));
        assert_eq!(a.mul_elem(&b), m(1, 3, &[4.0, 10.0, 18.0]));
        assert_eq!(a.scale(2.0), m(1, 3, &[2.0, 4.0, 6.0]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        a.axpy(0.5, &m(1, 2, &[2.0, 4.0]));
        assert_eq!(a, m(1, 2, &[2.0, 3.0]));
    }

    #[test]
    fn reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.sum_cols(), m(2, 1, &[6.0, 15.0]));
        assert_eq!(a.sum_rows(), m(1, 3, &[5.0, 7.0, 9.0]));
        assert!((a.frobenius_norm() - 91.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 6.0);
    }

    #[test]
    fn empty_matrix_mean_is_zero() {
        assert_eq!(Matrix::zeros(0, 3).mean(), 0.0);
    }

    #[test]
    fn gather_rows_picks_and_repeats() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, m(3, 2, &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "gather index")]
    fn gather_rows_rejects_out_of_bounds() {
        m(2, 2, &[0.0; 4]).gather_rows(&[5]);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = m(2, 1, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.concat_cols(&b), m(2, 3, &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]));
        let c = m(1, 1, &[9.0]);
        assert_eq!(a.concat_rows(&c.transpose()), m(3, 1, &[1.0, 2.0, 9.0]));
    }

    #[test]
    fn broadcasts() {
        let a = m(2, 3, &[0.0; 6]);
        let row = m(1, 3, &[1.0, 2.0, 3.0]);
        assert_eq!(
            a.add_row_broadcast(&row),
            m(2, 3, &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0])
        );
        let col = m(2, 1, &[1.0, 2.0]);
        assert_eq!(
            a.add_col_broadcast(&col),
            m(2, 3, &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0])
        );
    }

    #[test]
    fn row_dot_matches_manual() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.row_dot(&b), m(2, 1, &[17.0, 53.0]));
    }

    #[test]
    fn blocked_kernels_match_naive_references() {
        let a = Matrix::from_vec(5, 7, (0..35).map(|i| (i as f32) * 0.3 - 4.0).collect());
        let b = Matrix::from_vec(7, 9, (0..63).map(|i| 2.0 - (i as f32) * 0.17).collect());
        assert!(a.matmul(&b).approx_eq(&a.matmul_naive(&b), 1e-4));
        let bt = b.transpose();
        assert!(a
            .matmul_transpose_b(&bt)
            .approx_eq(&a.matmul_transpose_b_naive(&bt), 1e-4));
        let at = a.transpose();
        assert!(at
            .matmul_transpose_a(&b)
            .approx_eq(&at.matmul_transpose_a_naive(&b), 1e-4));
        assert_eq!(a.transpose(), a.transpose_naive());
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::identity(2);
        let mut out = Matrix::full(2, 2, 10.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, m(2, 2, &[11.0, 12.0, 13.0, 14.0]));
    }

    #[test]
    fn pairwise_sq_dist_matches_direct() {
        let x = m(3, 2, &[0.0, 0.0, 1.0, 1.0, -2.0, 0.5]);
        let y = m(2, 2, &[1.0, 0.0, 0.0, -1.0]);
        let d = x.pairwise_sq_dist(&y);
        for i in 0..3 {
            for j in 0..2 {
                let direct: f32 = x
                    .row(i)
                    .iter()
                    .zip(y.row(j))
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                assert!((d.get(i, j) - direct).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
