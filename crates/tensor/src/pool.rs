//! Reusable backing buffers for tape intermediates.
//!
//! Training builds one [`crate::Tape`] per step and drops it afterwards,
//! so without reuse every recorded node, every backward adjoint and every
//! gradient delta allocates fresh storage — at batch sizes in the
//! hundreds that is megabytes of allocator traffic per step. A
//! [`MatrixPool`] keeps the freed buffers on a free-list instead;
//! carried across steps (see `STTransRec::train_step` in `st-core`) the
//! steady state allocates nothing at all.

use crate::Matrix;

/// A LIFO free-list of matrix backing buffers.
///
/// Buffers are handed back most-recently-released first, so the memory a
/// step just touched (still warm in cache) is the memory the next
/// acquisition gets. Capacity is not matched to the request: training
/// steps cycle through the same few shapes, so after warm-up every
/// pooled buffer already fits and `resize` never reallocates.
#[derive(Debug, Default)]
pub struct MatrixPool {
    free: Vec<Vec<f32>>,
    hits: usize,
    misses: usize,
}

impl MatrixPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled `rows x cols` matrix, backed by a pooled buffer when
    /// one is available.
    pub fn acquire_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let n = rows * cols;
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf.resize(n, 0.0);
                Matrix::from_vec(rows, cols, buf)
            }
            None => {
                self.misses += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// A pooled copy of `src` (same shape and contents).
    pub fn acquire_copy(&mut self, src: &Matrix) -> Matrix {
        let (r, c) = src.shape();
        let mut out = self.acquire_zeroed(r, c);
        out.as_mut_slice().copy_from_slice(src.as_slice());
        out
    }

    /// Returns a matrix's backing storage to the pool.
    pub fn release(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no buffers are pooled.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// `(hits, misses)`: acquisitions served from the pool vs. fresh
    /// allocations, since construction.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_even_after_dirty_release() {
        let mut pool = MatrixPool::new();
        let mut m = pool.acquire_zeroed(3, 4);
        m.as_mut_slice().fill(7.5);
        pool.release(m);
        let again = pool.acquire_zeroed(3, 4);
        assert!(again.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buffers_are_reused() {
        let mut pool = MatrixPool::new();
        let m = pool.acquire_zeroed(8, 8);
        pool.release(m);
        let _ = pool.acquire_zeroed(4, 4);
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
        assert!(pool.is_empty());
    }

    #[test]
    fn copy_matches_source() {
        let mut pool = MatrixPool::new();
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let cp = pool.acquire_copy(&src);
        assert_eq!(cp, src);
    }
}
