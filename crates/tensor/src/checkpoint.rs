//! Parameter checkpointing.
//!
//! A [`ParamStore`] serializes to a self-describing binary format so
//! trained models can be saved and restored without retraining. The
//! format is deliberately simple and versioned:
//!
//! ```text
//! magic "STPK" | u32 version | u32 count |
//!   per param: u32 name_len | name bytes | u32 rows | u32 cols | f32 data...
//! ```
//!
//! All integers are little-endian. Loading validates the magic, version
//! and lengths, and returns typed errors instead of panicking on
//! corrupted files.

use crate::{Matrix, ParamStore};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"STPK";
const VERSION: u32 = 1;

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a checkpoint or is damaged.
    Corrupt(String),
    /// A newer/older format version.
    Version(u32),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CheckpointError> for std::io::Error {
    /// Collapses checkpoint failures into one `io::Error`, so callers on
    /// a serving path (hot-reload) handle every corruption mode through a
    /// single clean error type instead of a panic.
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes every parameter (name, shape, weights) to `out`.
pub fn save_params<W: Write>(store: &ParamStore, mut out: W) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        out.write_all(&(name.len() as u32).to_le_bytes())?;
        out.write_all(name.as_bytes())?;
        out.write_all(&(value.rows() as u32).to_le_bytes())?;
        out.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &x in value.as_slice() {
            out.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes a checkpoint to `path` crash-safely: the bytes go to a
/// uniquely named temporary file in the *same directory* (rename is only
/// atomic within one filesystem), are flushed and fsynced, and the file
/// is then atomically renamed over `path`. A crash at any point leaves
/// either the previous checkpoint or a stray `.tmp-*` file — never a
/// torn checkpoint a serve-side watcher could load halfway written.
pub fn save_params_atomic(store: &ParamStore, path: &Path) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);

    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{base}.tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));

    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let mut out = std::io::BufWriter::new(file);
        save_params(store, &mut out)?;
        out.flush()?;
        // Durability before visibility: the data must hit disk before the
        // rename makes it the checkpoint.
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    };
    let result = write();
    if result.is_err() {
        // Best-effort cleanup; the temp name is unique so a leftover can
        // never be mistaken for (or renamed over) a real checkpoint.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint into a fresh [`ParamStore`], preserving parameter
/// order (so ids match the store that was saved).
pub fn load_params<R: Read>(mut input: R) -> Result<ParamStore, CheckpointError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let version = read_u32(&mut input)?;
    if version != VERSION {
        return Err(CheckpointError::Version(version));
    }
    let count = read_u32(&mut input)? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Corrupt(format!(
            "implausible param count {count}"
        )));
    }
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(&mut input)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt("implausible name length".into()));
        }
        let mut name = vec![0u8; name_len];
        input.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Corrupt("non-UTF8 parameter name".into()))?;
        let rows = read_u32(&mut input)? as usize;
        let cols = read_u32(&mut input)? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CheckpointError::Corrupt("shape overflow".into()))?;
        if len > 1 << 30 {
            return Err(CheckpointError::Corrupt("implausible matrix size".into()));
        }
        // Read weights incrementally: `len` comes from untrusted bytes,
        // so a corrupt shape must fail at EOF instead of first committing
        // to a multi-gigabyte zeroed buffer the stream cannot back.
        const CHUNK: usize = 1024;
        let mut data: Vec<f32> = Vec::with_capacity(len.min(CHUNK));
        let mut bytes = [0u8; 4 * CHUNK];
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            let buf = &mut bytes[..4 * take];
            input.read_exact(buf)?;
            data.extend(
                buf.chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            remaining -= take;
        }
        store.register_value(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(store)
}

fn read_u32<R: Read>(input: &mut R) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    input.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Init;
    use rand::{rngs::SmallRng, SeedableRng};

    fn sample_store() -> ParamStore {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.register("emb", 5, 4, Init::Gaussian { std: 1.0 }, &mut rng);
        store.register("w", 4, 2, Init::XavierUniform, &mut rng);
        store.register("b", 1, 2, Init::Zeros, &mut rng);
        store
    }

    #[test]
    fn roundtrip_is_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, name_a, val_a), (_, name_b, val_b)) in store.iter().zip(loaded.iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(val_a, val_b, "bit-exact weights for {name_a}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_params(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        save_params(&sample_store(), &mut buf).unwrap();
        buf[4] = 99; // clobber version
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Version(99)));
    }

    #[test]
    fn atomic_save_roundtrips_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!(
            "st-tensor-ckpt-atomic-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");

        let store = sample_store();
        save_params_atomic(&store, &path).unwrap();
        let loaded = load_params(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(loaded.len(), store.len());

        // Overwriting an existing checkpoint also goes through the
        // temp+rename path and replaces it completely.
        save_params_atomic(&store, &path).unwrap();
        let reloaded = load_params(std::fs::File::open(&path).unwrap()).unwrap();
        for ((_, name_a, val_a), (_, name_b, val_b)) in store.iter().zip(reloaded.iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(val_a, val_b);
        }

        // No stray temporaries after successful writes.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_save_into_missing_directory_fails_cleanly() {
        let path = std::env::temp_dir()
            .join(format!("st-tensor-ckpt-noexist-{}", std::process::id()))
            .join("sub")
            .join("model.bin");
        assert!(save_params_atomic(&sample_store(), &path).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut buf = Vec::new();
        save_params(&sample_store(), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
