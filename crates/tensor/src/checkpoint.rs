//! Parameter checkpointing: the streaming v1 format and the
//! memory-mappable v2 container.
//!
//! A [`ParamStore`] serializes to a self-describing binary format so
//! trained models can be saved and restored without retraining. Two
//! versions share the `"STPK"` magic:
//!
//! **v1** — the original streaming format, kept as the migration read
//! path (and as the read-and-parse baseline the snapshot bench compares
//! against):
//!
//! ```text
//! magic "STPK" | u32 version=1 | u32 count |
//!   per param: u32 name_len | name bytes | u32 rows | u32 cols | f32 data...
//! ```
//!
//! **v2** — a page-aligned, checksummed container designed to be
//! memory-mapped, so snapshot reload becomes [`map_params`] (validate
//! the header + index, wrap byte ranges) instead of parsing every float:
//!
//! ```text
//! header (32 bytes):
//!   magic "STPK" | u32 version=2 | u32 count | u32 reserved=0 |
//!   u64 index_len | u64 index_checksum (FNV-1a 64 of the index region)
//! index region (immediately after the header):
//!   per param:
//!     u32 name_len | name bytes | u8 encoding | u32 rows | u32 cols |
//!     u64 data_offset | u64 data_len |
//!     u64 scales_offset | u64 scales_len |   (zeros unless int8)
//!     u64 checksum (FNV-1a 64 of data bytes then scales bytes)
//! data region (first 4096-byte page boundary after the index):
//!   per param: element data (64-byte aligned), then for int8 the
//!   per-row f32 scales (64-byte aligned)
//! ```
//!
//! Encodings are [`StorageEncoding`]: f32 (4 B/elem), f16 (2 B/elem), or
//! int8 (1 B/elem + one f32 scale per row). A lossy encoding applies
//! only to embedding tables — parameters whose name ends in `_emb`, the
//! repo-wide naming convention — while dense tower weights and biases
//! always stay f32 (see [`is_table_param`]).
//!
//! All integers are little-endian; offsets are absolute file offsets.
//! [`map_params`] validates the magic/version, the index checksum, and
//! every entry's bounds against the actual mapped length before any
//! byte range is handed out, so a truncated or damaged file yields a
//! clean error — never out-of-bounds reads from a bad mapping. Per-
//! tensor data checksums are verified by the owned read path
//! ([`load_params`]) and on demand via
//! [`MappedParams::verify_data_checksums`]; the mmap fast path skips
//! them by design (reload cost must stay O(header), and the atomic
//! temp+fsync+rename publish protocol already rules out torn files).

use crate::storage::{Bytes, Mmap, StorageEncoding, TableStorage};
use crate::{Matrix, ParamStore};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"STPK";
const VERSION: u32 = 1;
const VERSION_V2: u32 = 2;
/// Fixed v2 header length in bytes.
const V2_HEADER_LEN: usize = 32;
/// The data region starts on a page boundary so mapped tensor data can
/// be given page-granular protections and never shares a page with
/// metadata.
const V2_PAGE_ALIGN: usize = 4096;
/// Every tensor (and scale vector) starts on a cache-line boundary.
const V2_TENSOR_ALIGN: usize = 64;

/// True for parameters that are embedding tables under the repo-wide
/// naming convention (`user_emb`, `poi_emb`, `word_emb`, ...): the ones
/// a lossy [`StorageEncoding`] applies to. Dense tower weights and
/// biases always serialize as f32 — they are tiny next to the tables
/// and matmul precision is worth more than their bytes.
pub fn is_table_param(name: &str) -> bool {
    name.ends_with("_emb")
}

/// Streaming FNV-1a 64 (dependency-free; not cryptographic — this
/// detects corruption, not tampering).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn align_up(x: usize, a: usize) -> usize {
    x.div_ceil(a) * a
}

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a checkpoint or is damaged.
    Corrupt(String),
    /// A newer/older format version.
    Version(u32),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CheckpointError> for std::io::Error {
    /// Collapses checkpoint failures into one `io::Error`, so callers on
    /// a serving path (hot-reload) handle every corruption mode through a
    /// single clean error type instead of a panic.
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes every parameter (name, shape, weights) to `out`.
pub fn save_params<W: Write>(store: &ParamStore, mut out: W) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        out.write_all(&(name.len() as u32).to_le_bytes())?;
        out.write_all(name.as_bytes())?;
        out.write_all(&(value.rows() as u32).to_le_bytes())?;
        out.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &x in value.as_slice() {
            out.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes a checkpoint to `path` crash-safely in the v2 container with
/// the default f32 encoding: the bytes go to a uniquely named temporary
/// file in the *same directory* (rename is only atomic within one
/// filesystem), are flushed and fsynced, and the file is then atomically
/// renamed over `path`. A crash at any point leaves either the previous
/// checkpoint or a stray `.tmp-*` file — never a torn checkpoint a
/// serve-side watcher could load halfway written.
///
/// The rename-only publish protocol is also what keeps live [`Mmap`]s
/// of the previous checkpoint valid: the old inode is never truncated
/// in place, only unlinked once the last mapping drops.
pub fn save_params_atomic(store: &ParamStore, path: &Path) -> std::io::Result<()> {
    save_params_atomic_as(store, path, StorageEncoding::F32)
}

/// [`save_params_atomic`] with an explicit table encoding — the writer
/// the online publisher uses to produce whatever format the serving
/// tier requests. Lossy encodings apply to `*_emb` tables only (see
/// [`is_table_param`]).
pub fn save_params_atomic_as(
    store: &ParamStore,
    path: &Path,
    format: StorageEncoding,
) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);

    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{base}.tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));

    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let mut out = std::io::BufWriter::new(file);
        save_params_v2(store, format, &mut out)?;
        out.flush()?;
        // Durability before visibility: the data must hit disk before the
        // rename makes it the checkpoint.
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    };
    let result = write();
    if result.is_err() {
        // Best-effort cleanup; the temp name is unique so a leftover can
        // never be mistaken for (or renamed over) a real checkpoint.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Encodes one parameter's (data, scales, checksum) for the v2 writer.
fn encode_param_v2(value: &Matrix, enc: StorageEncoding) -> (Vec<u8>, Vec<u8>, u64) {
    let mut data;
    let mut scales = Vec::new();
    match enc {
        StorageEncoding::F32 => {
            data = Vec::with_capacity(value.len() * 4);
            for &x in value.as_slice() {
                data.extend_from_slice(&x.to_le_bytes());
            }
        }
        StorageEncoding::F16 => {
            data = Vec::with_capacity(value.len() * 2);
            for &x in value.as_slice() {
                data.extend_from_slice(&crate::quant::f32_to_f16_bits(x).to_le_bytes());
            }
        }
        StorageEncoding::I8 => {
            let (rows, cols) = value.shape();
            data = vec![0u8; rows * cols];
            scales = Vec::with_capacity(rows * 4);
            let mut qrow = vec![0i8; cols];
            for r in 0..rows {
                let scale = crate::quant::quantize_row_i8(value.row(r), &mut qrow);
                scales.extend_from_slice(&scale.to_le_bytes());
                for (dst, &q) in data[r * cols..(r + 1) * cols].iter_mut().zip(&qrow) {
                    *dst = q as u8;
                }
            }
        }
    }
    let mut h = Fnv64::new();
    h.write(&data);
    h.write(&scales);
    let checksum = h.finish();
    (data, scales, checksum)
}

/// Writes the v2 container to `out`. `format` selects the encoding for
/// embedding tables (`*_emb` parameters); everything else stays f32.
/// The layout is computed up front, so this streams to any writer —
/// padding between regions is written as zeros.
pub fn save_params_v2<W: Write>(
    store: &ParamStore,
    format: StorageEncoding,
    mut out: W,
) -> std::io::Result<()> {
    struct Planned {
        name: String,
        enc: StorageEncoding,
        rows: usize,
        cols: usize,
        data: Vec<u8>,
        scales: Vec<u8>,
        data_off: usize,
        scales_off: usize,
        checksum: u64,
    }

    // Encode every parameter and lay out the data region.
    let mut planned: Vec<Planned> = Vec::with_capacity(store.len());
    let mut index_len = 0usize;
    for (_, name, value) in store.iter() {
        let enc = if is_table_param(name) {
            format
        } else {
            StorageEncoding::F32
        };
        let (data, scales, checksum) = encode_param_v2(value, enc);
        index_len += 4 + name.len() + 1 + 4 + 4 + 8 * 5;
        planned.push(Planned {
            name: name.to_string(),
            enc,
            rows: value.rows(),
            cols: value.cols(),
            data,
            scales,
            data_off: 0,
            scales_off: 0,
            checksum,
        });
    }
    let data_start = align_up(V2_HEADER_LEN + index_len, V2_PAGE_ALIGN);
    let mut cursor = data_start;
    for p in &mut planned {
        p.data_off = align_up(cursor, V2_TENSOR_ALIGN);
        cursor = p.data_off + p.data.len();
        if !p.scales.is_empty() {
            p.scales_off = align_up(cursor, V2_TENSOR_ALIGN);
            cursor = p.scales_off + p.scales.len();
        }
    }

    // Serialize the index and checksum it.
    let mut index = Vec::with_capacity(index_len);
    for p in &planned {
        index.extend_from_slice(&(p.name.len() as u32).to_le_bytes());
        index.extend_from_slice(p.name.as_bytes());
        index.push(p.enc.code());
        index.extend_from_slice(&(p.rows as u32).to_le_bytes());
        index.extend_from_slice(&(p.cols as u32).to_le_bytes());
        index.extend_from_slice(&(p.data_off as u64).to_le_bytes());
        index.extend_from_slice(&(p.data.len() as u64).to_le_bytes());
        index.extend_from_slice(&(p.scales_off as u64).to_le_bytes());
        index.extend_from_slice(&(p.scales.len() as u64).to_le_bytes());
        index.extend_from_slice(&p.checksum.to_le_bytes());
    }
    debug_assert_eq!(index.len(), index_len);
    let mut h = Fnv64::new();
    h.write(&index);

    // Header | index | zero padding | aligned tensor data.
    out.write_all(MAGIC)?;
    out.write_all(&VERSION_V2.to_le_bytes())?;
    out.write_all(&(store.len() as u32).to_le_bytes())?;
    out.write_all(&0u32.to_le_bytes())?;
    out.write_all(&(index_len as u64).to_le_bytes())?;
    out.write_all(&h.finish().to_le_bytes())?;
    out.write_all(&index)?;
    let mut written = V2_HEADER_LEN + index_len;
    let zeros = [0u8; 64];
    let pad_to = |out: &mut W, written: &mut usize, target: usize| -> std::io::Result<()> {
        while *written < target {
            let n = (target - *written).min(zeros.len());
            out.write_all(&zeros[..n])?;
            *written += n;
        }
        Ok(())
    };
    for p in &planned {
        pad_to(&mut out, &mut written, p.data_off)?;
        out.write_all(&p.data)?;
        written += p.data.len();
        if !p.scales.is_empty() {
            pad_to(&mut out, &mut written, p.scales_off)?;
            out.write_all(&p.scales)?;
            written += p.scales.len();
        }
    }
    Ok(())
}

/// Reads a checkpoint into a fresh [`ParamStore`], preserving parameter
/// order (so ids match the store that was saved). Dispatches on the
/// version field: v1 streams; v2 reads the container into memory,
/// verifies every checksum, and decodes all tensors (quantized tables
/// dequantize) into owned matrices. For zero-copy v2 access use
/// [`map_params`] instead.
pub fn load_params<R: Read>(mut input: R) -> Result<ParamStore, CheckpointError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let version = read_u32(&mut input)?;
    if version == VERSION_V2 {
        // Reconstruct the full byte image (offsets are absolute) and
        // parse through the shared v2 path with full verification.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V2.to_le_bytes());
        input.read_to_end(&mut bytes)?;
        let params = MappedParams::from_owned(bytes)?;
        params.verify_data_checksums()?;
        return Ok(params.to_store());
    }
    if version != VERSION {
        return Err(CheckpointError::Version(version));
    }
    let count = read_u32(&mut input)? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Corrupt(format!(
            "implausible param count {count}"
        )));
    }
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(&mut input)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt("implausible name length".into()));
        }
        let mut name = vec![0u8; name_len];
        input.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Corrupt("non-UTF8 parameter name".into()))?;
        let rows = read_u32(&mut input)? as usize;
        let cols = read_u32(&mut input)? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CheckpointError::Corrupt("shape overflow".into()))?;
        if len > 1 << 30 {
            return Err(CheckpointError::Corrupt("implausible matrix size".into()));
        }
        // Read weights incrementally: `len` comes from untrusted bytes,
        // so a corrupt shape must fail at EOF instead of first committing
        // to a multi-gigabyte zeroed buffer the stream cannot back.
        const CHUNK: usize = 1024;
        let mut data: Vec<f32> = Vec::with_capacity(len.min(CHUNK));
        let mut bytes = [0u8; 4 * CHUNK];
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            let buf = &mut bytes[..4 * take];
            input.read_exact(buf)?;
            data.extend(
                buf.chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            remaining -= take;
        }
        store.register_value(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(store)
}

fn read_u32<R: Read>(input: &mut R) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    input.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads just the version field of the checkpoint at `path` (8 bytes of
/// I/O) — how the serve reloader decides between the v2 mmap path and
/// the v1 legacy restore without touching the rest of the file.
pub fn snapshot_version(path: &Path) -> Result<u32, CheckpointError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    file.read_exact(&mut head)?;
    if &head[..4] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    Ok(u32::from_le_bytes([head[4], head[5], head[6], head[7]]))
}

/// One parsed v2 index entry (absolute offsets, already bounds-checked).
struct RawEntry {
    name: String,
    encoding: StorageEncoding,
    rows: usize,
    cols: usize,
    data_off: usize,
    data_len: usize,
    scales_off: usize,
    scales_len: usize,
    checksum: u64,
}

/// Parses and validates a v2 container image: magic, version, index
/// checksum, and — critically for the mmap path — every entry's offsets
/// and lengths against `bytes.len()`, so no later access can read out
/// of bounds whatever the file claims.
fn parse_v2(bytes: &[u8]) -> Result<Vec<RawEntry>, CheckpointError> {
    let corrupt = |m: &str| CheckpointError::Corrupt(m.into());
    if bytes.len() < V2_HEADER_LEN {
        return Err(corrupt("truncated header"));
    }
    if &bytes[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let version = u32_at(4);
    if version != VERSION_V2 {
        return Err(CheckpointError::Version(version));
    }
    let count = u32_at(8) as usize;
    if count > 1_000_000 {
        return Err(corrupt("implausible param count"));
    }
    let index_len = usize::try_from(u64_at(16)).map_err(|_| corrupt("index length overflow"))?;
    let index_end = V2_HEADER_LEN
        .checked_add(index_len)
        .ok_or_else(|| corrupt("index length overflow"))?;
    if index_end > bytes.len() {
        return Err(corrupt("truncated index"));
    }
    let index = &bytes[V2_HEADER_LEN..index_end];
    let mut h = Fnv64::new();
    h.write(index);
    if h.finish() != u64_at(24) {
        return Err(corrupt("index checksum mismatch"));
    }

    let mut entries = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], CheckpointError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= index.len())
            .ok_or_else(|| CheckpointError::Corrupt("index entry out of bounds".into()))?;
        let s = &index[pos..end];
        pos = end;
        Ok(s)
    };
    for _ in 0..count {
        let name_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        if name_len > 4096 {
            return Err(corrupt("implausible name length"));
        }
        let name = String::from_utf8(take(name_len)?.to_vec())
            .map_err(|_| corrupt("non-UTF8 parameter name"))?;
        let encoding = StorageEncoding::from_code(take(1)?[0])
            .ok_or_else(|| corrupt("unknown storage encoding"))?;
        let rows = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let cols = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("shape overflow"))?;
        if len > 1 << 30 {
            return Err(corrupt("implausible matrix size"));
        }
        let mut u64s = [0u64; 5];
        for slot in &mut u64s {
            *slot = u64::from_le_bytes(take(8)?.try_into().unwrap());
        }
        let [data_off, data_len, scales_off, scales_len, checksum] = u64s;
        let to_usize = |v: u64| usize::try_from(v).map_err(|_| corrupt("offset overflows usize"));
        let (data_off, data_len) = (to_usize(data_off)?, to_usize(data_len)?);
        let (scales_off, scales_len) = (to_usize(scales_off)?, to_usize(scales_len)?);
        // Lengths must match the declared shape exactly...
        if data_len != encoding.row_data_bytes(cols).saturating_mul(rows) {
            return Err(corrupt("data length does not match shape"));
        }
        let want_scales = match encoding {
            StorageEncoding::I8 => 4 * rows,
            _ => 0,
        };
        if scales_len != want_scales {
            return Err(corrupt("scale length does not match shape"));
        }
        // ...and every byte range must fall inside the file.
        let in_bounds = |off: usize, len: usize| {
            off >= index_end && off.checked_add(len).is_some_and(|end| end <= bytes.len())
        };
        if !in_bounds(data_off, data_len) || (scales_len > 0 && !in_bounds(scales_off, scales_len))
        {
            return Err(corrupt("tensor data out of bounds (truncated file?)"));
        }
        entries.push(RawEntry {
            name,
            encoding,
            rows,
            cols,
            data_off,
            data_len,
            scales_off,
            scales_len,
            checksum,
        });
    }
    if pos != index.len() {
        return Err(corrupt("trailing bytes in index"));
    }
    Ok(entries)
}

/// A parsed v2 checkpoint whose tensors are *views* into a shared byte
/// image — a memory-mapped file ([`map_params`]) or an owned buffer —
/// exposed as [`TableStorage`] values the snapshot layer gathers from
/// directly. No float is decoded until a row is actually read.
#[derive(Debug)]
pub struct MappedParams {
    entries: Vec<(String, TableStorage, u64)>,
    file_bytes: usize,
    mapped: bool,
}

impl MappedParams {
    fn build(
        raw: Vec<RawEntry>,
        file_bytes: usize,
        mapped: bool,
        mk: impl Fn(usize, usize) -> Bytes,
    ) -> Self {
        let entries = raw
            .into_iter()
            .map(|e| {
                let data = mk(e.data_off, e.data_len);
                let table = match e.encoding {
                    StorageEncoding::F32 => TableStorage::F32Bytes {
                        rows: e.rows,
                        cols: e.cols,
                        data,
                    },
                    StorageEncoding::F16 => TableStorage::F16 {
                        rows: e.rows,
                        cols: e.cols,
                        data,
                    },
                    StorageEncoding::I8 => TableStorage::I8 {
                        rows: e.rows,
                        cols: e.cols,
                        data,
                        scales: mk(e.scales_off, e.scales_len),
                    },
                };
                (e.name, table, e.checksum)
            })
            .collect();
        Self {
            entries,
            file_bytes,
            mapped,
        }
    }

    /// Parses a v2 image held in an owned buffer (the [`load_params`]
    /// path and the non-mmap fallback).
    pub fn from_owned(bytes: Vec<u8>) -> Result<Self, CheckpointError> {
        let raw = parse_v2(&bytes)?;
        let len = bytes.len();
        let buf = Arc::new(bytes);
        Ok(Self::build(raw, len, false, |off, n| {
            Bytes::from_arc(buf.clone(), off, n)
        }))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the checkpoint holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total container size in bytes (header + index + padding + data).
    pub fn file_bytes(&self) -> usize {
        self.file_bytes
    }

    /// True when tensors are served out of a memory-mapped file.
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Iterates `(name, storage)` in checkpoint order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TableStorage)> {
        self.entries.iter().map(|(n, t, _)| (n.as_str(), t))
    }

    /// The storage view of parameter `name`, if present.
    pub fn get(&self, name: &str) -> Option<&TableStorage> {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, t, _)| t)
    }

    /// Decodes parameter `name` to an owned matrix (dequantizing if
    /// needed), if present.
    pub fn matrix(&self, name: &str) -> Option<Matrix> {
        self.get(name).map(TableStorage::to_matrix)
    }

    /// Decodes every parameter into an owned [`ParamStore`], preserving
    /// checkpoint order — the migration path back to full-precision
    /// training state.
    pub fn to_store(&self) -> ParamStore {
        let mut store = ParamStore::new();
        for (name, table, _) in &self.entries {
            store.register_value(name.clone(), table.to_matrix());
        }
        store
    }

    /// Verifies every tensor's FNV-1a 64 data checksum (element data
    /// then scales). O(file size) — the owned read path always runs it;
    /// the serving mmap path skips it by design (see the module docs)
    /// but can invoke it explicitly, e.g. at startup.
    pub fn verify_data_checksums(&self) -> Result<(), CheckpointError> {
        for (name, table, want) in &self.entries {
            let mut h = Fnv64::new();
            match table {
                TableStorage::F32(_) => unreachable!("mapped params are byte-backed"),
                TableStorage::F32Bytes { data, .. } | TableStorage::F16 { data, .. } => {
                    h.write(data.as_slice());
                }
                TableStorage::I8 { data, scales, .. } => {
                    h.write(data.as_slice());
                    h.write(scales.as_slice());
                }
            }
            if h.finish() != *want {
                return Err(CheckpointError::Corrupt(format!(
                    "data checksum mismatch for parameter '{name}'"
                )));
            }
        }
        Ok(())
    }
}

/// Memory-maps the v2 checkpoint at `path` and returns zero-copy views
/// of its tensors. Cost is O(header + index): the magic, version, index
/// checksum and all entry bounds are validated, but tensor bytes are
/// not touched (and thus not paged in) until gathered. Returns
/// [`CheckpointError::Version`] for a v1 file — callers fall back to
/// [`load_params`] for migration.
pub fn map_params(path: &Path) -> Result<MappedParams, CheckpointError> {
    let file = std::fs::File::open(path)?;
    let map = Arc::new(Mmap::map(&file)?);
    let raw = parse_v2(map.as_slice())?;
    let len = map.len();
    Ok(MappedParams::build(raw, len, true, |off, n| {
        Bytes::from_mmap(map.clone(), off, n)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Init;
    use rand::{rngs::SmallRng, SeedableRng};

    fn sample_store() -> ParamStore {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.register("emb", 5, 4, Init::Gaussian { std: 1.0 }, &mut rng);
        store.register("w", 4, 2, Init::XavierUniform, &mut rng);
        store.register("b", 1, 2, Init::Zeros, &mut rng);
        store
    }

    #[test]
    fn roundtrip_is_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, name_a, val_a), (_, name_b, val_b)) in store.iter().zip(loaded.iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(val_a, val_b, "bit-exact weights for {name_a}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_params(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        save_params(&sample_store(), &mut buf).unwrap();
        buf[4] = 99; // clobber version
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Version(99)));
    }

    #[test]
    fn atomic_save_roundtrips_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!(
            "st-tensor-ckpt-atomic-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");

        let store = sample_store();
        save_params_atomic(&store, &path).unwrap();
        let loaded = load_params(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(loaded.len(), store.len());

        // Overwriting an existing checkpoint also goes through the
        // temp+rename path and replaces it completely.
        save_params_atomic(&store, &path).unwrap();
        let reloaded = load_params(std::fs::File::open(&path).unwrap()).unwrap();
        for ((_, name_a, val_a), (_, name_b, val_b)) in store.iter().zip(reloaded.iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(val_a, val_b);
        }

        // No stray temporaries after successful writes.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_save_into_missing_directory_fails_cleanly() {
        let path = std::env::temp_dir()
            .join(format!("st-tensor-ckpt-noexist-{}", std::process::id()))
            .join("sub")
            .join("model.bin");
        assert!(save_params_atomic(&sample_store(), &path).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut buf = Vec::new();
        save_params(&sample_store(), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    /// A store shaped like the model's: embedding tables (which lossy
    /// encodings apply to) plus dense tower weights (always f32).
    fn model_like_store() -> ParamStore {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        store.register("user_emb", 17, 8, Init::Gaussian { std: 0.5 }, &mut rng);
        store.register("poi_emb", 23, 8, Init::Gaussian { std: 0.5 }, &mut rng);
        store.register("tower.0.w", 16, 4, Init::XavierUniform, &mut rng);
        store.register("tower.0.b", 1, 4, Init::Zeros, &mut rng);
        store
    }

    fn assert_stores_equal(a: &ParamStore, b: &ParamStore) {
        assert_eq!(a.len(), b.len());
        for ((_, na, va), (_, nb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(va, vb, "bit-exact weights for {na}");
        }
    }

    #[test]
    fn v2_f32_roundtrip_is_exact() {
        let store = model_like_store();
        let mut buf = Vec::new();
        save_params_v2(&store, StorageEncoding::F32, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn v2_lossy_encodings_touch_only_emb_tables() {
        let store = model_like_store();
        for format in [StorageEncoding::F16, StorageEncoding::I8] {
            let mut buf = Vec::new();
            save_params_v2(&store, format, &mut buf).unwrap();
            let mapped = MappedParams::from_owned(buf).unwrap();
            assert_eq!(mapped.get("user_emb").unwrap().encoding(), format);
            assert_eq!(mapped.get("poi_emb").unwrap().encoding(), format);
            // Dense layers stay f32 and decode bit-exactly.
            assert_eq!(
                mapped.get("tower.0.w").unwrap().encoding(),
                StorageEncoding::F32
            );
            let (_, _, w) = store.iter().nth(2).unwrap();
            assert_eq!(&mapped.matrix("tower.0.w").unwrap(), w);
        }
    }

    #[test]
    fn v2_map_params_matches_owned_parse() {
        let dir = std::env::temp_dir().join(format!("st-tensor-v2-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.v2");
        let store = model_like_store();
        save_params_atomic_as(&store, &path, StorageEncoding::I8).unwrap();

        let mapped = map_params(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.len(), store.len());
        mapped.verify_data_checksums().unwrap();
        let via_map = mapped.to_store();
        let via_read = load_params(std::fs::File::open(&path).unwrap()).unwrap();
        assert_stores_equal(&via_map, &via_read);

        // Quantization error is bounded per row.
        let (_, _, orig) = store.iter().next().unwrap();
        let got = mapped.matrix("user_emb").unwrap();
        for r in 0..orig.rows() {
            let max_abs = orig.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let bound = crate::quant::i8_row_error_bound(max_abs) * 1.0001 + 1e-9;
            for (&x, &y) in orig.row(r).iter().zip(got.row(r)) {
                assert!((x - y).abs() <= bound);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_layout_is_aligned() {
        let store = model_like_store();
        let mut buf = Vec::new();
        save_params_v2(&store, StorageEncoding::I8, &mut buf).unwrap();
        let entries = parse_v2(&buf).unwrap();
        for e in &entries {
            assert_eq!(
                e.data_off % V2_TENSOR_ALIGN,
                0,
                "{} data misaligned",
                e.name
            );
            assert!(e.data_off >= V2_PAGE_ALIGN, "data region not page-aligned");
            if e.scales_len > 0 {
                assert_eq!(e.scales_off % V2_TENSOR_ALIGN, 0);
            }
        }
    }

    #[test]
    fn v2_corruption_fails_cleanly() {
        let store = model_like_store();
        let mut buf = Vec::new();
        save_params_v2(&store, StorageEncoding::F16, &mut buf).unwrap();

        // Truncations at every region boundary (and mid-data) must error,
        // never panic or read out of bounds.
        for cut in [4, 16, V2_HEADER_LEN + 10, V2_PAGE_ALIGN + 3, buf.len() - 1] {
            let mut t = buf.clone();
            t.truncate(cut);
            assert!(
                MappedParams::from_owned(t).is_err(),
                "truncation at {cut} accepted"
            );
        }

        // Flipping a data byte passes structural parse but fails checksum
        // verification (and therefore load_params).
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        let parsed = MappedParams::from_owned(flipped.clone()).unwrap();
        assert!(matches!(
            parsed.verify_data_checksums(),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(load_params(flipped.as_slice()).is_err());

        // Flipping an index byte fails the index checksum immediately.
        let mut idx = buf.clone();
        idx[V2_HEADER_LEN + 2] ^= 0xff;
        assert!(matches!(
            MappedParams::from_owned(idx),
            Err(CheckpointError::Corrupt(_))
        ));

        // Wrong version byte reports the version, for both read paths.
        let mut ver = buf.clone();
        ver[4] = 77;
        assert!(matches!(
            MappedParams::from_owned(ver.clone()),
            Err(CheckpointError::Version(77))
        ));
        assert!(matches!(
            load_params(ver.as_slice()),
            Err(CheckpointError::Version(77))
        ));

        // Every failure converts to a clean io::Error for serving paths.
        let mut t = buf.clone();
        t.truncate(40);
        let e: std::io::Error = MappedParams::from_owned(t).unwrap_err().into();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn v2_map_params_rejects_truncated_file() {
        let dir = std::env::temp_dir().join(format!("st-tensor-v2-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.v2");
        let store = model_like_store();
        let mut buf = Vec::new();
        save_params_v2(&store, StorageEncoding::I8, &mut buf).unwrap();
        buf.truncate(buf.len() - 16);
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            map_params(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_version_peeks_both_formats() {
        let dir = std::env::temp_dir().join(format!("st-tensor-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = sample_store();

        let v1 = dir.join("v1.bin");
        let mut f = std::fs::File::create(&v1).unwrap();
        save_params(&store, &mut f).unwrap();
        assert_eq!(snapshot_version(&v1).unwrap(), 1);

        let v2 = dir.join("v2.bin");
        save_params_atomic(&store, &v2).unwrap();
        assert_eq!(snapshot_version(&v2).unwrap(), 2);

        std::fs::write(&v1, b"JUNKJUNK").unwrap();
        assert!(snapshot_version(&v1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
