//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records a computation as a flat list of nodes; every op
//! method both computes the forward value eagerly and remembers what it
//! needs for the backward pass. Calling [`Tape::backward`] walks the nodes
//! in reverse, accumulating parameter gradients into a
//! [`Gradients`] buffer keyed by [`ParamId`].
//!
//! Tapes borrow a [`ParamStore`] immutably, so building a step is:
//!
//! ```
//! use st_tensor::{Init, Matrix, ParamStore, Gradients, Tape};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let w = store.register("w", 2, 1, Init::Constant(0.5), &mut rng);
//!
//! let mut tape = Tape::new(&store);
//! let x = tape.input(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
//! let wv = tape.param(w);
//! let y = tape.matmul(x, wv);
//! let loss = tape.mean_all(y);
//!
//! let mut grads = Gradients::zeros_like(&store);
//! tape.backward(loss, &mut grads);
//! assert!(grads.get(w).is_some());
//! ```

use crate::ops::{self, stable_sigmoid};
use crate::pool::MatrixPool;
use crate::{Gradients, Matrix, ParamId, ParamStore};
use rand::Rng;
use std::cell::RefCell;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Constant input; no gradient flows out.
    Input,
    /// Dense read of a whole parameter.
    Param(ParamId),
    /// Sparse read of selected parameter rows (embedding lookup).
    GatherParam {
        pid: ParamId,
        indices: Vec<usize>,
    },
    MatMul {
        a: Var,
        b: Var,
    },
    /// Reference matmul through the scalar naive kernels (baseline for
    /// benchmarking the blocked path end to end, forward and backward).
    MatMulNaive {
        a: Var,
        b: Var,
    },
    Transpose {
        a: Var,
    },
    Add {
        a: Var,
        b: Var,
    },
    Sub {
        a: Var,
        b: Var,
    },
    MulElem {
        a: Var,
        b: Var,
    },
    Scale {
        a: Var,
        c: f32,
    },
    AddScalar {
        a: Var,
    },
    AddRowBroadcast {
        a: Var,
        row: Var,
    },
    AddColBroadcast {
        a: Var,
        col: Var,
    },
    Relu {
        a: Var,
    },
    Sigmoid {
        a: Var,
    },
    Tanh {
        a: Var,
    },
    Exp {
        a: Var,
    },
    Ln {
        a: Var,
    },
    ConcatCols {
        a: Var,
        b: Var,
    },
    ConcatRows {
        a: Var,
        b: Var,
    },
    SumAll {
        a: Var,
    },
    MeanAll {
        a: Var,
    },
    SumCols {
        a: Var,
    },
    SumRows {
        a: Var,
    },
    RowDot {
        a: Var,
        b: Var,
    },
    Dropout {
        a: Var,
        mask: Matrix,
    },
    /// Fused Gaussian kernel `K_ij = exp(-||x_i - y_j||^2 / (2 sigma^2))`
    /// with an analytic backward pass (the node value saves `K` itself).
    GaussianKernel {
        x: Var,
        y: Var,
        sigma: f32,
    },
    /// Mean binary cross-entropy over logits, computed numerically stably.
    BceWithLogits {
        logits: Var,
        targets: Matrix,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A single forward computation, differentiable in reverse.
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
    /// Buffer pool serving forward matmuls and backward adjoints; in a
    /// `RefCell` because [`Tape::backward`] runs on `&self`.
    pool: RefCell<MatrixPool>,
}

impl<'s> Tape<'s> {
    /// Starts a fresh tape over `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Self::with_pool(store, MatrixPool::new())
    }

    /// Starts a tape that draws intermediate buffers from `pool`.
    ///
    /// Recover the pool (grown by this tape's matrices) with
    /// [`Tape::into_pool`] and hand it to the next step's tape; in steady
    /// state a training loop then stops allocating entirely.
    pub fn with_pool(store: &'s ParamStore, pool: MatrixPool) -> Self {
        Self {
            store,
            nodes: Vec::with_capacity(64),
            pool: RefCell::new(pool),
        }
    }

    /// Consumes the tape, releasing every recorded matrix into the pool
    /// and returning it.
    pub fn into_pool(self) -> MatrixPool {
        let mut pool = self.pool.into_inner();
        for node in self.nodes {
            pool.release(node.value);
            match node.op {
                Op::Dropout { mask, .. } => pool.release(mask),
                Op::BceWithLogits { targets, .. } => pool.release(targets),
                _ => {}
            }
        }
        pool
    }

    /// A zero-filled pooled matrix.
    fn alloc(&self, rows: usize, cols: usize) -> Matrix {
        self.pool.borrow_mut().acquire_zeroed(rows, cols)
    }

    /// A pooled copy of `src`.
    fn alloc_copy(&self, src: &Matrix) -> Matrix {
        self.pool.borrow_mut().acquire_copy(src)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    // ---- sources -------------------------------------------------------

    /// Records a constant input (no gradient).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Input)
    }

    /// Records a dense read of parameter `pid`.
    pub fn param(&mut self, pid: ParamId) -> Var {
        self.push(self.store.get(pid).clone(), Op::Param(pid))
    }

    /// Records an embedding lookup: rows `indices` of parameter `pid`.
    ///
    /// The backward pass scatters gradient only into the touched rows,
    /// which keeps large embedding tables cheap to train.
    pub fn gather_param(&mut self, pid: ParamId, indices: &[usize]) -> Var {
        let value = self.store.get(pid).gather_rows(indices);
        self.push(
            value,
            Op::GatherParam {
                pid,
                indices: indices.to_vec(),
            },
        )
    }

    // ---- linear algebra --------------------------------------------------

    /// Matrix product (forward math shared with the inference executor
    /// through [`crate::ops::matmul`]).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.alloc(self.value(a).rows(), self.value(b).cols());
        ops::matmul(self.value(a), self.value(b), &mut out);
        self.push(out, Op::MatMul { a, b })
    }

    /// Matrix product through the scalar reference kernels, forward and
    /// backward. Functionally identical to [`Tape::matmul`]; exists so
    /// benches and differential tests can drive a whole computation
    /// (e.g. an MMD step) through the naive baseline.
    pub fn matmul_naive(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_naive(self.value(b));
        self.push(value, Op::MatMulNaive { a, b })
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose { a })
    }

    /// Elementwise sum of same-shaped operands.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add { a, b })
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub { a, b })
    }

    /// Elementwise product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul_elem(self.value(b));
        self.push(value, Op::MulElem { a, b })
    }

    /// Scales all elements by the constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).scale(c);
        self.push(value, Op::Scale { a, c })
    }

    /// Adds the constant `c` to all elements.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| x + c);
        self.push(value, Op::AddScalar { a })
    }

    /// Adds a `1 x m` row vector to each row of an `n x m` matrix (bias add).
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        ops::add_row_broadcast_assign(&mut value, self.value(row));
        self.push(value, Op::AddRowBroadcast { a, row })
    }

    /// Adds an `n x 1` column vector to each column of an `n x m` matrix.
    pub fn add_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let value = self.value(a).add_col_broadcast(self.value(col));
        self.push(value, Op::AddColBroadcast { a, col })
    }

    // ---- nonlinearities --------------------------------------------------

    /// `max(0, x)` elementwise.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        ops::relu_assign(&mut value);
        self.push(value, Op::Relu { a })
    }

    /// Logistic sigmoid elementwise.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        ops::sigmoid_assign(&mut value);
        self.push(value, Op::Sigmoid { a })
    }

    /// Hyperbolic tangent elementwise.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        ops::tanh_assign(&mut value);
        self.push(value, Op::Tanh { a })
    }

    /// `exp(x)` elementwise.
    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::exp);
        self.push(value, Op::Exp { a })
    }

    /// `ln(x)` elementwise. Inputs must be positive.
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::ln);
        self.push(value, Op::Ln { a })
    }

    // ---- structure -------------------------------------------------------

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_cols(self.value(b));
        self.push(value, Op::ConcatCols { a, b })
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_rows(self.value(b));
        self.push(value, Op::ConcatRows { a, b })
    }

    // ---- reductions ------------------------------------------------------

    /// Sum of all elements, as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::scalar(self.value(a).sum());
        self.push(value, Op::SumAll { a })
    }

    /// Mean of all elements, as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::scalar(self.value(a).mean());
        self.push(value, Op::MeanAll { a })
    }

    /// Per-row sums (`n x 1`).
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let value = self.value(a).sum_cols();
        self.push(value, Op::SumCols { a })
    }

    /// Per-column sums (`1 x m`).
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).sum_rows();
        self.push(value, Op::SumRows { a })
    }

    /// Rowwise dot products of two same-shaped matrices (`n x 1`).
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).row_dot(self.value(b));
        self.push(value, Op::RowDot { a, b })
    }

    // ---- regularization / losses ------------------------------------------

    /// Inverted dropout with keep-probability `1 - p`.
    ///
    /// At `p == 0.0` this is the identity (no node is recorded). Kept units
    /// are scaled by `1/(1-p)` so inference needs no rescaling.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        if p == 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let (r, c) = self.value(a).shape();
        let mut mask = Matrix::zeros(r, c);
        for m in mask.as_mut_slice() {
            if rng.gen::<f32>() < keep {
                *m = scale;
            }
        }
        let value = self.value(a).mul_elem(&mask);
        self.push(value, Op::Dropout { a, mask })
    }

    /// Mean binary cross-entropy between `logits` and `targets`
    /// (same shape), computed via the numerically stable form
    /// `max(z,0) - z*t + ln(1 + e^{-|z|})`. Returns a `1 x 1` loss.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix) -> Var {
        assert_eq!(
            self.value(logits).shape(),
            targets.shape(),
            "bce_with_logits shape mismatch"
        );
        assert!(!targets.is_empty(), "bce_with_logits on empty batch");
        let z = self.value(logits);
        let mut total = 0.0f64;
        for (&z, &t) in z.as_slice().iter().zip(targets.as_slice()) {
            total += (z.max(0.0) - z * t + (-z.abs()).exp().ln_1p()) as f64;
        }
        let value = Matrix::scalar((total / targets.len() as f64) as f32);
        self.push(value, Op::BceWithLogits { logits, targets })
    }

    // ---- composites -------------------------------------------------------

    /// Affine map `x W + b` where `b` is a `1 x out` bias row.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let xw = self.matmul(x, w);
        self.add_row_broadcast(xw, b)
    }

    /// Gaussian kernel matrix `K_ij = exp(-||x_i - y_j||^2 / (2 sigma^2))`
    /// between the rows of `x` (`n x d`) and `y` (`m x d`).
    ///
    /// Fused: the forward pass is one [`Matrix::pairwise_sq_dist`] (row
    /// norms computed once, cross terms through the blocked `x * y^T`
    /// kernel) plus an in-place `exp`; the backward pass is analytic,
    /// so none of the composite formulation's intermediate `n x m`
    /// matrices are materialized or differentiated through.
    pub fn gaussian_kernel(&mut self, x: Var, y: Var, sigma: f32) -> Var {
        assert!(sigma > 0.0, "kernel bandwidth must be positive");
        let mut k = self.alloc(self.value(x).rows(), self.value(y).rows());
        self.value(x).pairwise_sq_dist_into(self.value(y), &mut k);
        let neg_inv = -1.0 / (2.0 * sigma * sigma);
        k.map_inplace(|d| (d * neg_inv).exp());
        self.push(k, Op::GaussianKernel { x, y, sigma })
    }

    /// The Gaussian kernel built from tape primitives (reference for the
    /// fused [`Tape::gaussian_kernel`]), with its matmul routed through
    /// the naive kernels: `||x_i - y_j||^2 = |x_i|^2 + |y_j|^2 - 2 x_i . y_j`.
    ///
    /// Gradients flow into both operands through each primitive, which
    /// makes this the end-to-end baseline the fused op is benchmarked
    /// and differentially tested against.
    pub fn gaussian_kernel_composite(&mut self, x: Var, y: Var, sigma: f32) -> Var {
        assert!(sigma > 0.0, "kernel bandwidth must be positive");
        let xx = self.mul_elem(x, x);
        let sx = self.sum_cols(xx); // n x 1
        let yy = self.mul_elem(y, y);
        let sy = self.sum_cols(yy); // m x 1
        let syt = self.transpose(sy); // 1 x m
        let yt = self.transpose(y);
        let xyt = self.matmul_naive(x, yt); // n x m
        let minus2xy = self.scale(xyt, -2.0);
        let with_rows = self.add_row_broadcast(minus2xy, syt);
        let sqdist = self.add_col_broadcast(with_rows, sx);
        let scaled = self.scale(sqdist, -1.0 / (2.0 * sigma * sigma));
        self.exp(scaled)
    }

    // ---- backward ----------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `loss`, accumulating
    /// parameter gradients into `grads`.
    ///
    /// May be called several times on one tape with different scalar roots;
    /// each call accumulates into `grads` (so summed losses can also be
    /// differentiated term by term).
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&self, loss: Var, grads: &mut Gradients) {
        self.backward_scaled(loss, 1.0, grads);
    }

    /// As [`Tape::backward`], but seeds the root gradient with `seed`
    /// (differentiating `seed * loss`). Useful for loss-term weights.
    pub fn backward_scaled(&self, loss: Var, seed: f32, grads: &mut Gradients) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward root must be a 1x1 scalar"
        );
        let mut adj: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        adj[loss.0] = Some(Matrix::scalar(seed));

        for i in (0..=loss.0).rev() {
            let Some(g) = adj[i].take() else { continue };
            self.accumulate_node(i, &g, &mut adj, grads);
            // The adjoint has been fully consumed; recycle its buffer for
            // the deltas of earlier nodes.
            self.pool.borrow_mut().release(g);
        }
    }

    fn add_adj(&self, adj: &mut [Option<Matrix>], v: Var, delta: Matrix) {
        match &mut adj[v.0] {
            Some(g) => {
                g.axpy(1.0, &delta);
                self.pool.borrow_mut().release(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Adds a constant-filled `r x c` delta to `v`'s adjoint (pooled).
    fn add_adj_full(&self, adj: &mut [Option<Matrix>], v: Var, r: usize, c: usize, val: f32) {
        let mut m = self.alloc(r, c);
        m.as_mut_slice().fill(val);
        self.add_adj(adj, v, m);
    }

    fn accumulate_node(
        &self,
        i: usize,
        g: &Matrix,
        adj: &mut [Option<Matrix>],
        grads: &mut Gradients,
    ) {
        let node = &self.nodes[i];
        debug_assert_eq!(g.shape(), node.value.shape(), "adjoint shape mismatch");
        match &node.op {
            Op::Input => {}
            Op::Param(pid) => grads.accumulate(*pid, g),
            Op::GatherParam { pid, indices } => {
                let (rows, cols) = self.store.get(*pid).shape();
                for (out_row, &src_row) in indices.iter().enumerate() {
                    grads.accumulate_row(*pid, rows, cols, src_row, g.row(out_row));
                }
            }
            Op::MatMul { a, b } => {
                let (av, bv) = (self.value(*a), self.value(*b));
                let mut da = self.alloc(av.rows(), av.cols());
                g.matmul_transpose_b_into(bv, &mut da);
                let mut db = self.alloc(bv.rows(), bv.cols());
                av.matmul_transpose_a_into(g, &mut db);
                self.add_adj(adj, *a, da);
                self.add_adj(adj, *b, db);
            }
            Op::MatMulNaive { a, b } => {
                let da = g.matmul_transpose_b_naive(self.value(*b));
                let db = self.value(*a).matmul_transpose_a_naive(g);
                self.add_adj(adj, *a, da);
                self.add_adj(adj, *b, db);
            }
            Op::Transpose { a } => self.add_adj(adj, *a, g.transpose()),
            Op::Add { a, b } => {
                self.add_adj(adj, *a, self.alloc_copy(g));
                self.add_adj(adj, *b, self.alloc_copy(g));
            }
            Op::Sub { a, b } => {
                self.add_adj(adj, *a, self.alloc_copy(g));
                self.add_adj(adj, *b, g.scale(-1.0));
            }
            Op::MulElem { a, b } => {
                self.add_adj(adj, *a, g.mul_elem(self.value(*b)));
                self.add_adj(adj, *b, g.mul_elem(self.value(*a)));
            }
            Op::Scale { a, c } => self.add_adj(adj, *a, g.scale(*c)),
            Op::AddScalar { a } => self.add_adj(adj, *a, self.alloc_copy(g)),
            Op::AddRowBroadcast { a, row } => {
                self.add_adj(adj, *a, self.alloc_copy(g));
                self.add_adj(adj, *row, g.sum_rows());
            }
            Op::AddColBroadcast { a, col } => {
                self.add_adj(adj, *a, self.alloc_copy(g));
                self.add_adj(adj, *col, g.sum_cols());
            }
            Op::Relu { a } => {
                let da = g.zip(&node.value, |g, y| if y > 0.0 { g } else { 0.0 });
                self.add_adj(adj, *a, da);
            }
            Op::Sigmoid { a } => {
                let da = g.zip(&node.value, |g, y| g * y * (1.0 - y));
                self.add_adj(adj, *a, da);
            }
            Op::Tanh { a } => {
                let da = g.zip(&node.value, |g, y| g * (1.0 - y * y));
                self.add_adj(adj, *a, da);
            }
            Op::Exp { a } => self.add_adj(adj, *a, g.mul_elem(&node.value)),
            Op::Ln { a } => {
                let da = g.zip(self.value(*a), |g, x| g / x);
                self.add_adj(adj, *a, da);
            }
            Op::ConcatCols { a, b } => {
                let ca = self.value(*a).cols();
                let cb = self.value(*b).cols();
                let rows = g.rows();
                let mut da = Matrix::zeros(rows, ca);
                let mut db = Matrix::zeros(rows, cb);
                for r in 0..rows {
                    da.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                    db.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                }
                self.add_adj(adj, *a, da);
                self.add_adj(adj, *b, db);
            }
            Op::ConcatRows { a, b } => {
                let ra = self.value(*a).rows();
                let cols = g.cols();
                let da = Matrix::from_vec(ra, cols, g.as_slice()[..ra * cols].to_vec());
                let db = Matrix::from_vec(g.rows() - ra, cols, g.as_slice()[ra * cols..].to_vec());
                self.add_adj(adj, *a, da);
                self.add_adj(adj, *b, db);
            }
            Op::SumAll { a } => {
                let (r, c) = self.value(*a).shape();
                self.add_adj_full(adj, *a, r, c, g.item());
            }
            Op::MeanAll { a } => {
                let (r, c) = self.value(*a).shape();
                let scale = g.item() / (r * c) as f32;
                self.add_adj_full(adj, *a, r, c, scale);
            }
            Op::SumCols { a } => {
                let (r, c) = self.value(*a).shape();
                let mut da = self.alloc(r, c);
                for row in 0..r {
                    let gr = g.as_slice()[row];
                    for x in da.row_mut(row) {
                        *x = gr;
                    }
                }
                self.add_adj(adj, *a, da);
            }
            Op::SumRows { a } => {
                let (r, c) = self.value(*a).shape();
                let mut da = self.alloc(r, c);
                for row in 0..r {
                    da.row_mut(row).copy_from_slice(g.as_slice());
                }
                let _ = c;
                self.add_adj(adj, *a, da);
            }
            Op::RowDot { a, b } => {
                let da = self.value(*b).mul_col_broadcast(g);
                let db = self.value(*a).mul_col_broadcast(g);
                self.add_adj(adj, *a, da);
                self.add_adj(adj, *b, db);
            }
            Op::Dropout { a, mask } => self.add_adj(adj, *a, g.mul_elem(mask)),
            Op::GaussianKernel { x, y, sigma } => {
                // K_ij = exp(-||x_i - y_j||^2 / (2 s^2)); with W = g . K
                // (elementwise),
                //   dL/dx = (W y - diag(W 1) x) / s^2
                //   dL/dy = (W^T x - diag(W^T 1) y) / s^2.
                // When x and y are the same node, add_adj sums the two
                // partials, which is exactly the repeated-argument rule.
                let inv = 1.0 / (sigma * sigma);
                let (xv, yv) = (self.value(*x), self.value(*y));
                let w = g.mul_elem(&node.value); // n x m

                let mut dx = self.alloc(xv.rows(), xv.cols());
                w.matmul_into(yv, &mut dx);
                let w_row_sums = w.sum_cols(); // n x 1
                for r in 0..dx.rows() {
                    let s = w_row_sums.as_slice()[r];
                    for (o, &xe) in dx.row_mut(r).iter_mut().zip(xv.row(r)) {
                        *o = inv * (*o - s * xe);
                    }
                }

                let mut dy = self.alloc(yv.rows(), yv.cols());
                w.matmul_transpose_a_into(xv, &mut dy);
                let w_col_sums = w.sum_rows(); // 1 x m
                for r in 0..dy.rows() {
                    let s = w_col_sums.as_slice()[r];
                    for (o, &ye) in dy.row_mut(r).iter_mut().zip(yv.row(r)) {
                        *o = inv * (*o - s * ye);
                    }
                }

                self.add_adj(adj, *x, dx);
                self.add_adj(adj, *y, dy);
                self.pool.borrow_mut().release(w);
            }
            Op::BceWithLogits { logits, targets } => {
                let n = targets.len() as f32;
                let seed = g.item();
                let da = self
                    .value(*logits)
                    .zip(targets, |z, t| seed * (stable_sigmoid(z) - t) / n);
                self.add_adj(adj, *logits, da);
            }
        }
    }
}

impl Matrix {
    /// Multiplies each row `r` by the scalar `col[r]` (used by `RowDot`'s
    /// backward pass; lives here to reuse the buffer layout).
    fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        debug_assert_eq!(col.cols(), 1);
        debug_assert_eq!(col.rows(), self.rows());
        let mut out = self.clone();
        for r in 0..out.rows() {
            let c = col.as_slice()[r];
            for x in out.row_mut(r) {
                *x *= c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn stable_sigmoid_extremes() {
        assert_eq!(stable_sigmoid(0.0), 0.5);
        assert!((stable_sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(stable_sigmoid(-100.0) < 1e-6);
        assert!(stable_sigmoid(-1000.0).is_finite());
        assert!(stable_sigmoid(1000.0).is_finite());
    }

    #[test]
    fn forward_values_match_matrix_ops() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let a = t.input(Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]));
        let r = t.relu(a);
        assert_eq!(t.value(r).as_slice(), &[1.0, 0.0, 3.0, 0.0]);
        let s = t.sum_all(r);
        assert_eq!(t.value(s).item(), 4.0);
    }

    #[test]
    fn backward_through_matmul_linear() {
        // loss = mean(x W + b); grads have closed form.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.register("w", 2, 3, Init::Gaussian { std: 0.3 }, &mut rng);
        let b = store.register("b", 1, 3, Init::Zeros, &mut rng);
        let x = Matrix::from_vec(4, 2, (0..8).map(|i| i as f32 * 0.25 - 1.0).collect());

        let mut tape = Tape::new(&store);
        let xv = tape.input(x.clone());
        let wv = tape.param(w);
        let bv = tape.param(b);
        let y = tape.linear(xv, wv, bv);
        let loss = tape.mean_all(y);

        let mut grads = Gradients::zeros_like(&store);
        tape.backward(loss, &mut grads);

        // d loss / d b_j = 4 rows * (1/12) = 1/3 each.
        let gb = grads.get(b).unwrap();
        assert!(gb.approx_eq(&Matrix::full(1, 3, 4.0 / 12.0), 1e-6));
        // d loss / d W = x^T * (1/12) ones(4,3)
        let expected = x.matmul_transpose_a(&Matrix::full(4, 3, 1.0 / 12.0));
        assert!(grads.get(w).unwrap().approx_eq(&expected, 1e-6));
    }

    #[test]
    fn gather_param_scatters_sparse_gradients() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let table = store.register("emb", 5, 2, Init::Gaussian { std: 1.0 }, &mut rng);

        let mut tape = Tape::new(&store);
        let e = tape.gather_param(table, &[3, 1, 3]);
        let loss = tape.sum_all(e);
        let mut grads = Gradients::zeros_like(&store);
        tape.backward(loss, &mut grads);

        let g = grads.to_dense(table).unwrap();
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
        assert_eq!(g.row(3), &[2.0, 2.0], "row 3 gathered twice");
        assert_eq!(g.row(4), &[0.0, 0.0]);
    }

    #[test]
    fn bce_with_logits_matches_naive_formula() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let z = Matrix::column(&[0.5, -1.5, 2.0]);
        let t = Matrix::column(&[1.0, 0.0, 1.0]);
        let zv = tape.input(z.clone());
        let loss = tape.bce_with_logits(zv, t.clone());

        let naive: f32 = z
            .as_slice()
            .iter()
            .zip(t.as_slice())
            .map(|(&z, &t)| {
                let p = stable_sigmoid(z);
                -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
            })
            .sum::<f32>()
            / 3.0;
        assert!((tape.value(loss).item() - naive).abs() < 1e-5);
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let mut rng = SmallRng::seed_from_u64(0);
        let a = tape.input(Matrix::full(2, 2, 1.0));
        let d = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(a, d);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let mut rng = SmallRng::seed_from_u64(11);
        let a = tape.input(Matrix::full(100, 100, 1.0));
        let d = tape.dropout(a, 0.3, &mut rng);
        let mean = tape.value(d).mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
    }

    #[test]
    fn gaussian_kernel_diagonal_is_one_for_identical_rows() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]);
        let a = tape.input(x.clone());
        let b = tape.input(x);
        let k = tape.gaussian_kernel(a, b, 1.0);
        let kv = tape.value(k);
        assert!((kv.get(0, 0) - 1.0).abs() < 1e-5);
        assert!((kv.get(1, 1) - 1.0).abs() < 1e-5);
        assert!(kv.get(0, 1) < 1.0);
        // Symmetry for identical inputs.
        assert!((kv.get(0, 1) - kv.get(1, 0)).abs() < 1e-6);
    }

    #[test]
    fn fused_gaussian_kernel_matches_composite_forward_and_backward() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let x = store.register("x", 7, 4, Init::Gaussian { std: 1.0 }, &mut rng);
        let y = store.register("y", 5, 4, Init::Gaussian { std: 1.0 }, &mut rng);

        let run = |fused: bool| -> (Matrix, Gradients) {
            let mut tape = Tape::new(&store);
            let xv = tape.param(x);
            let yv = tape.param(y);
            let k = if fused {
                tape.gaussian_kernel(xv, yv, 0.8)
            } else {
                tape.gaussian_kernel_composite(xv, yv, 0.8)
            };
            let loss = tape.mean_all(k);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            (tape.value(k).clone(), grads)
        };
        let (k_fused, g_fused) = run(true);
        let (k_ref, g_ref) = run(false);
        assert!(k_fused.approx_eq(&k_ref, 1e-5), "fused K diverges");
        assert!(
            g_fused
                .get(x)
                .unwrap()
                .approx_eq(g_ref.get(x).unwrap(), 1e-5),
            "fused dK/dx diverges"
        );
        assert!(
            g_fused
                .get(y)
                .unwrap()
                .approx_eq(g_ref.get(y).unwrap(), 1e-5),
            "fused dK/dy diverges"
        );
    }

    #[test]
    fn fused_gaussian_kernel_handles_repeated_argument() {
        // k(x, x) feeds both partials into the same adjoint slot.
        let mut rng = SmallRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let x = store.register("x", 6, 3, Init::Gaussian { std: 1.0 }, &mut rng);

        let run = |fused: bool| -> Matrix {
            let mut tape = Tape::new(&store);
            let xv = tape.param(x);
            let k = if fused {
                tape.gaussian_kernel(xv, xv, 1.3)
            } else {
                tape.gaussian_kernel_composite(xv, xv, 1.3)
            };
            let loss = tape.mean_all(k);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            grads.get(x).unwrap().clone()
        };
        assert!(run(true).approx_eq(&run(false), 1e-5));
    }

    #[test]
    fn pooled_tape_reuses_buffers_across_steps() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.register("w", 16, 16, Init::Gaussian { std: 0.1 }, &mut rng);

        let mut pool = crate::MatrixPool::new();
        for _ in 0..3 {
            let mut tape = Tape::with_pool(&store, pool);
            let x = tape.input(Matrix::full(8, 16, 1.0));
            let wv = tape.param(w);
            let y = tape.matmul(x, wv);
            let loss = tape.mean_all(y);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            pool = tape.into_pool();
        }
        let (hits, misses) = pool.stats();
        assert!(hits > 0, "pool never reused a buffer ({hits}/{misses})");
        // Steady state: steps 2 and 3 allocate nothing new via the pool.
        assert!(
            hits >= misses,
            "pool mostly missing: {hits} hits, {misses} misses"
        );
    }

    #[test]
    fn matmul_naive_op_matches_blocked_op() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let a = store.register("a", 9, 7, Init::Gaussian { std: 1.0 }, &mut rng);
        let b = store.register("b", 7, 5, Init::Gaussian { std: 1.0 }, &mut rng);

        let run = |naive: bool| -> (Matrix, Gradients) {
            let mut tape = Tape::new(&store);
            let av = tape.param(a);
            let bv = tape.param(b);
            let c = if naive {
                tape.matmul_naive(av, bv)
            } else {
                tape.matmul(av, bv)
            };
            let loss = tape.mean_all(c);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            (tape.value(c).clone(), grads)
        };
        let (c_naive, g_naive) = run(true);
        let (c_blocked, g_blocked) = run(false);
        assert!(c_naive.approx_eq(&c_blocked, 1e-5));
        assert!(g_naive
            .get(a)
            .unwrap()
            .approx_eq(g_blocked.get(a).unwrap(), 1e-5));
        assert!(g_naive
            .get(b)
            .unwrap()
            .approx_eq(g_blocked.get(b).unwrap(), 1e-5));
    }

    #[test]
    fn backward_accumulates_across_multiple_roots() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(2.0), &mut rng);

        let mut tape = Tape::new(&store);
        let v = tape.param(p);
        let sq = tape.mul_elem(v, v); // p^2, d/dp = 2p = 4
        let l1 = tape.sum_all(sq);
        let l2 = tape.sum_all(v); // d/dp = 1

        let mut grads = Gradients::zeros_like(&store);
        tape.backward(l1, &mut grads);
        tape.backward(l2, &mut grads);
        assert!((grads.get(p).unwrap().item() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn backward_scaled_weights_the_loss_term() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let p = store.register("p", 1, 1, Init::Constant(3.0), &mut rng);
        let mut tape = Tape::new(&store);
        let v = tape.param(p);
        let l = tape.sum_all(v);
        let mut grads = Gradients::zeros_like(&store);
        tape.backward_scaled(l, 0.25, &mut grads);
        assert!((grads.get(p).unwrap().item() - 0.25).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "backward root must be a 1x1 scalar")]
    fn backward_rejects_non_scalar_root() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Matrix::zeros(2, 2));
        let mut grads = Gradients::zeros_like(&store);
        tape.backward(a, &mut grads);
    }
}
