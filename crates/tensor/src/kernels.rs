//! Cache-blocked, autovectorization-friendly matrix micro-kernels.
//!
//! Every kernel here works on raw row-major `f32` buffers and is written
//! so LLVM's autovectorizer produces SIMD code without `unsafe`:
//!
//! - **Fixed-size register tiles.** The hot loops accumulate into
//!   `[[f32; NR]; MR]` arrays that live entirely in registers, so the
//!   inner k-loop performs no loads or stores against the output.
//! - **Bounds checks hoisted.** Slices are converted to fixed-size array
//!   references (`try_into`) once per row, after which all indexing is
//!   statically in range and check-free.
//! - **Contiguous streaming.** All inner loops walk unit-stride memory.
//!
//! Tile sizes are chosen for the x86-64 baseline (SSE2, 16 XMM
//! registers): a 4x8 `f32` accumulator block is 8 vector registers,
//! leaving room for operand broadcasts. On wider ISAs (AVX2/AVX-512 via
//! `-C target-cpu=native`) the same code compiles to fewer, wider ops.
//!
//! The repo keeps the original straightforward loops as `*_naive`
//! reference kernels (see [`crate::Matrix`]); differential proptests
//! assert the blocked kernels match them across ragged shapes.

/// Rows per register tile (micro-kernel height).
pub const MR: usize = 4;
/// Columns per register tile (micro-kernel width): two AVX-512 lanes,
/// four AVX2 lanes — wide enough to keep the FMA ports busy while the
/// `MR x NR` accumulator block still fits the vector register file.
pub const NR: usize = 32;
/// Block edge for the tiled transpose.
pub const TR: usize = 8;

/// `c += a * b` for row-major buffers, `a: m x k`, `b: k x n`, `c: m x n`.
///
/// GEBP-style: each `NR`-column panel of `b` is packed once into a
/// contiguous `k x NR` scratch buffer, then every `MR`-row band of `a`
/// streams through it with an `MR x NR` register-tile micro-kernel. The
/// packing makes the micro-kernel's loads unit-stride and bounds-check
/// free (`chunks_exact`), which is what lets LLVM keep the whole
/// accumulator block in vector registers.
///
/// The caller guarantees buffer lengths match the dimensions; `c` is
/// accumulated into (callers wanting a plain product pass zeros).
pub fn matmul_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);

    let mut panel = vec![0.0f32; k * NR];
    let mut j = 0;
    while j + NR <= n {
        // Pack B[:, j..j+NR] as a contiguous k x NR panel.
        for (dst, brow) in panel.chunks_exact_mut(NR).zip(b.chunks_exact(n)) {
            dst.copy_from_slice(&brow[j..j + NR]);
        }
        let mut i = 0;
        while i + MR <= m {
            micro_kernel_4xnr(a, &panel, c, k, n, i, j);
            i += MR;
        }
        // Bottom rows of this panel, one at a time.
        for ii in i..m {
            micro_kernel_1xnr(&a[ii * k..(ii + 1) * k], &panel, &mut c[ii * n + j..]);
        }
        j += NR;
    }
    if j < n {
        // Column remainder, full height.
        matmul_edge(a, b, c, k, n, 0, m, j, n);
    }
}

/// `MR x NR` register-tile update: `c[i..i+MR][j..j+NR] += a_band * panel`.
///
/// The four accumulator rows are separate local arrays (not one 2-D
/// array) so LLVM's scalar-replacement keeps each in vector registers.
#[inline(always)]
fn micro_kernel_4xnr(
    a: &[f32],
    panel: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
) {
    let a0 = &a[i * k..(i + 1) * k];
    let a1 = &a[(i + 1) * k..(i + 2) * k];
    let a2 = &a[(i + 2) * k..(i + 3) * k];
    let a3 = &a[(i + 3) * k..(i + 4) * k];
    let mut acc0 = [0.0f32; NR];
    let mut acc1 = [0.0f32; NR];
    let mut acc2 = [0.0f32; NR];
    let mut acc3 = [0.0f32; NR];
    for (p, bp) in panel.chunks_exact(NR).enumerate() {
        let bp: &[f32; NR] = bp.try_into().expect("NR chunk");
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        for l in 0..NR {
            acc0[l] += v0 * bp[l];
            acc1[l] += v1 * bp[l];
            acc2[l] += v2 * bp[l];
            acc3[l] += v3 * bp[l];
        }
    }
    for (r, accr) in [acc0, acc1, acc2, acc3].iter().enumerate() {
        let off = (i + r) * n + j;
        let crow: &mut [f32; NR] = (&mut c[off..off + NR]).try_into().expect("NR chunk");
        for l in 0..NR {
            crow[l] += accr[l];
        }
    }
}

/// Single-row variant of the register-tile update for band remainders.
#[inline(always)]
fn micro_kernel_1xnr(a_row: &[f32], panel: &[f32], c_row: &mut [f32]) {
    let mut acc = [0.0f32; NR];
    for (&av, bp) in a_row.iter().zip(panel.chunks_exact(NR)) {
        let bp: &[f32; NR] = bp.try_into().expect("NR chunk");
        for l in 0..NR {
            acc[l] += av * bp[l];
        }
    }
    let c_row: &mut [f32; NR] = (&mut c_row[..NR]).try_into().expect("NR chunk");
    for l in 0..NR {
        c_row[l] += acc[l];
    }
}

/// Scalar i-k-j cleanup for tile edges: rows `[i0, i1)`, cols `[j0, j1)`.
#[allow(clippy::too_many_arguments)] // raw slices + the four tile bounds
fn matmul_edge(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n + j0..i * n + j1];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n + j0..p * n + j1];
            for (o, &bv) in c_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `c += a * b^T` for row-major buffers, `a: m x k`, `b: n x k`, `c: m x n`.
///
/// Dot-product shape: each output element is a length-`k` dot of two
/// rows. The kernel pairs one `a`-row with four `b`-rows and keeps four
/// 8-wide partial-sum vectors, so each `a` vector load feeds 4 FMAs.
pub fn matmul_transpose_b_blocked(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    const JB: usize = 4; // b-rows per block
    const KW: usize = 8; // k unroll width

    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + JB <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            // Four 8-wide accumulators: 4 x 8 f32 = 8 XMM registers.
            let mut acc = [[0.0f32; KW]; JB];
            let chunks = k / KW;
            for p in 0..chunks {
                let o = p * KW;
                let av: &[f32; KW] = a_row[o..o + KW].try_into().expect("KW chunk");
                for (accr, brow) in acc.iter_mut().zip([b0, b1, b2, b3]) {
                    let bv: &[f32; KW] = brow[o..o + KW].try_into().expect("KW chunk");
                    for l in 0..KW {
                        accr[l] += av[l] * bv[l];
                    }
                }
            }
            let mut dots = [0.0f32; JB];
            for (d, accr) in dots.iter_mut().zip(&acc) {
                *d = accr.iter().sum();
            }
            for p in chunks * KW..k {
                let av = a_row[p];
                dots[0] += av * b0[p];
                dots[1] += av * b1[p];
                dots[2] += av * b2[p];
                dots[3] += av * b3[p];
            }
            for (o, &d) in c_row[j..j + JB].iter_mut().zip(&dots) {
                *o += d;
            }
            j += JB;
        }
        // Remaining b-rows: plain dot products.
        for (jj, o) in c_row.iter_mut().enumerate().skip(j) {
            let b_row = &b[jj * k..(jj + 1) * k];
            let mut dot = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                dot += x * y;
            }
            *o += dot;
        }
    }
}

/// `c += a^T * b` for row-major buffers, `a: k x m`, `b: k x n`, `c: m x n`.
///
/// The transposed-A shape defeats register tiling directly (columns of
/// `a` are strided), so the kernel materializes `a^T` once with the
/// tiled transpose — O(k·m), negligible next to the O(m·k·n) product —
/// and runs the packed matmul.
pub fn matmul_transpose_a_blocked(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let mut at = vec![0.0f32; k * m];
    transpose_blocked(a, &mut at, k, m);
    matmul_blocked(&at, b, c, m, k, n);
}

/// Tiled out-of-place transpose: `dst[c][r] = src[r][c]`, `src: rows x cols`.
///
/// Processes `TR x TR` blocks so both source reads and destination
/// writes stay within a few cache lines per tile instead of striding
/// the full matrix width on every element.
pub fn transpose_blocked(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    let mut rb = 0;
    while rb < rows {
        let r_end = (rb + TR).min(rows);
        let mut cb = 0;
        while cb < cols {
            let c_end = (cb + TR).min(cols);
            for r in rb..r_end {
                for c in cb..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            cb += TR;
        }
        rb += TR;
    }
}

/// Squared L2 norm of each length-`k` row of `a` (`m` rows).
pub fn row_sq_norms(a: &[f32], m: usize, k: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    (0..m)
        .map(|i| {
            let row = &a[i * k..(i + 1) * k];
            row.iter().map(|x| x * x).sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn seq(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i * 7 + 3) % 13) as f32 - 6.0).collect()
    }

    #[test]
    fn blocked_matmul_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (4, 8, 8), (5, 3, 9), (17, 13, 11), (8, 1, 8)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![0.0f32; m * n];
            matmul_blocked(&a, &b, &mut c, m, k, n);
            let want = naive_matmul(&a, &b, m, k, n);
            assert_eq!(c, want, "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_transpose_variants_match_naive() {
        for &(m, k, n) in &[(1, 1, 1), (4, 8, 4), (7, 10, 5), (13, 17, 9)] {
            let a = seq(m * k);
            let bt = seq(n * k); // b^T laid out n x k
            let mut c = vec![0.0f32; m * n];
            matmul_transpose_b_blocked(&a, &bt, &mut c, m, k, n);
            // Reference: transpose bt into k x n then plain matmul.
            let mut b = vec![0.0f32; k * n];
            transpose_blocked(&bt, &mut b, n, k);
            assert_eq!(c, naive_matmul(&a, &b, m, k, n), "t_b shape {m}x{k}x{n}");

            let at = seq(k * m); // a^T laid out k x m
            let mut c2 = vec![0.0f32; m * n];
            let b2 = seq(k * n);
            matmul_transpose_a_blocked(&at, &b2, &mut c2, m, k, n);
            let mut a2 = vec![0.0f32; m * k];
            transpose_blocked(&at, &mut a2, k, m);
            assert_eq!(c2, naive_matmul(&a2, &b2, m, k, n), "t_a shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_blocked_is_exact() {
        let (r, c) = (13, 9);
        let src = seq(r * c);
        let mut dst = vec![0.0f32; r * c];
        transpose_blocked(&src, &mut dst, r, c);
        for i in 0..r {
            for j in 0..c {
                assert_eq!(dst[j * r + i], src[i * c + j]);
            }
        }
    }

    #[test]
    fn row_sq_norms_match_manual() {
        let a = vec![3.0, 4.0, 0.0, 1.0, 2.0, 2.0];
        assert_eq!(row_sq_norms(&a, 2, 3), vec![25.0, 9.0]);
    }
}
