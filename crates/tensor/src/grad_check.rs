//! Finite-difference gradient checking.
//!
//! Used by this crate's test suite (and available to downstream crates'
//! tests) to verify that every analytic gradient matches a central
//! finite-difference estimate. This is the ground truth that keeps hand
//! written backward rules honest.

use crate::{Gradients, Matrix, ParamStore, Tape, Var};

/// Result of comparing analytic vs numerical gradients for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Parameter name.
    pub name: String,
    /// Largest absolute difference between analytic and numerical entries.
    pub max_abs_diff: f32,
    /// Largest relative difference, with an absolute floor to avoid
    /// blowing up near-zero gradients.
    pub max_rel_diff: f32,
}

/// Checks analytic gradients of `f` (a scalar-loss builder) against central
/// finite differences for every parameter in `store`.
///
/// `f` must be deterministic in the parameter values (use a fixed RNG seed
/// inside, or no randomness). Returns one report per parameter.
pub fn check_gradients(
    store: &mut ParamStore,
    eps: f32,
    mut f: impl FnMut(&mut Tape<'_>) -> Var,
) -> Vec<GradCheckReport> {
    // Analytic pass.
    let mut grads = Gradients::zeros_like(store);
    {
        let mut tape = Tape::new(store);
        let loss = f(&mut tape);
        tape.backward(loss, &mut grads);
    }

    let loss_at = |store: &ParamStore, f: &mut dyn FnMut(&mut Tape<'_>) -> Var| -> f32 {
        let mut tape = Tape::new(store);
        let loss = f(&mut tape);
        tape.value(loss).item()
    };

    let ids: Vec<_> = store.ids().collect();
    let mut reports = Vec::with_capacity(ids.len());
    for id in ids {
        let name = store.name(id).to_string();
        let shape = store.get(id).shape();
        let analytic = grads
            .to_dense(id)
            .unwrap_or_else(|| Matrix::zeros(shape.0, shape.1));

        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for i in 0..shape.0 * shape.1 {
            let orig = store.get(id).as_slice()[i];
            store.get_mut(id).as_mut_slice()[i] = orig + eps;
            let up = loss_at(store, &mut f);
            store.get_mut(id).as_mut_slice()[i] = orig - eps;
            let down = loss_at(store, &mut f);
            store.get_mut(id).as_mut_slice()[i] = orig;

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-2);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        reports.push(GradCheckReport {
            name,
            max_abs_diff: max_abs,
            max_rel_diff: max_rel,
        });
    }
    reports
}

/// Asserts every parameter's analytic gradient is within `tol` relative
/// error of the finite-difference estimate.
pub fn assert_gradients_close(
    store: &mut ParamStore,
    eps: f32,
    tol: f32,
    f: impl FnMut(&mut Tape<'_>) -> Var,
) {
    for report in check_gradients(store, eps, f) {
        assert!(
            report.max_rel_diff <= tol,
            "gradient check failed for '{}': max_rel_diff {} > {tol} (max_abs {})",
            report.name,
            report.max_rel_diff,
            report.max_abs_diff
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Init, Mlp};
    use rand::{rngs::SmallRng, SeedableRng};

    /// f32 finite differences are noisy; 3% relative tolerance with the
    /// 1e-2 absolute floor is tight enough to catch any wrong backward rule
    /// (a sign error or missing factor produces ~100% relative error).
    const TOL: f32 = 3e-2;
    const EPS: f32 = 1e-2;

    fn seeded_store() -> (ParamStore, SmallRng) {
        (ParamStore::new(), SmallRng::seed_from_u64(99))
    }

    #[test]
    fn matmul_add_relu_chain() {
        let (mut store, mut rng) = seeded_store();
        let w1 = store.register("w1", 3, 4, Init::Gaussian { std: 0.5 }, &mut rng);
        let b1 = store.register("b1", 1, 4, Init::Gaussian { std: 0.5 }, &mut rng);
        let w2 = store.register("w2", 4, 1, Init::Gaussian { std: 0.5 }, &mut rng);
        let x = Init::Gaussian { std: 1.0 }.sample(5, 3, &mut rng);

        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let xv = tape.input(x.clone());
            let w1v = tape.param(w1);
            let b1v = tape.param(b1);
            let h = tape.linear(xv, w1v, b1v);
            let h = tape.tanh(h); // tanh: smoother than relu for FD checks
            let w2v = tape.param(w2);
            let y = tape.matmul(h, w2v);
            tape.mean_all(y)
        });
    }

    #[test]
    fn sigmoid_exp_ln_chain() {
        let (mut store, mut rng) = seeded_store();
        let p = store.register("p", 2, 3, Init::Gaussian { std: 0.4 }, &mut rng);
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let v = tape.param(p);
            let s = tape.sigmoid(v); // in (0,1): safe for ln
            let e = tape.exp(s);
            let l = tape.ln(e);
            let sq = tape.mul_elem(l, l);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn broadcast_concat_rowdot_ops() {
        let (mut store, mut rng) = seeded_store();
        let a = store.register("a", 3, 2, Init::Gaussian { std: 0.5 }, &mut rng);
        let b = store.register("b", 3, 2, Init::Gaussian { std: 0.5 }, &mut rng);
        let row = store.register("row", 1, 4, Init::Gaussian { std: 0.5 }, &mut rng);
        let col = store.register("col", 3, 1, Init::Gaussian { std: 0.5 }, &mut rng);
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let av = tape.param(a);
            let bv = tape.param(b);
            let cat = tape.concat_cols(av, bv); // 3 x 4
            let rv = tape.param(row);
            let cv = tape.param(col);
            let h = tape.add_row_broadcast(cat, rv);
            let h = tape.add_col_broadcast(h, cv);
            let d = tape.row_dot(h, h); // 3 x 1
            tape.mean_all(d)
        });
    }

    #[test]
    fn reductions_and_transpose() {
        let (mut store, mut rng) = seeded_store();
        let p = store.register("p", 4, 3, Init::Gaussian { std: 0.6 }, &mut rng);
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let v = tape.param(p);
            let t = tape.transpose(v); // 3 x 4
            let sc = tape.sum_cols(t); // 3 x 1
            let sr = tape.sum_rows(v); // 1 x 3
            let src = tape.transpose(sr); // 3 x 1
            let prod = tape.mul_elem(sc, src);
            let scaled = tape.scale(prod, 0.5);
            let shifted = tape.add_scalar(scaled, 1.0);
            tape.sum_all(shifted)
        });
    }

    #[test]
    fn gather_param_embedding_gradient() {
        let (mut store, mut rng) = seeded_store();
        let table = store.register("emb", 6, 3, Init::Gaussian { std: 0.5 }, &mut rng);
        let ids = vec![0usize, 4, 4, 2];
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let e = tape.gather_param(table, &ids);
            let sq = tape.mul_elem(e, e);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn bce_with_logits_gradient() {
        let (mut store, mut rng) = seeded_store();
        let p = store.register("logits_src", 5, 1, Init::Gaussian { std: 1.0 }, &mut rng);
        let targets = Matrix::column(&[1.0, 0.0, 1.0, 1.0, 0.0]);
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let z = tape.param(p);
            tape.bce_with_logits(z, targets.clone())
        });
    }

    #[test]
    fn gaussian_kernel_mmd_gradient() {
        // The exact expression ST-TransRec differentiates: mean of a
        // Gaussian kernel matrix between two embedding sets.
        let (mut store, mut rng) = seeded_store();
        let xs = store.register("xs", 4, 3, Init::Gaussian { std: 0.8 }, &mut rng);
        let xt = store.register("xt", 3, 3, Init::Gaussian { std: 0.8 }, &mut rng);
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let a = tape.param(xs);
            let b = tape.param(xt);
            let kst = tape.gaussian_kernel(a, b, 1.0);
            let kss = tape.gaussian_kernel(a, a, 1.0);
            let ktt = tape.gaussian_kernel(b, b, 1.0);
            let mst = tape.mean_all(kst);
            let mss = tape.mean_all(kss);
            let mtt = tape.mean_all(ktt);
            let sum = tape.add(mss, mtt);
            let twice = tape.scale(mst, -2.0);
            tape.add(sum, twice)
        });
    }

    #[test]
    fn full_mlp_gradient() {
        let (mut store, mut rng) = seeded_store();
        let mlp = Mlp::new(&mut store, "m", &[3, 5, 1], Activation::Tanh, 0.0, &mut rng);
        let x = Init::Gaussian { std: 1.0 }.sample(4, 3, &mut rng);
        let t = Matrix::column(&[1.0, 0.0, 0.0, 1.0]);
        assert_gradients_close(&mut store, EPS, TOL, move |tape| {
            let xv = tape.input(x.clone());
            let z = mlp.forward_inference(tape, xv);
            tape.bce_with_logits(z, t.clone())
        });
    }
}
