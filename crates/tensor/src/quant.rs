//! Scalar quantization primitives for embedding-table storage.
//!
//! Two lossy encodings back the v2 snapshot container
//! ([`crate::checkpoint`]) and the quantized [`crate::TableStorage`]
//! variants:
//!
//! - **f16** (IEEE 754 binary16): 2 bytes/element, round-to-nearest-even
//!   conversion. Relative error is bounded by `2^-11` for normal values,
//!   which is far below what top-k ranking can resolve.
//! - **int8 with per-row scale**: 1 byte/element plus one `f32` scale per
//!   row. Each row is encoded as `q = round(x / scale)` with
//!   `scale = max_abs(row) / 127`, so the absolute error per element is
//!   bounded by `scale / 2 = max_abs / 254`. Zero rows (and constant-zero
//!   rows) encode with scale 0 and decode exactly.
//!
//! Both directions are deterministic pure functions of their inputs —
//! quantize-then-dequantize is reproducible bit for bit across runs and
//! machines, which the snapshot differential gates rely on.

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to
/// nearest-even. Overflow saturates to infinity; NaN maps to a quiet
/// NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep NaN-ness (set a mantissa bit), else infinity.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> +-inf
    }
    if unbiased >= -14 {
        // Normal f16: 10 mantissa bits, round to nearest-even on the 13
        // dropped bits.
        let half_exp = ((unbiased + 15) as u32) << 10;
        let half_mant = mant >> 13;
        let rounded = half_exp + half_mant + round_bit(mant, 13);
        return sign | rounded as u16;
    }
    if unbiased >= -24 {
        // Subnormal f16: shift the implicit leading 1 into the mantissa.
        let shift = (-14 - unbiased) as u32; // 1..=10
        let full = mant | 0x0080_0000;
        let half_mant = full >> (13 + shift);
        let rounded = half_mant + round_bit(full, 13 + shift);
        return sign | rounded as u16;
    }
    sign // underflow to signed zero
}

/// The round-to-nearest-even increment for dropping the low `shift` bits
/// of `mant`.
fn round_bit(mant: u32, shift: u32) -> u32 {
    let halfway = 1u32 << (shift - 1);
    let rem = mant & ((1u32 << shift) - 1);
    let kept_lsb = (mant >> shift) & 1;
    u32::from(rem > halfway || (rem == halfway && kept_lsb == 1))
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact — every f16
/// value is representable in f32).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = u32::from(bits & 0x03ff);
    let out = match (exp, mant) {
        (0, 0) => sign, // signed zero
        (0, m) => {
            // Subnormal (value = m * 2^-24): normalize into f32. With p
            // the highest set bit of the 10-bit m, shift = 10 - p moves
            // the leading 1 out of the fraction field and the biased f32
            // exponent is 127 + (p - 24) = 113 - shift.
            let shift = m.leading_zeros() - 21; // 1..=10
            let e = 113 - shift;
            let frac = (m << shift) & 0x03ff;
            sign | (e << 23) | (frac << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,             // +-inf
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13), // NaN
        (e, m) => sign | ((u32::from(e) + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(out)
}

/// Encodes `row` into int8 with a shared per-row scale, writing the
/// quantized bytes into `out` and returning the scale.
///
/// `scale = max_abs(row) / 127`; each element becomes
/// `clamp(round(x / scale), -127, 127)`. An all-zero row returns scale
/// `0.0` and zero bytes (decoding is exact). Non-finite inputs are the
/// caller's bug — checkpoints of non-finite weights are rejected
/// upstream.
///
/// # Panics
/// Panics if `out.len() != row.len()`.
pub fn quantize_row_i8(row: &[f32], out: &mut [i8]) -> f32 {
    assert_eq!(row.len(), out.len(), "quantize_row_i8 length mismatch");
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (q, &x) in out.iter_mut().zip(row) {
        *q = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Decodes an int8 row back to `f32`: `x = q * scale`.
///
/// # Panics
/// Panics if `out.len() != q.len()`.
pub fn dequantize_row_i8(q: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(q.len(), out.len(), "dequantize_row_i8 length mismatch");
    for (o, &v) in out.iter_mut().zip(q) {
        *o = f32::from(v) * scale;
    }
}

/// The worst-case absolute reconstruction error of
/// [`quantize_row_i8`]-then-[`dequantize_row_i8`] for a row with the
/// given max-abs value: half a quantization step.
pub fn i8_row_error_bound(max_abs: f32) -> f32 {
    // Elements are rounded to the nearest multiple of `scale`, so the
    // reconstruction is off by at most scale/2 (plus one ulp of the
    // scale multiply, absorbed by the callers' tolerance).
    max_abs / 127.0 * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_is_exact_for_representable_values() {
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1.5, -3.75,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x} round-tripped to {back}");
        }
    }

    #[test]
    fn f16_relative_error_is_bounded_for_normals() {
        let mut x = 6.1e-5f32; // just above the f16 normal threshold
        while x < 6.0e4 {
            for v in [x, -x] {
                let back = f16_bits_to_f32(f32_to_f16_bits(v));
                let rel = ((back - v) / v).abs();
                assert!(rel <= 1.0 / 2048.0, "{v} -> {back}: rel err {rel}");
            }
            x *= 1.7;
        }
    }

    #[test]
    fn f16_specials() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow saturates to infinity.
        assert_eq!(f32_to_f16_bits(1e10), 0x7c00);
        // Deep underflow flushes to signed zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-20)), 0.0);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(-1e-20)).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn f16_subnormals_roundtrip() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tiny)), tiny);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(sub)), sub);
    }

    #[test]
    fn i8_roundtrip_error_bound() {
        let row = [0.9f32, -0.3, 0.0001, 0.5, -0.77, 0.123];
        let mut q = [0i8; 6];
        let scale = quantize_row_i8(&row, &mut q);
        let mut back = [0f32; 6];
        dequantize_row_i8(&q, scale, &mut back);
        let bound = i8_row_error_bound(0.9) * 1.0001;
        for (&x, &y) in row.iter().zip(&back) {
            assert!((x - y).abs() <= bound, "{x} -> {y}");
        }
    }

    #[test]
    fn i8_zero_row_is_exact() {
        let row = [0.0f32; 8];
        let mut q = [1i8; 8];
        let scale = quantize_row_i8(&row, &mut q);
        assert_eq!(scale, 0.0);
        assert_eq!(q, [0i8; 8]);
        let mut back = [9f32; 8];
        dequantize_row_i8(&q, scale, &mut back);
        assert_eq!(back, [0.0f32; 8]);
    }

    #[test]
    fn i8_constant_row_is_exact() {
        // A constant row hits the +-127 codes exactly: q = +-127,
        // dequant = 127 * (c/127) which reproduces c up to one ulp.
        let row = [0.42f32; 5];
        let mut q = [0i8; 5];
        let scale = quantize_row_i8(&row, &mut q);
        assert_eq!(q, [127i8; 5]);
        let mut back = [0f32; 5];
        dequantize_row_i8(&q, scale, &mut back);
        for &y in &back {
            assert!((y - 0.42).abs() <= f32::EPSILON * 0.42 * 2.0);
        }
    }
}
