use st_tensor::Matrix;
use std::time::Instant;
fn main() {
    let n = 256;
    let a = Matrix::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i * 7 + 3) % 13) as f32 * 0.1 - 0.6)
            .collect(),
    );
    let b = Matrix::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i * 5 + 1) % 11) as f32 * 0.1 - 0.5)
            .collect(),
    );
    let time = |f: &dyn Fn() -> Matrix| {
        let mut best = f64::MAX;
        for _ in 0..7 {
            let t = Instant::now();
            let m = f();
            best = best.min(t.elapsed().as_secs_f64());
            std::hint::black_box(m);
        }
        best
    };
    let t_naive = time(&|| a.matmul_naive(&b));
    let t_blocked = time(&|| a.matmul(&b));
    let tb_naive = time(&|| a.matmul_transpose_b_naive(&b));
    let tb_blocked = time(&|| a.matmul_transpose_b(&b));
    let ta_naive = time(&|| a.matmul_transpose_a_naive(&b));
    let ta_blocked = time(&|| a.matmul_transpose_a(&b));
    let flops = 2.0 * (n as f64).powi(3);
    println!(
        "matmul: naive {:.3}ms blocked {:.3}ms speedup {:.2}x ({:.2} GFLOP/s)",
        t_naive * 1e3,
        t_blocked * 1e3,
        t_naive / t_blocked,
        flops / t_blocked / 1e9
    );
    println!(
        "t_b:    naive {:.3}ms blocked {:.3}ms speedup {:.2}x",
        tb_naive * 1e3,
        tb_blocked * 1e3,
        tb_naive / tb_blocked
    );
    println!(
        "t_a:    naive {:.3}ms blocked {:.3}ms speedup {:.2}x",
        ta_naive * 1e3,
        ta_blocked * 1e3,
        ta_naive / ta_blocked
    );
}
