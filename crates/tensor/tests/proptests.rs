//! Property-based tests for the matrix kernels and autodiff identities.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use st_tensor::{Gradients, Init, Matrix, ParamStore, Tape};

/// Strategy: a matrix of bounded shape with small finite entries.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Two matrices with matching inner dimension for multiplication.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-3.0f32..3.0, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d)),
            proptest::collection::vec(-3.0f32..3.0, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d)),
        )
    })
}

/// Strategy: a matrix whose entries are multiples of 0.25 in [-4, 4].
///
/// On this grid every product is a multiple of 1/16 and every partial sum
/// stays far below 2^20, so f32 arithmetic is exact regardless of the
/// summation order — the blocked kernels and the naive references must
/// then agree to the last bit, and the 1e-5 differential bound actually
/// tests kernel logic (tiling, packing, edge handling) rather than
/// floating-point reassociation.
fn grid_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-16i32..17, rows * cols).prop_map(move |data| {
        Matrix::from_vec(
            rows,
            cols,
            data.into_iter().map(|q| q as f32 * 0.25).collect(),
        )
    })
}

/// Dimensions straddling the register-tile sizes (MR = 4 rows, NR = 32
/// columns, TR = 8 transpose block): below / at / above each boundary,
/// plus the degenerate size 1 that makes 1x1, 1xn and nx1 operands.
const TILE_DIMS: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 34, 63, 64, 65];

fn tile_dim() -> impl Strategy<Value = usize> {
    (0usize..TILE_DIMS.len()).prop_map(|i| TILE_DIMS[i])
}

fn tile_boundary_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (tile_dim(), tile_dim(), tile_dim())
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// A ragged matmul case: operands with tile-straddling shapes and
/// exact-grid entries.
fn ragged_matmul_case() -> impl Strategy<Value = (Matrix, Matrix)> {
    tile_boundary_dims().prop_flat_map(|(m, k, n)| (grid_matrix(m, k), grid_matrix(k, n)))
}

proptest! {
    /// The tentpole differential test: the blocked matmul must match the
    /// naive reference within 1e-5 across odd/ragged shapes, including
    /// 1x1, 1xn, nx1 and sizes that are not multiples of the tile.
    #[test]
    fn blocked_matmul_matches_naive_across_tile_boundaries((a, b) in ragged_matmul_case()) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        prop_assert!(
            max_abs_diff(&a.matmul(&b), &a.matmul_naive(&b)) <= 1e-5,
            "matmul {m}x{k}x{n}"
        );
    }

    /// Same differential bound for the fused-transpose kernels, driven
    /// without materializing the transpose on the blocked side.
    #[test]
    fn blocked_transpose_products_match_naive_across_tile_boundaries(
        (a, b) in ragged_matmul_case()
    ) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let bt = b.transpose_naive(); // n x k
        prop_assert!(
            max_abs_diff(&a.matmul_transpose_b(&bt), &a.matmul_transpose_b_naive(&bt)) <= 1e-5,
            "matmul_transpose_b {m}x{k}x{n}"
        );
        let at = a.transpose_naive(); // k x m
        prop_assert!(
            max_abs_diff(&at.matmul_transpose_a(&b), &at.matmul_transpose_a_naive(&b)) <= 1e-5,
            "matmul_transpose_a {m}x{k}x{n}"
        );
    }

    /// The tiled transpose is a permutation — it must match the naive
    /// double loop exactly, for any shape around the TR = 8 block edge.
    #[test]
    fn blocked_transpose_matches_naive_across_tile_boundaries(
        (r, c, _) in tile_boundary_dims()
    ) {
        let src = Matrix::from_vec(r, c, (0..r * c).map(|i| i as f32).collect());
        prop_assert_eq!(src.transpose(), src.transpose_naive());
    }

    /// The norm-expansion pairwise-distance kernel (MMD's forward) must
    /// match the direct per-pair subtraction within the differential bound.
    #[test]
    fn pairwise_sq_dist_matches_direct_across_tile_boundaries(
        (a, b) in ragged_matmul_case()
    ) {
        let y = b.transpose_naive(); // n x k: same width as a
        let d = a.pairwise_sq_dist(&y);
        for i in 0..a.rows() {
            for j in 0..y.rows() {
                let direct: f32 = a
                    .row(i)
                    .iter()
                    .zip(y.row(j))
                    .map(|(&p, &q)| (p - q) * (p - q))
                    .sum();
                prop_assert!(
                    (d.get(i, j) - direct).abs() <= 1e-4,
                    "pairwise_sq_dist[{i}][{j}]: {} vs {direct}",
                    d.get(i, j)
                );
            }
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix(1..8, 1..8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (A B)^T == B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-4));
    }

    #[test]
    fn matmul_fused_variants_agree((a, b) in matmul_pair()) {
        let plain = a.matmul(&b);
        let via_bt = a.matmul_transpose_b(&b.transpose());
        let via_at = a.transpose().matmul_transpose_a(&b);
        prop_assert!(plain.approx_eq(&via_bt, 1e-4));
        prop_assert!(plain.approx_eq(&via_at, 1e-4));
    }

    #[test]
    fn add_commutes_and_sub_inverts(a in matrix(1..6, 1..6)) {
        let b = a.scale(0.5);
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
        prop_assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-5));
    }

    #[test]
    fn concat_cols_preserves_content(a in matrix(1..5, 1..5), scale in -2.0f32..2.0) {
        let b = a.scale(scale);
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.cols(), a.cols() * 2);
        for r in 0..a.rows() {
            prop_assert_eq!(&cat.row(r)[..a.cols()], a.row(r));
            prop_assert_eq!(&cat.row(r)[a.cols()..], b.row(r));
        }
    }

    #[test]
    fn reductions_are_consistent(a in matrix(1..6, 1..6)) {
        let total = a.sum();
        prop_assert!((a.sum_cols().sum() - total).abs() < 1e-3);
        prop_assert!((a.sum_rows().sum() - total).abs() < 1e-3);
        prop_assert!((a.mean() * a.len() as f32 - total).abs() < 1e-3);
    }

    #[test]
    fn row_dot_matches_elementwise_sum(a in matrix(1..6, 1..6)) {
        let b = a.map(|x| x * 0.7 - 0.1);
        let rd = a.row_dot(&b);
        let manual = a.mul_elem(&b).sum_cols();
        prop_assert!(rd.approx_eq(&manual, 1e-4));
    }

    /// Differentiating a sum of losses equals summing per-loss gradients.
    #[test]
    fn backward_is_linear_in_the_loss(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let p = store.register("p", 3, 3, Init::Gaussian { std: 1.0 }, &mut rng);

        let build = |tape: &mut Tape<'_>| {
            let v = tape.param(p);
            let sq = tape.mul_elem(v, v);
            let l1 = tape.sum_all(sq);
            let s = tape.sigmoid(v);
            let l2 = tape.mean_all(s);
            (l1, l2)
        };

        // Combined: backward from l1 + l2 on one tape.
        let mut combined = Gradients::zeros_like(&store);
        {
            let mut tape = Tape::new(&store);
            let (l1, l2) = build(&mut tape);
            let sum = tape.add(l1, l2);
            tape.backward(sum, &mut combined);
        }
        // Separate: two backward calls accumulating.
        let mut separate = Gradients::zeros_like(&store);
        {
            let mut tape = Tape::new(&store);
            let (l1, l2) = build(&mut tape);
            tape.backward(l1, &mut separate);
            tape.backward(l2, &mut separate);
        }
        let g1 = combined.get(p).unwrap();
        let g2 = separate.get(p).unwrap();
        prop_assert!(g1.approx_eq(g2, 1e-4));
    }

    /// backward_scaled(c) == c * backward(1).
    #[test]
    fn backward_scaling_is_multiplicative(c in 0.1f32..4.0) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = store.register("p", 2, 2, Init::Gaussian { std: 1.0 }, &mut rng);
        let run = |seed_weight: f32| {
            let mut grads = Gradients::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let v = tape.param(p);
            let t = tape.tanh(v);
            let l = tape.sum_all(t);
            tape.backward_scaled(l, seed_weight, &mut grads);
            grads.get(p).unwrap().clone()
        };
        let unit = run(1.0);
        let scaled = run(c);
        prop_assert!(scaled.approx_eq(&unit.scale(c), 1e-4));
    }

    #[test]
    fn gather_rows_never_invents_values(rows in 2usize..6, picks in proptest::collection::vec(0usize..6, 1..8)) {
        let m = Matrix::from_vec(6, rows, (0..6 * rows).map(|i| i as f32).collect());
        let g = m.gather_rows(&picks);
        for (out_row, &src) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), m.row(src));
        }
    }
}

// ---------------------------------------------------------------------------
// Row-sparse gradient path vs the dense oracle (PR 3).
//
// Every test drives the SAME touch sequence into a `Gradients::zeros_like`
// buffer (row-sparse slots) and a `Gradients::dense_like` buffer (the
// pre-sparse dense representation) and demands agreement: bit-exact for
// the buffer ops and SGD, bounded for lazy-vs-dense Adam (whose documented
// drift is the dense path's momentum-tail updates on skipped rows).
// ---------------------------------------------------------------------------

/// A script of row touches over a `ROWS x COLS` table: `(row, delta)`
/// pairs applied in order, with repeats and arbitrary order.
fn touch_script(
    rows: usize,
    cols: usize,
    max_touches: usize,
) -> impl Strategy<Value = Vec<(usize, Vec<f32>)>> {
    proptest::collection::vec(
        (0..rows, proptest::collection::vec(-3.0f32..3.0, cols)),
        1..max_touches,
    )
}

const T_ROWS: usize = 17;
const T_COLS: usize = 3;

fn table_store() -> (ParamStore, st_tensor::ParamId, st_tensor::ParamId) {
    let mut rng = SmallRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let table = store.register(
        "table",
        T_ROWS,
        T_COLS,
        Init::Gaussian { std: 0.5 },
        &mut rng,
    );
    let w = store.register("w", 2, 4, Init::Gaussian { std: 0.5 }, &mut rng);
    (store, table, w)
}

/// Applies one script to a pair of buffers (sparse, dense-oracle).
fn fill_pair(
    store: &ParamStore,
    table: st_tensor::ParamId,
    script: &[(usize, Vec<f32>)],
) -> (Gradients, Gradients) {
    let mut sparse = Gradients::zeros_like(store);
    let mut dense = Gradients::dense_like(store);
    for (row, delta) in script {
        sparse.accumulate_row(table, T_ROWS, T_COLS, *row, delta);
        dense.accumulate_row(table, T_ROWS, T_COLS, *row, delta);
    }
    (sparse, dense)
}

fn bit_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    /// merge / scale / global_norm / clip_global_norm agree bit for bit
    /// between the sparse path and the dense oracle over arbitrary
    /// row-touch patterns.
    #[test]
    fn sparse_buffer_ops_match_dense_oracle_bitwise(
        s1 in touch_script(T_ROWS, T_COLS, 14),
        s2 in touch_script(T_ROWS, T_COLS, 14),
        clip in 0.5f32..4.0,
    ) {
        let (store, table, w) = table_store();
        let (mut sp1, mut de1) = fill_pair(&store, table, &s1);
        let (sp2, de2) = fill_pair(&store, table, &s2);
        // A dense-slot param rides along to cover mixed buffers.
        let full = Matrix::from_vec(2, 4, (0..8).map(|i| i as f32 * 0.5 - 2.0).collect());
        sp1.accumulate(w, &full);
        de1.accumulate(w, &full);

        sp1.merge(&sp2);
        de1.merge(&de2);
        prop_assert_eq!(sp1.global_norm().to_bits(), de1.global_norm().to_bits());

        sp1.scale(0.5);
        de1.scale(0.5);
        prop_assert_eq!(sp1.global_norm().to_bits(), de1.global_norm().to_bits());

        sp1.clip_global_norm(clip);
        de1.clip_global_norm(clip);
        prop_assert!(bit_equal(
            &sp1.to_dense(table).unwrap(),
            &de1.to_dense(table).unwrap()
        ));
        prop_assert!(bit_equal(
            &sp1.to_dense(w).unwrap(),
            &de1.to_dense(w).unwrap()
        ));
    }

    /// The by-value, slot-moving `merge_from` produces exactly what the
    /// cloning `merge` produces.
    #[test]
    fn merge_from_matches_merge(
        s1 in touch_script(T_ROWS, T_COLS, 14),
        s2 in touch_script(T_ROWS, T_COLS, 14),
    ) {
        let (store, table, _) = table_store();
        let (mut a_ref, _) = fill_pair(&store, table, &s1);
        let (b_ref, _) = fill_pair(&store, table, &s2);
        a_ref.merge(&b_ref);

        let (mut a_mv, _) = fill_pair(&store, table, &s1);
        let (b_mv, _) = fill_pair(&store, table, &s2);
        a_mv.merge_from(b_mv);

        prop_assert!(bit_equal(
            &a_mv.to_dense(table).unwrap(),
            &a_ref.to_dense(table).unwrap()
        ));
    }

    /// SGD (no weight decay) applied through a sparse buffer is
    /// bit-identical to SGD applied through the dense oracle, over
    /// arbitrary multi-step touch patterns.
    #[test]
    fn sgd_apply_is_bit_identical_across_representations(
        steps in proptest::collection::vec(touch_script(T_ROWS, T_COLS, 10), 1..5),
    ) {
        use st_tensor::{Optimizer, Sgd};
        let (store, table, _) = table_store();
        let (mut st_sparse, mut st_dense) = (store.clone(), store);
        let mut o1 = Sgd::new(0.07);
        let mut o2 = Sgd::new(0.07);
        for script in &steps {
            let (sp, de) = fill_pair(&st_sparse, table, script);
            o1.step(&mut st_sparse, &sp);
            o2.step(&mut st_dense, &de);
        }
        prop_assert!(bit_equal(st_sparse.get(table), st_dense.get(table)));
    }

    /// The two forward executors are bit-identical, not merely close:
    /// tape inference (`forward_inference` + `Tape::sigmoid`) and the
    /// tape-free `InferCtx` path run the same shared ops in the same
    /// order, across tower depths, widths, activations and batch sizes
    /// (dropout configured but off at inference).
    #[test]
    fn tape_free_forward_is_bit_identical_to_tape_inference(
        widths in proptest::collection::vec(1usize..9, 2..6),
        act_idx in 0usize..4,
        rows in 1usize..7,
        seed in 0u64..1000,
    ) {
        use st_tensor::{Activation, InferCtx, Mlp};
        let act = [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ][act_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &widths, act, 0.4, &mut rng);
        let x = Init::Gaussian { std: 1.0 }.sample(rows, widths[0], &mut rng);

        let mut tape = Tape::new(&store);
        let xv = tape.input(x.clone());
        let logits = mlp.forward_inference(&mut tape, xv);
        let probs = tape.sigmoid(logits);

        let mut ctx = InferCtx::new();
        ctx.set_input(&x);
        mlp.forward_infer(&store, &mut ctx);
        ctx.sigmoid();

        prop_assert!(
            bit_equal(ctx.value(), tape.value(probs)),
            "executors diverged: widths {widths:?}, {act:?}, {rows} rows"
        );
    }

    /// The fused embedding gather + pair concat equals the tape's
    /// two-step gather-then-concat to the last bit (both are pure row
    /// copies).
    #[test]
    fn fused_gather_concat_matches_gather_then_concat_bitwise(
        da in 1usize..6,
        db in 1usize..6,
        ai in proptest::collection::vec(0usize..6, 1..9),
        seed in 0u64..1000,
    ) {
        use st_tensor::InferCtx;
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Init::Gaussian { std: 1.0 }.sample(6, da, &mut rng);
        let b = Init::Gaussian { std: 1.0 }.sample(6, db, &mut rng);
        let bi: Vec<usize> = ai.iter().map(|&i| 5 - i).collect();

        let expected = a.gather_rows(&ai).concat_cols(&b.gather_rows(&bi));
        let mut ctx = InferCtx::new();
        ctx.gather_concat2(&a, &ai, &b, &bi);
        prop_assert!(bit_equal(ctx.value(), &expected));
    }

    /// Lazy Adam stays within a small tolerance of the dense oracle over
    /// arbitrary touch patterns (exact on rows touched every step; skipped
    /// rows miss only the oracle's momentum-tail updates, which are
    /// O(lr · beta1^gap) each).
    #[test]
    fn lazy_adam_tracks_dense_oracle_within_tolerance(
        steps in proptest::collection::vec(touch_script(T_ROWS, T_COLS, 10), 2..6),
    ) {
        use st_tensor::{Adam, Optimizer};
        let (store, table, _) = table_store();
        let (mut st_lazy, mut st_dense) = (store.clone(), store);
        let mut lazy = Adam::new(1e-3);
        let mut dense = Adam::new(1e-3).with_lazy(false);
        for script in &steps {
            let (sp, de) = fill_pair(&st_lazy, table, script);
            lazy.step(&mut st_lazy, &sp);
            dense.step(&mut st_dense, &de);
        }
        let a = st_lazy.get(table);
        let b = st_dense.get(table);
        // <= 5 steps at lr 1e-3: each skipped momentum-tail update moves a
        // weight by < lr, so 1e-2 is a generous but meaningful bound.
        prop_assert!(a.approx_eq(b, 1e-2), "lazy Adam drifted past tolerance");
    }
}
