//! Property-based tests for the matrix kernels and autodiff identities.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use st_tensor::{Gradients, Init, Matrix, ParamStore, Tape};

/// Strategy: a matrix of bounded shape with small finite entries.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Two matrices with matching inner dimension for multiplication.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-3.0f32..3.0, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d)),
            proptest::collection::vec(-3.0f32..3.0, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d)),
        )
    })
}

/// Strategy: a matrix whose entries are multiples of 0.25 in [-4, 4].
///
/// On this grid every product is a multiple of 1/16 and every partial sum
/// stays far below 2^20, so f32 arithmetic is exact regardless of the
/// summation order — the blocked kernels and the naive references must
/// then agree to the last bit, and the 1e-5 differential bound actually
/// tests kernel logic (tiling, packing, edge handling) rather than
/// floating-point reassociation.
fn grid_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-16i32..17, rows * cols).prop_map(move |data| {
        Matrix::from_vec(
            rows,
            cols,
            data.into_iter().map(|q| q as f32 * 0.25).collect(),
        )
    })
}

/// Dimensions straddling the register-tile sizes (MR = 4 rows, NR = 32
/// columns, TR = 8 transpose block): below / at / above each boundary,
/// plus the degenerate size 1 that makes 1x1, 1xn and nx1 operands.
const TILE_DIMS: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 34, 63, 64, 65];

fn tile_dim() -> impl Strategy<Value = usize> {
    (0usize..TILE_DIMS.len()).prop_map(|i| TILE_DIMS[i])
}

fn tile_boundary_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (tile_dim(), tile_dim(), tile_dim())
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// A ragged matmul case: operands with tile-straddling shapes and
/// exact-grid entries.
fn ragged_matmul_case() -> impl Strategy<Value = (Matrix, Matrix)> {
    tile_boundary_dims().prop_flat_map(|(m, k, n)| (grid_matrix(m, k), grid_matrix(k, n)))
}

proptest! {
    /// The tentpole differential test: the blocked matmul must match the
    /// naive reference within 1e-5 across odd/ragged shapes, including
    /// 1x1, 1xn, nx1 and sizes that are not multiples of the tile.
    #[test]
    fn blocked_matmul_matches_naive_across_tile_boundaries((a, b) in ragged_matmul_case()) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        prop_assert!(
            max_abs_diff(&a.matmul(&b), &a.matmul_naive(&b)) <= 1e-5,
            "matmul {m}x{k}x{n}"
        );
    }

    /// Same differential bound for the fused-transpose kernels, driven
    /// without materializing the transpose on the blocked side.
    #[test]
    fn blocked_transpose_products_match_naive_across_tile_boundaries(
        (a, b) in ragged_matmul_case()
    ) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let bt = b.transpose_naive(); // n x k
        prop_assert!(
            max_abs_diff(&a.matmul_transpose_b(&bt), &a.matmul_transpose_b_naive(&bt)) <= 1e-5,
            "matmul_transpose_b {m}x{k}x{n}"
        );
        let at = a.transpose_naive(); // k x m
        prop_assert!(
            max_abs_diff(&at.matmul_transpose_a(&b), &at.matmul_transpose_a_naive(&b)) <= 1e-5,
            "matmul_transpose_a {m}x{k}x{n}"
        );
    }

    /// The tiled transpose is a permutation — it must match the naive
    /// double loop exactly, for any shape around the TR = 8 block edge.
    #[test]
    fn blocked_transpose_matches_naive_across_tile_boundaries(
        (r, c, _) in tile_boundary_dims()
    ) {
        let src = Matrix::from_vec(r, c, (0..r * c).map(|i| i as f32).collect());
        prop_assert_eq!(src.transpose(), src.transpose_naive());
    }

    /// The norm-expansion pairwise-distance kernel (MMD's forward) must
    /// match the direct per-pair subtraction within the differential bound.
    #[test]
    fn pairwise_sq_dist_matches_direct_across_tile_boundaries(
        (a, b) in ragged_matmul_case()
    ) {
        let y = b.transpose_naive(); // n x k: same width as a
        let d = a.pairwise_sq_dist(&y);
        for i in 0..a.rows() {
            for j in 0..y.rows() {
                let direct: f32 = a
                    .row(i)
                    .iter()
                    .zip(y.row(j))
                    .map(|(&p, &q)| (p - q) * (p - q))
                    .sum();
                prop_assert!(
                    (d.get(i, j) - direct).abs() <= 1e-4,
                    "pairwise_sq_dist[{i}][{j}]: {} vs {direct}",
                    d.get(i, j)
                );
            }
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix(1..8, 1..8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (A B)^T == B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-4));
    }

    #[test]
    fn matmul_fused_variants_agree((a, b) in matmul_pair()) {
        let plain = a.matmul(&b);
        let via_bt = a.matmul_transpose_b(&b.transpose());
        let via_at = a.transpose().matmul_transpose_a(&b);
        prop_assert!(plain.approx_eq(&via_bt, 1e-4));
        prop_assert!(plain.approx_eq(&via_at, 1e-4));
    }

    #[test]
    fn add_commutes_and_sub_inverts(a in matrix(1..6, 1..6)) {
        let b = a.scale(0.5);
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
        prop_assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-5));
    }

    #[test]
    fn concat_cols_preserves_content(a in matrix(1..5, 1..5), scale in -2.0f32..2.0) {
        let b = a.scale(scale);
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.cols(), a.cols() * 2);
        for r in 0..a.rows() {
            prop_assert_eq!(&cat.row(r)[..a.cols()], a.row(r));
            prop_assert_eq!(&cat.row(r)[a.cols()..], b.row(r));
        }
    }

    #[test]
    fn reductions_are_consistent(a in matrix(1..6, 1..6)) {
        let total = a.sum();
        prop_assert!((a.sum_cols().sum() - total).abs() < 1e-3);
        prop_assert!((a.sum_rows().sum() - total).abs() < 1e-3);
        prop_assert!((a.mean() * a.len() as f32 - total).abs() < 1e-3);
    }

    #[test]
    fn row_dot_matches_elementwise_sum(a in matrix(1..6, 1..6)) {
        let b = a.map(|x| x * 0.7 - 0.1);
        let rd = a.row_dot(&b);
        let manual = a.mul_elem(&b).sum_cols();
        prop_assert!(rd.approx_eq(&manual, 1e-4));
    }

    /// Differentiating a sum of losses equals summing per-loss gradients.
    #[test]
    fn backward_is_linear_in_the_loss(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let p = store.register("p", 3, 3, Init::Gaussian { std: 1.0 }, &mut rng);

        let build = |tape: &mut Tape<'_>| {
            let v = tape.param(p);
            let sq = tape.mul_elem(v, v);
            let l1 = tape.sum_all(sq);
            let s = tape.sigmoid(v);
            let l2 = tape.mean_all(s);
            (l1, l2)
        };

        // Combined: backward from l1 + l2 on one tape.
        let mut combined = Gradients::zeros_like(&store);
        {
            let mut tape = Tape::new(&store);
            let (l1, l2) = build(&mut tape);
            let sum = tape.add(l1, l2);
            tape.backward(sum, &mut combined);
        }
        // Separate: two backward calls accumulating.
        let mut separate = Gradients::zeros_like(&store);
        {
            let mut tape = Tape::new(&store);
            let (l1, l2) = build(&mut tape);
            tape.backward(l1, &mut separate);
            tape.backward(l2, &mut separate);
        }
        let g1 = combined.get(p).unwrap();
        let g2 = separate.get(p).unwrap();
        prop_assert!(g1.approx_eq(g2, 1e-4));
    }

    /// backward_scaled(c) == c * backward(1).
    #[test]
    fn backward_scaling_is_multiplicative(c in 0.1f32..4.0) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = store.register("p", 2, 2, Init::Gaussian { std: 1.0 }, &mut rng);
        let run = |seed_weight: f32| {
            let mut grads = Gradients::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let v = tape.param(p);
            let t = tape.tanh(v);
            let l = tape.sum_all(t);
            tape.backward_scaled(l, seed_weight, &mut grads);
            grads.get(p).unwrap().clone()
        };
        let unit = run(1.0);
        let scaled = run(c);
        prop_assert!(scaled.approx_eq(&unit.scale(c), 1e-4));
    }

    #[test]
    fn gather_rows_never_invents_values(rows in 2usize..6, picks in proptest::collection::vec(0usize..6, 1..8)) {
        let m = Matrix::from_vec(6, rows, (0..6 * rows).map(|i| i as f32).collect());
        let g = m.gather_rows(&picks);
        for (out_row, &src) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), m.row(src));
        }
    }
}
