//! Property-based tests for the matrix kernels and autodiff identities.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use st_tensor::{Gradients, Init, Matrix, ParamStore, Tape};

/// Strategy: a matrix of bounded shape with small finite entries.
fn matrix(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Two matrices with matching inner dimension for multiplication.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-3.0f32..3.0, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d)),
            proptest::collection::vec(-3.0f32..3.0, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d)),
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(a in matrix(1..8, 1..8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (A B)^T == B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-4));
    }

    #[test]
    fn matmul_fused_variants_agree((a, b) in matmul_pair()) {
        let plain = a.matmul(&b);
        let via_bt = a.matmul_transpose_b(&b.transpose());
        let via_at = a.transpose().matmul_transpose_a(&b);
        prop_assert!(plain.approx_eq(&via_bt, 1e-4));
        prop_assert!(plain.approx_eq(&via_at, 1e-4));
    }

    #[test]
    fn add_commutes_and_sub_inverts(a in matrix(1..6, 1..6)) {
        let b = a.scale(0.5);
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
        prop_assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-5));
    }

    #[test]
    fn concat_cols_preserves_content(a in matrix(1..5, 1..5), scale in -2.0f32..2.0) {
        let b = a.scale(scale);
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.cols(), a.cols() * 2);
        for r in 0..a.rows() {
            prop_assert_eq!(&cat.row(r)[..a.cols()], a.row(r));
            prop_assert_eq!(&cat.row(r)[a.cols()..], b.row(r));
        }
    }

    #[test]
    fn reductions_are_consistent(a in matrix(1..6, 1..6)) {
        let total = a.sum();
        prop_assert!((a.sum_cols().sum() - total).abs() < 1e-3);
        prop_assert!((a.sum_rows().sum() - total).abs() < 1e-3);
        prop_assert!((a.mean() * a.len() as f32 - total).abs() < 1e-3);
    }

    #[test]
    fn row_dot_matches_elementwise_sum(a in matrix(1..6, 1..6)) {
        let b = a.map(|x| x * 0.7 - 0.1);
        let rd = a.row_dot(&b);
        let manual = a.mul_elem(&b).sum_cols();
        prop_assert!(rd.approx_eq(&manual, 1e-4));
    }

    /// Differentiating a sum of losses equals summing per-loss gradients.
    #[test]
    fn backward_is_linear_in_the_loss(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let p = store.register("p", 3, 3, Init::Gaussian { std: 1.0 }, &mut rng);

        let build = |tape: &mut Tape<'_>| {
            let v = tape.param(p);
            let sq = tape.mul_elem(v, v);
            let l1 = tape.sum_all(sq);
            let s = tape.sigmoid(v);
            let l2 = tape.mean_all(s);
            (l1, l2)
        };

        // Combined: backward from l1 + l2 on one tape.
        let mut combined = Gradients::zeros_like(&store);
        {
            let mut tape = Tape::new(&store);
            let (l1, l2) = build(&mut tape);
            let sum = tape.add(l1, l2);
            tape.backward(sum, &mut combined);
        }
        // Separate: two backward calls accumulating.
        let mut separate = Gradients::zeros_like(&store);
        {
            let mut tape = Tape::new(&store);
            let (l1, l2) = build(&mut tape);
            tape.backward(l1, &mut separate);
            tape.backward(l2, &mut separate);
        }
        let g1 = combined.get(p).unwrap();
        let g2 = separate.get(p).unwrap();
        prop_assert!(g1.approx_eq(g2, 1e-4));
    }

    /// backward_scaled(c) == c * backward(1).
    #[test]
    fn backward_scaling_is_multiplicative(c in 0.1f32..4.0) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = store.register("p", 2, 2, Init::Gaussian { std: 1.0 }, &mut rng);
        let run = |seed_weight: f32| {
            let mut grads = Gradients::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let v = tape.param(p);
            let t = tape.tanh(v);
            let l = tape.sum_all(t);
            tape.backward_scaled(l, seed_weight, &mut grads);
            grads.get(p).unwrap().clone()
        };
        let unit = run(1.0);
        let scaled = run(c);
        prop_assert!(scaled.approx_eq(&unit.scale(c), 1e-4));
    }

    #[test]
    fn gather_rows_never_invents_values(rows in 2usize..6, picks in proptest::collection::vec(0usize..6, 1..8)) {
        let m = Matrix::from_vec(6, rows, (0..6 * rows).map(|i| i as f32).collect());
        let g = m.gather_rows(&picks);
        for (out_row, &src) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), m.row(src));
        }
    }
}
