//! Property tests for the quantized v2 snapshot path.
//!
//! Two promises are policed here:
//!
//! 1. **Quantization round-trips are bounded.** For any f32 row, int8
//!    per-row quantization reconstructs every element within the
//!    documented worst-case bound (`scale / 2` = `max_abs / 254`), and
//!    degenerate rows (all-zero, constant) behave exactly.
//! 2. **No byte pattern reaches undefined behaviour.** The v2 reader
//!    serves gathers straight out of a memory-mapped file, so a corrupt
//!    container must surface as a clean `io::Error`-compatible failure —
//!    never a panic, never an out-of-bounds slice. Truncations, bit
//!    flips, and version forgeries are thrown at both the owned parse
//!    and the full [`st_tensor::load_params`] pipeline.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_tensor::checkpoint::MappedParams;
use st_tensor::quant::{dequantize_row_i8, i8_row_error_bound, quantize_row_i8};
use st_tensor::{save_params_v2, Init, ParamStore, StorageEncoding};

proptest! {
    /// Every element of every row survives the int8 round-trip within
    /// the closed-form error bound, and the bound itself is tight in the
    /// units of one quantization step.
    #[test]
    fn int8_roundtrip_error_is_bounded(
        row in proptest::collection::vec(-1000.0f32..1000.0f32, 1..96)
    ) {
        let mut q = vec![0i8; row.len()];
        let scale = quantize_row_i8(&row, &mut q);
        let mut back = vec![0.0f32; row.len()];
        dequantize_row_i8(&q, scale, &mut back);

        let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let bound = i8_row_error_bound(max_abs);
        for (orig, rt) in row.iter().zip(&back) {
            prop_assert!(
                (orig - rt).abs() <= bound + 1e-6,
                "element {orig} round-tripped to {rt}, bound {bound}"
            );
        }
    }

    /// All-zero rows are represented exactly (scale 0, all codes 0), so
    /// padding rows never inject noise.
    #[test]
    fn int8_zero_rows_are_exact(len in 1usize..128) {
        let row = vec![0.0f32; len];
        let mut q = vec![0i8; len];
        let scale = quantize_row_i8(&row, &mut q);
        prop_assert_eq!(scale, 0.0);
        prop_assert!(q.iter().all(|&c| c == 0));
        let mut back = vec![1.0f32; len];
        dequantize_row_i8(&q, scale, &mut back);
        prop_assert!(back.iter().all(|&v| v == 0.0));
    }

    /// Constant rows hit the extreme code exactly: every element is the
    /// row's own max-abs, so quantization is lossless.
    #[test]
    fn int8_constant_rows_are_exact(value in -500.0f32..500.0f32, len in 1usize..64) {
        let row = vec![value; len];
        let mut q = vec![0i8; len];
        let scale = quantize_row_i8(&row, &mut q);
        let mut back = vec![0.0f32; len];
        dequantize_row_i8(&q, scale, &mut back);
        for &rt in &back {
            prop_assert!(
                (rt - value).abs() <= value.abs() * 1e-6,
                "constant {value} came back as {rt}"
            );
        }
    }
}

/// A small but shape-diverse store covering both lossy-eligible tables
/// (`*_emb`) and always-f32 tower params.
fn sample_store(seed: u64) -> ParamStore {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    store.register("user_emb", 9, 6, Init::Uniform { limit: 0.5 }, &mut rng);
    store.register("poi_emb", 13, 6, Init::Uniform { limit: 0.5 }, &mut rng);
    store.register("tower.0.w", 12, 4, Init::Uniform { limit: 0.5 }, &mut rng);
    store.register("tower.0.b", 1, 4, Init::Uniform { limit: 0.5 }, &mut rng);
    store
}

/// Corruption must never escape as a panic: the parse either rejects the
/// bytes or — when damage lands inside tensor data, which only the data
/// checksum can see — the checksum-verifying load path rejects them.
fn assert_corruption_is_contained(bytes: Vec<u8>, what: &str) {
    let structurally_ok = match MappedParams::from_owned(bytes.clone()) {
        Ok(mapped) => {
            // The map-time parse validated every offset, so iterating and
            // materializing each entry must be in-bounds and panic-free.
            for (name, _) in mapped.iter() {
                let _ = mapped.matrix(name);
            }
            mapped.verify_data_checksums().is_ok()
        }
        Err(_) => false,
    };
    // The owned pipeline always verifies data checksums, so it must
    // agree with the strict verdict above.
    let loaded = st_tensor::load_params(bytes.as_slice());
    assert_eq!(
        loaded.is_ok(),
        structurally_ok,
        "{what}: load_params and strict mapped parse disagree"
    );
}

proptest! {
    /// Truncating a valid v2 container at any byte — header, index, or
    /// data region — is rejected cleanly, never UB.
    #[test]
    fn v2_truncation_never_panics(seed in 0u64..32, cut in 0.0f64..1.0) {
        let mut bytes = Vec::new();
        save_params_v2(&sample_store(seed), StorageEncoding::I8, &mut bytes).unwrap();
        let keep = ((bytes.len() as f64) * cut) as usize;
        let truncated = bytes[..keep.min(bytes.len().saturating_sub(1))].to_vec();
        prop_assert!(
            MappedParams::from_owned(truncated.clone()).is_err(),
            "truncated container parsed"
        );
        prop_assert!(st_tensor::load_params(truncated.as_slice()).is_err());
    }

    /// Flipping any bit anywhere in the container is either caught
    /// structurally, caught by a checksum, or (never) silently accepted
    /// with out-of-bounds consequences — the parse must not panic.
    #[test]
    fn v2_bit_flips_never_panic(seed in 0u64..16, pos in 0.0f64..1.0, bit in 0u32..8) {
        let mut bytes = Vec::new();
        save_params_v2(&sample_store(seed), StorageEncoding::F16, &mut bytes).unwrap();
        let idx = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[idx] ^= 1 << bit;
        assert_corruption_is_contained(bytes, "bit flip");
    }

    /// A forged version byte (anything but 1 or 2) is an immediate clean
    /// error.
    #[test]
    fn v2_unknown_versions_are_rejected(version in 3u8..255) {
        let mut bytes = Vec::new();
        save_params_v2(&sample_store(7), StorageEncoding::F32, &mut bytes).unwrap();
        bytes[4] = version; // little-endian u32 version field after the magic
        prop_assert!(MappedParams::from_owned(bytes.clone()).is_err());
        prop_assert!(st_tensor::load_params(bytes.as_slice()).is_err());
    }
}

/// Deterministic sweep to complement the random cases: every truncation
/// length of a small container and a bit flip in every byte of the
/// header + index region.
#[test]
fn v2_exhaustive_header_corruption_sweep() {
    let mut bytes = Vec::new();
    save_params_v2(&sample_store(3), StorageEncoding::I8, &mut bytes).unwrap();

    for keep in 0..bytes.len() {
        assert!(
            MappedParams::from_owned(bytes[..keep].to_vec()).is_err(),
            "truncation to {keep} bytes parsed"
        );
    }

    // Header + index live in the first page; mangle each byte there.
    let mut rng = SmallRng::seed_from_u64(11);
    for idx in 0..bytes.len().min(4096) {
        let mut mangled = bytes.clone();
        mangled[idx] ^= 1 << (rng.gen_range(0..8u32) as u8);
        assert_corruption_is_contained(mangled, "header/index byte flip");
    }
}
