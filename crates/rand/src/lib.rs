//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand`'s 0.8 API that the code base actually
//! uses: [`rngs::SmallRng`], the [`Rng`]/[`SeedableRng`] traits,
//! [`distributions::WeightedIndex`], and [`seq::SliceRandom`]. Everything
//! is deterministic given a seed, which is what the experiments rely on.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets, chosen
//! here for speed and statistical quality, not for compatibility of the
//! exact output stream.

#![warn(missing_docs)]

/// Core random source: everything reduces to a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f32`/`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from range types, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Widening multiply keeps the modulo bias negligible for
                // any span that fits in 64 bits.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + draw
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = unit_float(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = unit_float(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform float in `[0, 1)` with full mantissa precision.
fn unit_float<T: UnitFloat, R: RngCore + ?Sized>(rng: &mut R) -> T {
    T::from_bits64(rng.next_u64())
}

trait UnitFloat {
    fn from_bits64(bits: u64) -> Self;
}

impl UnitFloat for f32 {
    fn from_bits64(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl UnitFloat for f64 {
    fn from_bits64(bits: u64) -> f64 {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality non-cryptographic generator
    /// (xoshiro256++ with SplitMix64 seeding).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut sm);
            }
            // An all-zero state is the one fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard regardless.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution types: the standard distribution and weighted sampling.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: `[0, 1)` floats, full-range integers,
    /// fair booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            super::unit_float(rng)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_float(rng)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Errors from [`WeightedIndex`] construction.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// The weight list was empty.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Like `core::borrow::Borrow`, but restricted to [`Weight`] targets
    /// so the weight type infers unambiguously from `&[f64]`-style input
    /// (mirrors rand's `SampleBorrow`).
    pub trait SampleBorrow<B: Weight> {
        /// Borrows the weight value.
        fn sample_borrow(&self) -> B;
    }

    impl<B: Weight> SampleBorrow<B> for B {
        fn sample_borrow(&self) -> B {
            *self
        }
    }

    impl<B: Weight> SampleBorrow<B> for &B {
        fn sample_borrow(&self) -> B {
            **self
        }
    }

    /// Weight scalar types accepted by [`WeightedIndex`].
    pub trait Weight: Copy {
        /// Lossless-enough conversion to `f64` for accumulation.
        fn to_f64(self) -> f64;
    }

    impl Weight for f64 {
        fn to_f64(self) -> f64 {
            self
        }
    }

    impl Weight for f32 {
        fn to_f64(self) -> f64 {
            self as f64
        }
    }

    impl Weight for u32 {
        fn to_f64(self) -> f64 {
            self as f64
        }
    }

    impl Weight for u64 {
        fn to_f64(self) -> f64 {
            self as f64
        }
    }

    impl Weight for usize {
        fn to_f64(self) -> f64 {
            self as f64
        }
    }

    /// Samples indices `0..n` with probability proportional to the given
    /// weights (cumulative sums + binary search).
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<f64>,
        total: f64,
        _marker: core::marker::PhantomData<X>,
    }

    impl<X: Weight> WeightedIndex<X> {
        /// Builds the sampler; weights must be non-negative, finite and
        /// not all zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: SampleBorrow<X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = w.sample_borrow().to_f64();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self {
                cumulative,
                total,
                _marker: core::marker::PhantomData,
            })
        }
    }

    impl<X: Weight> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            // Uniform in [0, 1) straight from RngCore so `R: ?Sized` works.
            let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            let u: f64 = unit * self.total;
            // partition_point: first index whose cumulative sum exceeds u.
            let i = self.cumulative.partition_point(|&c| c <= u);
            i.min(self.cumulative.len() - 1)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index(rng, self.len())])
            }
        }
    }

    /// Uniform index in `[0, n)` via widening multiply, usable with
    /// unsized `R` (unlike `Rng::gen_range`).
    fn index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        debug_assert!(n > 0);
        ((rng.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_cover_and_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut min = 1.0f32;
        let mut max = 0.0f32;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
        // All values of a small range appear.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = WeightedIndex::<f64>::new([1.0, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} too far from 3");
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert!(WeightedIndex::<f64>::new(core::iter::empty::<&f64>()).is_err());
        assert!(WeightedIndex::<f64>::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::<f64>::new([1.0, -1.0]).is_err());
        assert!(WeightedIndex::<f64>::new([f64::NAN]).is_err());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            fn inner(rng: &mut impl Rng) -> u64 {
                rng.gen()
            }
            inner(rng)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = takes_impl(&mut rng);
    }
}
