#[test]
fn weighted_index_matches_weights() {
    use rand::distributions::{Distribution, WeightedIndex};
    use rand::{rngs::SmallRng, SeedableRng};
    let w = vec![1.0f64, 0.5, 0.25];
    let d = WeightedIndex::new(&w).unwrap();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut counts = [0usize; 3];
    for _ in 0..175_000 {
        counts[d.sample(&mut rng)] += 1;
    }
    let total: f64 = 175_000.0;
    for i in 0..3 {
        let p = counts[i] as f64 / total;
        let expect = w[i] / 1.75;
        assert!((p - expect).abs() < 0.01, "i={i} p={p} expect={expect}");
    }
}
