//! End-to-end tests: a real server on an ephemeral port, exercised over
//! loopback TCP with concurrent clients, an in-flight hot-reload, and a
//! battery of malformed requests.
//!
//! The correctness oracle is [`st_transrec_core::recommend_top_k`]: for
//! any `(user, city, k)` the served JSON body must be byte-identical to
//! rendering that function's output through the same
//! [`st_serve::render_recommend_body`] template. The batched serving
//! path therefore has zero tolerance for score drift.

use st_data::{synth, CityId, CrossingCitySplit, Dataset, UserId};
use st_serve::client::HttpClient;
use st_serve::server::{render_recommend_body, Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_serve::BatchConfig;
use st_transrec_core::{recommend_top_k, ModelConfig, Recommendation, RetrievalConfig, STTransRec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh scratch directory per test (std-only: no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "st-serve-e2e-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Fixture {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    ckpt: PathBuf,
    /// Oracle model, restored from the same checkpoint the server loads.
    oracle: STTransRec,
}

/// Trains a tiny model for `epochs`, saves it, and keeps an oracle copy.
fn fixture(tag: &str, epochs: usize) -> Fixture {
    let (dataset, _) = synth::generate(&synth::SynthConfig::tiny());
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(&dataset, CityId(1)));
    let mut oracle = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    for _ in 0..epochs {
        oracle.train_epoch(&dataset);
    }
    let ckpt = scratch_dir(tag).join("model.bin");
    st_tensor::save_params_atomic(oracle.params(), &ckpt).expect("save ckpt");
    Fixture {
        dataset,
        split,
        ckpt,
        oracle,
    }
}

fn start_server(fx: &Fixture, config: &ServeConfig) -> Server {
    let reloader = Reloader::new(
        fx.dataset.clone(),
        fx.split.clone(),
        ModelConfig::test_small(),
        &fx.ckpt,
    );
    let model = reloader.load().expect("load ckpt");
    let engine = Engine::new(fx.dataset.clone(), model, Some(reloader), config);
    Server::start(engine, config).expect("start server")
}

fn expected_recs(fx: &Fixture, user: u32, city: u16, k: usize) -> Vec<Recommendation> {
    recommend_top_k(&fx.oracle, &fx.dataset, UserId(user), CityId(city), k, &[])
}

fn expected_body(fx: &Fixture, user: u32, city: u16, k: usize, epoch: u64) -> String {
    render_recommend_body(
        UserId(user),
        CityId(city),
        k,
        epoch,
        &expected_recs(fx, user, city, k),
    )
}

#[test]
fn served_json_matches_recommend_top_k() {
    let fx = fixture("oracle", 1);
    let server = start_server(&fx, &ServeConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    for (user, city, k) in [(0u32, 1u16, 5usize), (3, 1, 10), (7, 0, 3), (0, 1, 1)] {
        let path = format!("/recommend?user={user}&city={city}&k={k}");
        let miss = client.get(&path).expect("request");
        assert_eq!(miss.status, 200, "body: {}", miss.body);
        assert_eq!(miss.header("x-cache"), Some("MISS"));
        assert_eq!(miss.header("x-model-epoch"), Some("1"));
        assert_eq!(miss.body, expected_body(&fx, user, city, k, 1));

        // The identical question again must be answered from the cache
        // with the identical body.
        let hit = client.get(&path).expect("request");
        assert_eq!(hit.status, 200);
        assert_eq!(hit.header("x-cache"), Some("HIT"));
        assert_eq!(hit.body, miss.body);
    }

    // k larger than the city's catalog clamps; k=0 is empty, not a panic.
    let big = client
        .get("/recommend?user=0&city=1&k=900")
        .expect("request");
    assert_eq!(big.status, 200);
    assert_eq!(big.body, expected_body(&fx, 0, 1, 900, 1));
    let zero = client.get("/recommend?user=0&city=1&k=0").expect("request");
    assert_eq!(zero.status, 200);
    assert!(
        zero.body.contains("\"recommendations\":[]"),
        "{}",
        zero.body
    );

    server.shutdown();
}

#[test]
fn concurrent_clients_with_inflight_reload() {
    let fx = fixture("reload", 1);

    // A second model generation: train the oracle one epoch further and
    // remember both generations' expected rankings.
    let users: Vec<u32> = (0..12).collect();
    let gen1: Vec<String> = users
        .iter()
        .map(|&u| expected_body(&fx, u, 1, 5, 1))
        .collect();
    let mut fx = fx;
    fx.oracle.train_epoch(&fx.dataset);
    let gen2: Vec<String> = users
        .iter()
        .map(|&u| expected_body(&fx, u, 1, 5, 2))
        .collect();

    // Serve generation 1 (the checkpoint on disk predates the extra
    // epoch), with a small batching window so requests coalesce.
    let config = ServeConfig {
        batch: BatchConfig {
            window: Duration::from_micros(300),
            max_batch: 16,
            ..BatchConfig::default()
        },
        workers: 4,
        ..ServeConfig::default()
    };
    let server = start_server(&fx, &config);
    let addr = server.local_addr();

    // Overwrite the checkpoint with generation 2 bytes, then hammer the
    // server from several threads while one of them triggers the reload.
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");

    let gen1 = Arc::new(gen1);
    let gen2 = Arc::new(gen2);
    let users = Arc::new(users);
    let mut handles = Vec::new();
    for t in 0..4 {
        let (gen1, gen2, users) = (gen1.clone(), gen2.clone(), users.clone());
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            for round in 0..6 {
                if t == 0 && round == 2 {
                    let reload = client.post("/admin/reload").expect("reload");
                    assert_eq!(reload.status, 200, "body: {}", reload.body);
                    assert!(reload.body.contains("\"model_epoch\":2"), "{}", reload.body);
                }
                for (i, &u) in users.iter().enumerate() {
                    let resp = client
                        .get(&format!("/recommend?user={u}&city=1&k=5"))
                        .expect("request");
                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                    // Every response must be exactly one model
                    // generation — never a blend, never torn.
                    assert!(
                        resp.body == gen1[i] || resp.body == gen2[i],
                        "user {u} got a body matching neither generation: {}",
                        resp.body
                    );
                    match resp.header("x-model-epoch") {
                        Some("1") => assert_eq!(resp.body, gen1[i]),
                        Some("2") => assert_eq!(resp.body, gen2[i]),
                        other => panic!("unexpected X-Model-Epoch: {other:?}"),
                    }
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }

    // After the dust settles the server answers from generation 2.
    let mut client = HttpClient::connect(addr).expect("connect");
    let resp = client.get("/recommend?user=0&city=1&k=5").expect("request");
    assert_eq!(resp.body, gen2[0]);
    let health = client.get("/healthz").expect("healthz");
    assert!(health.body.contains("\"model_epoch\":2"), "{}", health.body);

    server.shutdown();
}

#[test]
fn retrieval_with_full_budget_serves_the_exact_ranking() {
    let fx = fixture("retrieval", 1);
    // Force the tiny demo catalog through the two-stage path: index every
    // city (min_catalog 1) with a candidate budget covering the whole
    // catalog, so the retrieved ranking must be byte-identical to the
    // exact-scan oracle.
    let config = ServeConfig {
        retrieval: Some(RetrievalConfig {
            min_catalog: 1,
            max_candidates: fx.dataset.num_pois(),
            nprobe: usize::MAX,
            ..RetrievalConfig::default()
        }),
        ..ServeConfig::default()
    };
    let server = start_server(&fx, &config);
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    for (user, city, k) in [(0u32, 1u16, 5usize), (3, 1, 10), (7, 0, 3)] {
        let resp = client
            .get(&format!("/recommend?user={user}&city={city}&k={k}"))
            .expect("request");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        assert_eq!(resp.body, expected_body(&fx, user, city, k, 1));
    }

    // The candidate-set histogram saw traffic and nothing fell back.
    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("st_serve_candidate_set_size_count"));
    assert!(metrics.body.contains("st_serve_retrieval_fallback_total 0"));

    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests() {
    let fx = fixture("malformed", 1);
    let server = start_server(&fx, &ServeConfig::default());
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");

    let cases_400 = [
        "/recommend",                      // missing user
        "/recommend?user=0",               // missing city
        "/recommend?user=abc&city=1&k=5",  // non-numeric user
        "/recommend?user=0&city=-1&k=5",   // negative city
        "/recommend?user=0&city=1&k=nope", // non-numeric k
        "/recommend?user=0&city=1&k=9999", // k over max_k
    ];
    for path in cases_400 {
        let resp = client.get(path).expect("request");
        assert_eq!(resp.status, 400, "{path} -> {}", resp.body);
    }

    // Unknown entities are 404, not 500 — and never a panic.
    for path in [
        "/recommend?user=999999&city=1&k=5",
        "/recommend?user=0&city=9&k=5",
        "/no/such/route",
    ] {
        let resp = client.get(path).expect("request");
        assert_eq!(resp.status, 404, "{path} -> {}", resp.body);
    }

    // Wrong method on a known route.
    let resp = client.post("/recommend?user=0&city=1&k=5").expect("post");
    assert_eq!(resp.status, 405);
    let resp = client.get("/admin/reload").expect("get reload");
    assert_eq!(resp.status, 405);

    // Raw garbage on the wire gets 400 and a closed connection, and the
    // server keeps serving other clients afterwards.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").expect("write");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");

    let resp = client.get("/healthz").expect("healthz after garbage");
    assert_eq!(resp.status, 200);

    // /metrics reflects the traffic above.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .body
        .contains("st_serve_requests_total{route=\"recommend\"}"));
    assert!(metrics
        .body
        .contains("st_serve_responses_total{class=\"4xx\"}"));
    assert!(metrics.body.contains("st_serve_request_latency_us_count"));

    server.shutdown();
}
