//! Chaos end-to-end tests: a real server on loopback TCP driven through
//! seeded fault-injection scenarios — burst over capacity, deadline
//! expiry, hot-reload mid-burst, degraded serving, and a forced scorer
//! failure.
//!
//! Every scenario asserts the **conservation invariant**: each submitted
//! request reaches exactly one terminal outcome (served, shed `429`,
//! expired `503`, degraded `200`, or failed `500`) — no request is lost,
//! no client hangs, and the outcome counts add up to the submissions.
//!
//! Determinism comes from the [`FaultInjector`] freeze gate, not from
//! racing timers: the gate holds the batcher off the queue, the driver
//! waits for exact queue depths via metrics, and only then injects the
//! next event. The same script therefore yields the same outcome counts
//! on every run, loaded machine or not.

use st_data::{synth, CityId, CrossingCitySplit, Dataset, UserId};
use st_serve::client::HttpClient;
use st_serve::server::{render_recommend_body, Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_serve::{BatchConfig, FaultInjector};
use st_transrec_core::{recommend_top_k, ModelConfig, STTransRec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fresh scratch directory per test (std-only: no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "st-serve-chaos-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Fixture {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    ckpt: PathBuf,
    oracle: STTransRec,
}

fn fixture(tag: &str) -> Fixture {
    let (dataset, _) = synth::generate(&synth::SynthConfig::tiny());
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(&dataset, CityId(1)));
    let mut oracle = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    oracle.train_epoch(&dataset);
    let ckpt = scratch_dir(tag).join("model.bin");
    st_tensor::save_params_atomic(oracle.params(), &ckpt).expect("save ckpt");
    Fixture {
        dataset,
        split,
        ckpt,
        oracle,
    }
}

fn start_server(fx: &Fixture, config: &ServeConfig) -> Server {
    let reloader = Reloader::new(
        fx.dataset.clone(),
        fx.split.clone(),
        ModelConfig::test_small(),
        &fx.ckpt,
    );
    let model = reloader.load().expect("load ckpt");
    let engine = Engine::new(fx.dataset.clone(), model, Some(reloader), config);
    Server::start(engine, config).expect("start server")
}

fn expected_body(fx: &Fixture, user: u32, k: usize, epoch: u64) -> String {
    let recs = recommend_top_k(&fx.oracle, &fx.dataset, UserId(user), CityId(1), k, &[]);
    render_recommend_body(UserId(user), CityId(1), k, epoch, &recs)
}

/// Overload-tuned config: enough HTTP workers that every parked client
/// holds a worker without starving the driver's own connections, and a
/// zero coalescing window so drains are immediate once thawed.
fn chaos_config(injector: &Arc<FaultInjector>, queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        workers: queue_capacity + 8,
        batch: BatchConfig {
            window: Duration::ZERO,
            queue_capacity,
            ..BatchConfig::default()
        },
        fault: Some(injector.clone()),
        ..ServeConfig::default()
    }
}

/// Blocks until the batcher queue holds exactly `depth` jobs. With the
/// freeze gate closed the depth can only grow toward `depth`, so this is
/// a deterministic rendezvous, not a race.
fn wait_for_depth(server: &Server, depth: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = server
            .engine()
            .metrics()
            .queue_depth
            .load(Ordering::Relaxed);
        if now == depth {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "queue depth stuck at {now}, wanted {depth}"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Parks `combos` requests in the (frozen) queue from background
/// threads, waits for all of them to enqueue, runs `mid` while they are
/// parked, and returns every parked request's `(status, body)`.
fn with_parked_requests(
    server: &Server,
    combos: &[(u32, usize)],
    mid: impl FnOnce(),
) -> Vec<(u16, String)> {
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let handles: Vec<_> = combos
            .iter()
            .map(|&(user, k)| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let resp = client
                        .get(&format!("/recommend?user={user}&city=1&k={k}"))
                        .expect("parked request resolves");
                    (resp.status, resp.body)
                })
            })
            .collect();
        wait_for_depth(server, combos.len() as u64);
        mid();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn burst_over_capacity_sheds_with_429() {
    let fx = fixture("burst");
    let injector = Arc::new(FaultInjector::new(42));
    let server = start_server(&fx, &chaos_config(&injector, 4));
    let addr = server.local_addr();

    let parked: Vec<(u32, usize)> = (0..4u32).map(|u| (u, 3)).collect();
    let excess = 3u32;
    injector.freeze();
    let outcomes = with_parked_requests(&server, &parked, || {
        // Queue is exactly full and frozen: every extra request must be
        // shed synchronously with 429 + Retry-After, never queued.
        let mut client = HttpClient::connect(addr).expect("connect");
        for i in 0..excess {
            let user = 10 + i;
            let resp = client
                .get(&format!("/recommend?user={user}&city=1&k=3"))
                .expect("shed request resolves");
            assert_eq!(resp.status, 429, "body: {}", resp.body);
            assert_eq!(resp.header("retry-after"), Some("1"));
            assert!(resp.body.contains("queue full"), "{}", resp.body);
        }
        injector.thaw();
    });

    // Thawed: every parked request is served exactly, nothing lost.
    let mut served = 0;
    for (i, (status, body)) in outcomes.iter().enumerate() {
        assert_eq!(*status, 200, "parked request {i}: {body}");
        assert_eq!(*body, expected_body(&fx, i as u32, 3, 1));
        served += 1;
    }

    // Conservation: submitted == served + shed, and metrics agree.
    let metrics = server.engine().metrics();
    assert_eq!(served + excess as usize, parked.len() + excess as usize);
    assert_eq!(metrics.shed_total.load(Ordering::Relaxed), excess as u64);
    assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.expired_total.load(Ordering::Relaxed), 0);

    // The shed counter is on /metrics for operators.
    let mut client = HttpClient::connect(addr).expect("connect");
    let scrape = client.get("/metrics").expect("metrics");
    assert!(
        scrape.body.contains("st_serve_shed_total 3"),
        "{}",
        scrape.body
    );
    assert!(
        scrape.body.contains("st_serve_queue_depth 0"),
        "{}",
        scrape.body
    );

    server.shutdown();
}

#[test]
fn deadline_expiry_returns_503() {
    let fx = fixture("deadline");
    let injector = Arc::new(FaultInjector::new(7));
    let mut config = chaos_config(&injector, 8);
    config.batch.deadline = Duration::from_millis(100);
    let server = start_server(&fx, &config);

    let parked: Vec<(u32, usize)> = (0..3u32).map(|u| (u, 4)).collect();
    injector.freeze();
    let outcomes = with_parked_requests(&server, &parked, || {
        // Hold the freeze well past the deadline; only then may the
        // batcher see (and expire) the queued jobs.
        std::thread::sleep(Duration::from_millis(400));
        injector.thaw();
    });

    for (status, body) in &outcomes {
        assert_eq!(*status, 503, "body: {body}");
        assert!(body.contains("deadline-exceeded"), "{body}");
    }

    let metrics = server.engine().metrics();
    assert_eq!(metrics.expired_total.load(Ordering::Relaxed), 3);
    assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 0);

    // The storm is over: a fresh request scores normally.
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let resp = client.get("/recommend?user=0&city=1&k=4").expect("request");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.body, expected_body(&fx, 0, 4, 1));

    server.shutdown();
}

#[test]
fn hot_reload_mid_burst_loses_zero_requests() {
    let mut fx = fixture("reload-burst");
    // Generation 2 = one more training epoch, saved over the checkpoint
    // so /admin/reload picks it up mid-burst.
    let gen1: Vec<String> = (0..5u32).map(|u| expected_body(&fx, u, 5, 1)).collect();
    fx.oracle.train_epoch(&fx.dataset);
    let gen2: Vec<String> = (0..5u32).map(|u| expected_body(&fx, u, 5, 2)).collect();

    let injector = Arc::new(FaultInjector::new(9));
    let server = start_server(&fx, &chaos_config(&injector, 8));
    let addr = server.local_addr();
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");

    let parked: Vec<(u32, usize)> = (0..5u32).map(|u| (u, 5)).collect();
    injector.freeze();
    let outcomes = with_parked_requests(&server, &parked, || {
        // Swap the model while five requests sit in the queue.
        let mut client = HttpClient::connect(addr).expect("connect");
        let reload = client.post("/admin/reload").expect("reload");
        assert_eq!(reload.status, 200, "body: {}", reload.body);
        assert!(reload.body.contains("\"model_epoch\":2"), "{}", reload.body);
        injector.thaw();
    });

    // Zero loss: every parked request is served by exactly one model
    // generation — whichever epoch scored its batch — never torn.
    for (i, (status, body)) in outcomes.iter().enumerate() {
        assert_eq!(*status, 200, "parked request {i}: {body}");
        assert!(
            *body == gen1[i] || *body == gen2[i],
            "user {i} got a body matching neither generation: {body}"
        );
    }
    let metrics = server.engine().metrics();
    assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.expired_total.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);

    server.shutdown();
}

#[test]
fn repeated_publishes_mid_burst_lose_zero_requests() {
    // The online publisher's steady state: every few seconds a freshly
    // trained checkpoint is written atomically and /admin/reload is
    // posted while scoring traffic is in flight. Three consecutive
    // publish cycles, each with five requests parked in the queue during
    // the swap — every request must be served by exactly one generation.
    let mut fx = fixture("repeat-publish");
    let injector = Arc::new(FaultInjector::new(17));
    let server = start_server(&fx, &chaos_config(&injector, 8));
    let addr = server.local_addr();

    for cycle in 1..=3u64 {
        // Fresh users each cycle so the result cache cannot answer the
        // burst before it reaches the queue (tiny has 60 users).
        let users: Vec<(u32, usize)> = (0..5u32).map(|u| (cycle as u32 * 10 + u, 5)).collect();
        let old_gen: Vec<String> = users
            .iter()
            .map(|&(u, k)| expected_body(&fx, u, k, cycle))
            .collect();

        // Next generation: one more epoch, published through the same
        // atomic temp-file + rename path the online loop uses.
        fx.oracle.train_epoch(&fx.dataset);
        st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("atomic publish");
        let new_gen: Vec<String> = users
            .iter()
            .map(|&(u, k)| expected_body(&fx, u, k, cycle + 1))
            .collect();

        injector.freeze();
        let outcomes = with_parked_requests(&server, &users, || {
            let mut client = HttpClient::connect(addr).expect("connect");
            let reload = client.post("/admin/reload").expect("reload");
            assert_eq!(reload.status, 200, "cycle {cycle}: {}", reload.body);
            assert!(
                reload
                    .body
                    .contains(&format!("\"model_epoch\":{}", cycle + 1)),
                "cycle {cycle}: {}",
                reload.body
            );
            injector.thaw();
        });

        for (i, (status, body)) in outcomes.iter().enumerate() {
            assert_eq!(*status, 200, "cycle {cycle} request {i}: {body}");
            assert!(
                *body == old_gen[i] || *body == new_gen[i],
                "cycle {cycle} request {i}: body matches neither generation: {body}"
            );
        }
    }

    // Conservation across all three publishes, and the publish trail is
    // visible to operators: epoch 4 serving, three clean reloads, a
    // last-reload timestamp an external staleness alert can key on.
    let metrics = server.engine().metrics();
    assert_eq!(metrics.reloads_ok.load(Ordering::Relaxed), 3);
    assert_eq!(metrics.reloads_failed.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.expired_total.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);

    let mut client = HttpClient::connect(addr).expect("connect");
    let scrape = client.get("/metrics").expect("metrics").body;
    assert!(scrape.contains("st_serve_model_epoch 4"), "{scrape}");
    let stamp: u64 = scrape
        .lines()
        .find_map(|l| l.strip_prefix("st_serve_last_reload_timestamp_seconds "))
        .expect("timestamp gauge exported")
        .trim()
        .parse()
        .expect("timestamp is an integer");
    assert!(stamp > 0, "last-reload timestamp never stamped");

    server.shutdown();
}

#[test]
fn degraded_mode_serves_cached_results_under_overload() {
    let fx = fixture("degraded");
    let injector = Arc::new(FaultInjector::new(11));
    let mut config = chaos_config(&injector, 8);
    config.degrade_watermark = 2;
    let server = start_server(&fx, &config);
    let addr = server.local_addr();

    // Warm the caches for two keys at epoch 1.
    let mut client = HttpClient::connect(addr).expect("connect");
    for user in [0u32, 1] {
        let resp = client
            .get(&format!("/recommend?user={user}&city=1&k=5"))
            .expect("warm request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, expected_body(&fx, user, 5, 1));
    }

    // Hot-reload from the same checkpoint: the epoch bumps to 2, so the
    // fresh epoch-keyed cache misses for the warmed keys — only the
    // epoch-agnostic stale cache can answer them now.
    let reload = client.post("/admin/reload").expect("reload");
    assert_eq!(reload.status, 200, "body: {}", reload.body);

    // Overload: freeze and fill the queue to the watermark with keys
    // nothing has cached.
    let parked: Vec<(u32, usize)> = [(10u32, 3usize), (11, 3)].to_vec();
    injector.freeze();
    let outcomes = with_parked_requests(&server, &parked, || {
        // Above the watermark, warmed keys are answered from the stale
        // cache immediately — degraded, stale epoch, but served.
        for user in [0u32, 1] {
            let resp = client
                .get(&format!("/recommend?user={user}&city=1&k=5"))
                .expect("degraded request");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            assert_eq!(resp.header("x-cache"), Some("STALE"));
            assert_eq!(resp.header("x-degraded"), Some("true"));
            assert_eq!(resp.header("x-model-epoch"), Some("1"));
            let expected = format!(
                "{{\"degraded\":true,{}",
                &expected_body(&fx, user, 5, 1)[1..]
            );
            assert_eq!(resp.body, expected);
        }
        // A key with no stale entry cannot degrade; at depth == capacity
        // it would queue, so keep it out of this frozen phase.
        injector.thaw();
    });

    // The parked cold-key requests were served fresh after the thaw.
    for (i, (status, body)) in outcomes.iter().enumerate() {
        assert_eq!(*status, 200, "parked request {i}: {body}");
        assert_eq!(*body, expected_body(&fx, 10 + i as u32, 3, 2));
    }

    // Conservation: 2 warm + 2 degraded + 2 fresh == 6 submissions, and
    // the degraded counter saw exactly the stale serves.
    let metrics = server.engine().metrics();
    assert_eq!(metrics.degraded_total.load(Ordering::Relaxed), 2);
    assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.expired_total.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.recommend_requests.load(Ordering::Relaxed), 6);

    // Below the watermark again, the same warmed key is served fresh —
    // scored at epoch 2, no degraded marker.
    let resp = client.get("/recommend?user=0&city=1&k=5").expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-degraded"), None);
    assert_eq!(resp.body, expected_body(&fx, 0, 5, 2));

    server.shutdown();
}

#[test]
fn injected_scorer_failure_fails_the_batch_cleanly() {
    let fx = fixture("scorer-failure");
    let injector = Arc::new(FaultInjector::new(13));
    let server = start_server(&fx, &chaos_config(&injector, 8));

    let parked: Vec<(u32, usize)> = (0..2u32).map(|u| (u, 3)).collect();
    injector.freeze();
    injector.fail_next_batches(1);
    let outcomes = with_parked_requests(&server, &parked, || injector.thaw());

    for (status, body) in &outcomes {
        assert_eq!(*status, 500, "body: {body}");
        assert!(body.contains("scorer failed"), "{body}");
    }
    let metrics = server.engine().metrics();
    assert_eq!(metrics.injected_failures_total.load(Ordering::Relaxed), 2);

    // The failure budget is spent; the server recovers on its own.
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let resp = client.get("/recommend?user=0&city=1&k=3").expect("request");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.body, expected_body(&fx, 0, 3, 1));

    server.shutdown();
}
