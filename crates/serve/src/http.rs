//! Minimal HTTP/1.1 request parsing and response writing over `std::io`.
//!
//! The serving subsystem speaks just enough HTTP for its four routes:
//! request line + headers + optional `Content-Length` body, keep-alive
//! by default (HTTP/1.1 semantics, `Connection: close` honoured), and
//! hard limits on line length, header count and body size so a
//! malformed or hostile peer costs a bounded amount of memory. Anything
//! outside that envelope surfaces as [`ParseError::Malformed`], which
//! the server answers with `400 Bad Request`.

use std::io::{BufRead, Write};

/// Longest accepted request/header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted headers per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
const MAX_BODY: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/recommend`).
    pub path: String,
    /// The original request target exactly as received (path plus query
    /// string, undecoded), so a reverse proxy can forward it verbatim.
    pub target: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Errors from request parsing.
#[derive(Debug)]
pub enum ParseError {
    /// The bytes are not a well-formed request within our limits; the
    /// connection gets a `400` and is closed.
    Malformed(String),
    /// The underlying socket failed (including read timeouts).
    Io(std::io::Error),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one line up to `MAX_LINE` bytes, without the trailing CRLF.
/// Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Malformed("EOF mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| ParseError::Malformed("non-UTF8 request line".into()))?;
                    return Ok(Some(s));
                }
                if line.len() >= MAX_LINE {
                    return Err(ParseError::Malformed("request line too long".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
}

/// Decodes `%XX` escapes and `+` as space in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let decoded = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match decoded {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(p), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Reads one request from `reader`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive shutdown).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ParseError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| ParseError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        let len: usize = v
            .parse()
            .map_err(|_| ParseError::Malformed(format!("bad content-length {v:?}")))?;
        if len > MAX_BODY {
            return Err(ParseError::Malformed("body too large".into()));
        }
        body = vec![0u8; len];
        reader.read_exact(&mut body)?;
    }

    let (path, query) = parse_target(target);
    Ok(Some(Request {
        method: method.to_string(),
        path,
        target: target.to_string(),
        query,
        headers,
        body,
    }))
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response to `out`, advertising keep-alive or close.
    pub fn write_to<W: Write>(&self, mut out: W, keep_alive: bool) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders `s` as a JSON string literal with escaping.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /recommend?user=3&city=1&k=5 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/recommend");
        assert_eq!(req.target, "/recommend?user=3&city=1&k=5");
        assert_eq!(req.query_param("user"), Some("3"));
        assert_eq!(req.query_param("city"), Some("1"));
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let req = parse(
            "POST /admin/reload HTTP/1.1\r\nConnection: close\r\nContent-Length: 4\r\n\r\nwake",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"wake");
        assert!(req.wants_close());
    }

    #[test]
    fn percent_decoding_in_query() {
        let req = parse("GET /recommend?user=1&note=a%20b+c HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("note"), Some("a b c"));
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for raw in [
            "NOT-HTTP\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/9.9\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: huge\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ParseError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut buf = Vec::new();
        Response::json(200, "{}")
            .with_header("X-Cache", "HIT")
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Cache: HIT\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
