//! Lock-free serving metrics with a plain-text exposition format.
//!
//! Counters are relaxed atomics — metrics are observability, not
//! synchronization — and histograms are fixed cumulative buckets in the
//! Prometheus style (`le` upper bounds, `+Inf` implicit in `_count`),
//! so `GET /metrics` renders without stopping the request path.

use st_tensor::StorageEncoding;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Upper bounds (inclusive) of the request-latency buckets, microseconds.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// Upper bounds (inclusive) of the batch-size buckets, requests.
pub const BATCH_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Upper bounds (inclusive) of the candidate-set-size buckets, POIs per
/// ranked request. Sized around the default `max_candidates` of 4096:
/// the low buckets show sparse grid/IVF hits, the top ones show
/// budget-saturated or exact-fallback-sized sets.
pub const CANDIDATE_BUCKETS: [u64; 8] = [64, 128, 256, 512, 1_024, 2_048, 4_096, 16_384];

/// A fixed-bucket cumulative histogram.
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    buckets: [AtomicU64; N],
    count: AtomicU64,
    sum: AtomicU64,
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl<const N: usize> Histogram<N> {
    /// Records one observation.
    pub fn observe(&self, value: u64, bounds: &[u64; N]) {
        for (bucket, &bound) in self.buckets.iter().zip(bounds) {
            if value <= bound {
                bucket.fetch_add(1, Relaxed);
            }
        }
        self.count.fetch_add(1, Relaxed);
        // The sum saturates instead of wrapping: a wrapped counter reads
        // as a reset mid-scrape, a pinned one reads as "huge", which is
        // the honest answer once u64 overflows.
        let mut cur = self.sum.load(Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self.sum.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`. Observations
    /// above every bound report the largest bound (the histogram cannot
    /// resolve further). `None` until something was observed.
    pub fn quantile(&self, q: f64, bounds: &[u64; N]) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        for (bucket, &bound) in self.buckets.iter().zip(bounds) {
            if bucket.load(Relaxed) >= rank {
                return Some(bound);
            }
        }
        bounds.last().copied()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    fn render_into(&self, out: &mut String, name: &str, bounds: &[u64; N]) {
        use std::fmt::Write;
        for (bucket, bound) in self.buckets.iter().zip(bounds) {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{bound}\"}} {}",
                bucket.load(Relaxed)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count());
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// All counters the serving subsystem exports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `GET /recommend` requests.
    pub recommend_requests: AtomicU64,
    /// `GET /healthz` requests.
    pub healthz_requests: AtomicU64,
    /// `GET /metrics` requests.
    pub metrics_requests: AtomicU64,
    /// `POST /admin/reload` requests.
    pub reload_requests: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (including 400s for malformed requests).
    pub responses_4xx: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Forward passes executed by the micro-batcher.
    pub batches: AtomicU64,
    /// Requests served through those batches.
    pub batched_requests: AtomicU64,
    /// Successful hot-reloads.
    pub reloads_ok: AtomicU64,
    /// Rejected hot-reloads (bad checkpoint kept the old model).
    pub reloads_failed: AtomicU64,
    /// Live batcher queue depth (gauge, maintained by submit/drain).
    pub queue_depth: AtomicU64,
    /// Requests shed at admission because the queue was full (429).
    pub shed_total: AtomicU64,
    /// Queued requests dropped after their deadline expired (503).
    pub expired_total: AtomicU64,
    /// Requests answered from the stale cache under overload.
    pub degraded_total: AtomicU64,
    /// Requests failed by an injected scorer fault (500, chaos only).
    pub injected_failures_total: AtomicU64,
    /// Ranked requests that fell back to the exact full-catalog scan
    /// (no retrieval index for the city, retrieval disabled, or an
    /// unindexable query) — degraded-to-exact serving made observable.
    pub retrieval_fallback_total: AtomicU64,
    /// Unix time (seconds) of the last successful model (re)load:
    /// stamped at startup and on each accepted `/admin/reload`. Together
    /// with `st_serve_model_epoch` this tells an online publisher — and
    /// any staleness alert — exactly which generation is serving and how
    /// long it has been serving it.
    pub last_reload_unix: AtomicU64,
    /// Bytes backing the serving snapshot (container size for mapped v2
    /// checkpoints, resident table bytes for live captures). Stamped at
    /// startup and on each accepted reload; exported as
    /// `st_serve_snapshot_bytes`.
    pub snapshot_bytes: AtomicU64,
    /// [`StorageEncoding::code`] of the serving snapshot's tables,
    /// exported as the one-hot `st_serve_snapshot_format{format=...}`
    /// family. Stamped alongside `snapshot_bytes`.
    pub snapshot_format: AtomicU64,
    /// 1 when the serving snapshot reads its tables out of a
    /// memory-mapped checkpoint (zero-copy reload), else 0.
    pub snapshot_mapped: AtomicU64,
    /// Batch-size distribution.
    pub batch_size: Histogram<7>,
    /// Candidate-set-size distribution (POIs re-ranked per request).
    pub candidate_size: Histogram<8>,
    /// `/recommend` latency distribution, microseconds.
    pub latency_us: Histogram<10>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a response status for the by-class counters.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Relaxed);
    }

    /// Stamps the snapshot gauges for the generation that just became
    /// current — called at startup and after each accepted reload.
    pub fn stamp_snapshot(&self, format: StorageEncoding, bytes: u64, mapped: bool) {
        self.snapshot_format
            .store(u64::from(format.code()), Relaxed);
        self.snapshot_bytes.store(bytes, Relaxed);
        self.snapshot_mapped.store(u64::from(mapped), Relaxed);
    }

    /// Cache hit rate over all lookups so far, in [0, 1].
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Relaxed) as f64;
        let total = hits + self.cache_misses.load(Relaxed) as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Renders the plain-text exposition, with current gauges supplied
    /// by the server (model epoch, live cache entries).
    pub fn render(&self, model_epoch: u64, cache_len: usize) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, v: u64| {
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            "st_serve_requests_total{route=\"recommend\"}",
            self.recommend_requests.load(Relaxed),
        );
        counter(
            "st_serve_requests_total{route=\"healthz\"}",
            self.healthz_requests.load(Relaxed),
        );
        counter(
            "st_serve_requests_total{route=\"metrics\"}",
            self.metrics_requests.load(Relaxed),
        );
        counter(
            "st_serve_requests_total{route=\"reload\"}",
            self.reload_requests.load(Relaxed),
        );
        counter(
            "st_serve_responses_total{class=\"2xx\"}",
            self.responses_2xx.load(Relaxed),
        );
        counter(
            "st_serve_responses_total{class=\"4xx\"}",
            self.responses_4xx.load(Relaxed),
        );
        counter(
            "st_serve_responses_total{class=\"5xx\"}",
            self.responses_5xx.load(Relaxed),
        );
        counter("st_serve_cache_hits_total", self.cache_hits.load(Relaxed));
        counter(
            "st_serve_cache_misses_total",
            self.cache_misses.load(Relaxed),
        );
        counter("st_serve_batches_total", self.batches.load(Relaxed));
        counter(
            "st_serve_batched_requests_total",
            self.batched_requests.load(Relaxed),
        );
        counter("st_serve_reloads_ok_total", self.reloads_ok.load(Relaxed));
        counter(
            "st_serve_reloads_failed_total",
            self.reloads_failed.load(Relaxed),
        );
        counter("st_serve_queue_depth", self.queue_depth.load(Relaxed));
        counter("st_serve_shed_total", self.shed_total.load(Relaxed));
        counter("st_serve_expired_total", self.expired_total.load(Relaxed));
        counter("st_serve_degraded_total", self.degraded_total.load(Relaxed));
        counter(
            "st_serve_injected_failures_total",
            self.injected_failures_total.load(Relaxed),
        );
        counter(
            "st_serve_retrieval_fallback_total",
            self.retrieval_fallback_total.load(Relaxed),
        );
        for (name, q) in [
            ("st_serve_request_latency_us_p50", 0.50),
            ("st_serve_request_latency_us_p99", 0.99),
        ] {
            if let Some(v) = self.latency_us.quantile(q, &LATENCY_BUCKETS_US) {
                let _ = writeln!(out, "{name} {v}");
            }
        }
        let _ = writeln!(out, "st_serve_cache_hit_rate {}", self.cache_hit_rate());
        let _ = writeln!(out, "st_serve_model_epoch {model_epoch}");
        let _ = writeln!(
            out,
            "st_serve_last_reload_timestamp_seconds {}",
            self.last_reload_unix.load(Relaxed)
        );
        let _ = writeln!(out, "st_serve_cache_entries {cache_len}");
        let _ = writeln!(
            out,
            "st_serve_snapshot_bytes {}",
            self.snapshot_bytes.load(Relaxed)
        );
        // One-hot across the known encodings, so dashboards can match on
        // a stable label instead of decoding an integer.
        let current = self.snapshot_format.load(Relaxed);
        for format in [
            StorageEncoding::F32,
            StorageEncoding::F16,
            StorageEncoding::I8,
        ] {
            let _ = writeln!(
                out,
                "st_serve_snapshot_format{{format=\"{format}\"}} {}",
                u64::from(u64::from(format.code()) == current)
            );
        }
        let _ = writeln!(
            out,
            "st_serve_snapshot_mapped {}",
            self.snapshot_mapped.load(Relaxed)
        );
        self.batch_size
            .render_into(&mut out, "st_serve_batch_size", &BATCH_BUCKETS);
        self.candidate_size.render_into(
            &mut out,
            "st_serve_candidate_set_size",
            &CANDIDATE_BUCKETS,
        );
        self.latency_us
            .render_into(&mut out, "st_serve_request_latency_us", &LATENCY_BUCKETS_US);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h: Histogram<7> = Histogram::default();
        h.observe(1, &BATCH_BUCKETS);
        h.observe(3, &BATCH_BUCKETS);
        h.observe(1000, &BATCH_BUCKETS); // above every bound: only +Inf
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1004);
        let mut out = String::new();
        h.render_into(&mut out, "x", &BATCH_BUCKETS);
        assert!(out.contains("x_bucket{le=\"1\"} 1"));
        assert!(out.contains("x_bucket{le=\"4\"} 2"));
        assert!(out.contains("x_bucket{le=\"64\"} 2"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("x_count 3"));
    }

    #[test]
    fn boundary_values_land_in_their_bucket() {
        // A value exactly equal to a bound belongs to that bucket
        // (bounds are inclusive upper limits), and one past it does not.
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            let h: Histogram<10> = Histogram::default();
            h.observe(bound, &LATENCY_BUCKETS_US);
            assert_eq!(
                h.buckets[i].load(Relaxed),
                1,
                "value {bound} missed bucket {i}"
            );
            let h: Histogram<10> = Histogram::default();
            h.observe(bound + 1, &LATENCY_BUCKETS_US);
            assert_eq!(
                h.buckets[i].load(Relaxed),
                0,
                "value {} leaked into bucket {i}",
                bound + 1
            );
        }
        // Zero lands in every bucket (cumulative) including the first.
        let h: Histogram<10> = Histogram::default();
        h.observe(0, &LATENCY_BUCKETS_US);
        for (i, b) in h.buckets.iter().enumerate() {
            assert_eq!(b.load(Relaxed), 1, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_on_known_distributions() {
        let h: Histogram<10> = Histogram::default();
        assert_eq!(h.quantile(0.5, &LATENCY_BUCKETS_US), None, "empty");

        // 100 observations of exactly 100us: every quantile is the 100us
        // bucket bound.
        for _ in 0..100 {
            h.observe(100, &LATENCY_BUCKETS_US);
        }
        assert_eq!(h.quantile(0.0, &LATENCY_BUCKETS_US), Some(100));
        assert_eq!(h.quantile(0.5, &LATENCY_BUCKETS_US), Some(100));
        assert_eq!(h.quantile(0.99, &LATENCY_BUCKETS_US), Some(100));

        // 90 fast + 10 slow: p50 stays fast, p99 reports the slow bucket.
        let h: Histogram<10> = Histogram::default();
        for _ in 0..90 {
            h.observe(40, &LATENCY_BUCKETS_US); // <= 50us bucket
        }
        for _ in 0..10 {
            h.observe(9_000, &LATENCY_BUCKETS_US); // <= 10ms bucket
        }
        assert_eq!(h.quantile(0.50, &LATENCY_BUCKETS_US), Some(50));
        assert_eq!(h.quantile(0.90, &LATENCY_BUCKETS_US), Some(50));
        assert_eq!(h.quantile(0.99, &LATENCY_BUCKETS_US), Some(10_000));

        // Observations above every bound saturate at the largest bound.
        let h: Histogram<10> = Histogram::default();
        h.observe(u64::MAX, &LATENCY_BUCKETS_US);
        assert_eq!(h.quantile(0.5, &LATENCY_BUCKETS_US), Some(250_000));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h: Histogram<7> = Histogram::default();
        h.observe(u64::MAX, &BATCH_BUCKETS);
        h.observe(u64::MAX, &BATCH_BUCKETS);
        h.observe(7, &BATCH_BUCKETS);
        // Count keeps exact track; the sum pins at the ceiling rather
        // than wrapping to a small number.
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn render_exposes_all_families() {
        let m = Metrics::new();
        m.recommend_requests.fetch_add(2, Relaxed);
        m.record_status(200);
        m.record_status(400);
        m.record_status(500);
        m.cache_hits.fetch_add(1, Relaxed);
        m.cache_misses.fetch_add(3, Relaxed);
        m.shed_total.fetch_add(5, Relaxed);
        m.expired_total.fetch_add(2, Relaxed);
        m.degraded_total.fetch_add(1, Relaxed);
        m.queue_depth.store(9, Relaxed);
        m.latency_us.observe(120, &LATENCY_BUCKETS_US);
        m.retrieval_fallback_total.fetch_add(4, Relaxed);
        m.candidate_size.observe(300, &CANDIDATE_BUCKETS);
        m.last_reload_unix.store(1_700_000_000, Relaxed);
        m.stamp_snapshot(StorageEncoding::I8, 4096, true);
        let text = m.render(7, 42);
        assert!(text.contains("st_serve_requests_total{route=\"recommend\"} 2"));
        assert!(text.contains("st_serve_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("st_serve_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("st_serve_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("st_serve_cache_hit_rate 0.25"));
        assert!(text.contains("st_serve_model_epoch 7"));
        assert!(text.contains("st_serve_cache_entries 42"));
        assert!(text.contains("st_serve_shed_total 5"));
        assert!(text.contains("st_serve_expired_total 2"));
        assert!(text.contains("st_serve_degraded_total 1"));
        assert!(text.contains("st_serve_injected_failures_total 0"));
        assert!(text.contains("st_serve_queue_depth 9"));
        assert!(text.contains("st_serve_request_latency_us_p50 250"));
        assert!(text.contains("st_serve_request_latency_us_p99 250"));
        assert!(text.contains("st_serve_request_latency_us_count 1"));
        assert!(text.contains("st_serve_retrieval_fallback_total 4"));
        assert!(text.contains("st_serve_last_reload_timestamp_seconds 1700000000"));
        assert!(text.contains("st_serve_candidate_set_size_bucket{le=\"512\"} 1"));
        assert!(text.contains("st_serve_candidate_set_size_count 1"));
        assert!(text.contains("st_serve_snapshot_bytes 4096"));
        assert!(text.contains("st_serve_snapshot_format{format=\"int8\"} 1"));
        assert!(text.contains("st_serve_snapshot_format{format=\"f32\"} 0"));
        assert!(text.contains("st_serve_snapshot_format{format=\"f16\"} 0"));
        assert!(text.contains("st_serve_snapshot_mapped 1"));
    }
}
