//! # st-serve
//!
//! The online serving subsystem: turns the batch-trained ST-TransRec
//! checkpoints and the batched/sharded scoring kernels into a live
//! recommendation service — the path a visitor arriving in a new city
//! actually hits.
//!
//! Four layers, std-only (no external dependencies, matching the
//! offline build environment):
//!
//! - [`http`] — a minimal HTTP/1.1 server substrate over
//!   `std::net::TcpListener`: request parsing with hard limits,
//!   keep-alive, hand-rolled JSON responses.
//! - [`batcher`] — a micro-batcher that coalesces concurrent
//!   `/recommend` requests arriving within a short window into one
//!   batched forward pass, so serving throughput rides the batched
//!   kernels instead of paying one tape per request.
//! - [`lru`] — an LRU result cache keyed by
//!   `(user, city, k, model_epoch)`; the epoch component makes cache
//!   invalidation on hot-reload free.
//! - [`snapshot`] — checkpoint hot-reload: the model lives behind an
//!   `Arc`-swapped [`snapshot::ModelSnapshot`], so `POST /admin/reload`
//!   (or the checkpoint-mtime watcher) swaps a new model in without
//!   dropping in-flight requests.
//!
//! [`server`] wires the layers into a [`server::Server`] with a fixed
//! worker pool and a `/metrics` endpoint (request counts, cache hit
//! rate, batch-size distribution, latency histograms). [`client`] is a
//! tiny blocking HTTP client used by the end-to-end tests and the
//! `st-bench` load generator.
//!
//! Large catalogs are served through two-stage retrieval: each model
//! generation carries a `st_transrec_core::RetrievalIndex` (geo-grid +
//! IVF candidate generation, built at snapshot-capture time before the
//! swap lock), so a `/recommend` miss re-ranks a bounded candidate set
//! instead of the whole city. Small catalogs and unindexed cities fall
//! back to the exact sharded scan; the fallback count and candidate-set
//! sizes are exported on `/metrics`.
//!
//! Serving is overload-safe: the batcher queue is bounded (overflow is
//! shed with `429 Too Many Requests`), queued jobs carry deadlines
//! (expired work is dropped with `503` before scoring), and above a
//! configurable queue watermark requests fall back to possibly-stale
//! cached results marked `"degraded": true` instead of queueing.
//! [`fault`] provides the deterministic fault-injection hooks (latency
//! pads, forced scorer errors, queue freezes, seeded [`fault::FaultPlan`]
//! chaos schedules) that the chaos test suite and `loadgen --chaos` use
//! to prove those behaviors reproducibly.
//!
//! ```no_run
//! use std::sync::Arc;
//! use st_data::{synth, CityId, CrossingCitySplit};
//! use st_transrec_core::{ModelConfig, STTransRec};
//! use st_serve::server::{Engine, ServeConfig, Server};
//!
//! let (dataset, _) = synth::generate(&synth::SynthConfig::tiny());
//! let split = CrossingCitySplit::build(&dataset, CityId(1));
//! let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
//! model.fit(&dataset);
//!
//! let config = ServeConfig::default();
//! let engine = Engine::new(Arc::new(dataset), model, None, &config);
//! let server = Server::start(engine, &config).unwrap();
//! println!("serving on http://{}", server.local_addr());
//! server.wait();
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod fault;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod server;
pub mod snapshot;

pub use batcher::{BatchConfig, BatchReply, BatchRequest, MicroBatcher, PairScorer, SubmitError};
pub use client::{HttpClient, HttpResponse};
pub use fault::{ChaosPhase, FaultInjector, FaultPlan};
pub use lru::LruCache;
pub use metrics::Metrics;
pub use server::{render_recommend_body, Engine, ServeConfig, Server};
pub use snapshot::{ModelCell, ModelSnapshot, ReloadOutcome, Reloader};
