//! Arc-swapped model snapshots and checkpoint hot-reload.
//!
//! The serving model lives behind a [`ModelCell`]: readers clone an
//! `Arc<ModelSnapshot>` under a briefly held read lock and then score
//! against an immutable model with no lock held, so a reload never
//! blocks or drops in-flight requests — batches that grabbed the old
//! snapshot finish on it, later batches see the new one. Each swap bumps
//! a monotone `epoch`, which the result cache folds into its key: after
//! a reload every cached entry is unreachable immediately (invalidation
//! is free) and LRU pressure reclaims the slots.
//!
//! [`Reloader`] restores serving state from a checkpoint on disk,
//! dispatching on the container version: a v2 checkpoint is
//! memory-mapped and becomes a [`FrozenModel`] directly — no
//! [`STTransRec`] is built, no training state allocated, and table
//! bytes are paged in lazily as they are gathered — while a legacy v1
//! checkpoint takes the historical rebuild-and-restore path. A corrupt
//! or truncated checkpoint surfaces as `io::Error` *before* any swap
//! happens, so the old model keeps serving.

use st_data::{CrossingCitySplit, Dataset};
use st_tensor::StorageEncoding;
use st_transrec_core::ModelSnapshot as FrozenModel;
use st_transrec_core::{ModelConfig, RetrievalConfig, RetrievalIndex, STTransRec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;

/// One immutable generation of the serving model.
pub struct ModelSnapshot {
    /// The frozen parameters all of this generation's scoring runs
    /// through: the tape-free [`FrozenModel`] captured at swap time (or
    /// mapped straight from a v2 checkpoint), so the hot path never
    /// touches the autodiff tape.
    pub frozen: FrozenModel,
    /// Monotone generation number, starting at 1.
    pub epoch: u64,
    /// This generation's two-stage retrieval index, built from the
    /// frozen embeddings at capture time. `None` when the cell was
    /// created without retrieval — every query then falls back to the
    /// exact sharded scan.
    pub retrieval: Option<Arc<RetrievalIndex>>,
    /// Bytes backing this generation's parameters: the v2 container
    /// size when loaded from a checkpoint, else the resident table
    /// bytes of a live capture. Exported as `st_serve_snapshot_bytes`.
    pub snapshot_bytes: u64,
    /// True when the tables are served zero-copy out of a mapped file.
    pub mapped: bool,
}

impl ModelSnapshot {
    /// The embedding tables' storage encoding (f32 / f16 / int8),
    /// exported as the `st_serve_snapshot_format` gauge label.
    pub fn format(&self) -> StorageEncoding {
        self.frozen.encoding()
    }
}

/// What a verified reload actually put into service. Carries the
/// snapshot gauges alongside the epoch so callers that gate on a reload
/// — the `/admin/reload` endpoint, an online publisher, the router's
/// rolling-rollout driver — can assert the *expected format* landed,
/// not just that some epoch bump happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// Serving epoch after the swap.
    pub epoch: u64,
    /// Storage encoding of the generation now serving (f32 / f16 / int8).
    pub format: StorageEncoding,
    /// Bytes backing the new generation (container size for mapped v2
    /// loads, resident table bytes otherwise).
    pub snapshot_bytes: u64,
    /// True when the new generation serves zero-copy out of a mapped file.
    pub mapped: bool,
}

/// The atomically swappable current snapshot.
pub struct ModelCell {
    current: RwLock<Arc<ModelSnapshot>>,
    epoch: AtomicU64,
    /// Dataset + knobs needed to rebuild the retrieval index for each
    /// new generation; `None` disables retrieval for the cell's life.
    retrieval_ctx: Option<(Arc<Dataset>, RetrievalConfig)>,
}

impl ModelCell {
    fn capture(
        model: &STTransRec,
        epoch: u64,
        retrieval_ctx: &Option<(Arc<Dataset>, RetrievalConfig)>,
    ) -> Arc<ModelSnapshot> {
        let frozen = model.snapshot();
        Self::wrap(frozen, epoch, retrieval_ctx)
    }

    fn wrap(
        frozen: FrozenModel,
        epoch: u64,
        retrieval_ctx: &Option<(Arc<Dataset>, RetrievalConfig)>,
    ) -> Arc<ModelSnapshot> {
        let retrieval = retrieval_ctx
            .as_ref()
            .map(|(d, cfg)| Arc::new(RetrievalIndex::build(&frozen, d, cfg.clone())));
        let snapshot_bytes = frozen.table_bytes() as u64;
        let mapped = frozen.is_mapped();
        Arc::new(ModelSnapshot {
            frozen,
            epoch,
            retrieval,
            snapshot_bytes,
            mapped,
        })
    }

    /// Wraps `model` as epoch 1, with no retrieval index (every query
    /// scans the full catalog).
    pub fn new(model: STTransRec) -> Self {
        Self::build(model, None)
    }

    /// Wraps `model` as epoch 1 and builds a retrieval index for this
    /// and every future generation from `dataset` with `cfg`.
    pub fn with_retrieval(model: STTransRec, dataset: Arc<Dataset>, cfg: RetrievalConfig) -> Self {
        Self::build(model, Some((dataset, cfg)))
    }

    fn build(model: STTransRec, retrieval_ctx: Option<(Arc<Dataset>, RetrievalConfig)>) -> Self {
        let snapshot = Self::capture(&model, 1, &retrieval_ctx);
        Self {
            current: RwLock::new(snapshot),
            epoch: AtomicU64::new(1),
            retrieval_ctx,
        }
    }

    /// Wraps an already-frozen model as epoch 1 — the v2 startup path,
    /// which never materializes a training model. `snapshot_bytes`
    /// overrides the byte gauge as in [`ModelCell::swap_frozen`];
    /// `retrieval` enables index builds for this and every future
    /// generation.
    pub fn from_frozen(
        frozen: FrozenModel,
        snapshot_bytes: Option<u64>,
        retrieval: Option<(Arc<Dataset>, RetrievalConfig)>,
    ) -> Self {
        let mut snapshot = Self::wrap(frozen, 1, &retrieval);
        if let Some(bytes) = snapshot_bytes {
            Arc::get_mut(&mut snapshot)
                .expect("freshly wrapped snapshot is unshared")
                .snapshot_bytes = bytes;
        }
        Self {
            current: RwLock::new(snapshot),
            epoch: AtomicU64::new(1),
            retrieval_ctx: retrieval,
        }
    }

    /// The current snapshot. Cheap: one read-lock acquisition and an
    /// `Arc` clone; scoring happens after the lock is released.
    pub fn current(&self) -> Arc<ModelSnapshot> {
        self.current.read().expect("model cell poisoned").clone()
    }

    /// Current epoch without taking the snapshot lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically replaces the model, returning the new epoch. In-flight
    /// holders of the old `Arc` keep scoring against the old weights.
    pub fn swap(&self, model: STTransRec) -> u64 {
        self.swap_frozen(model.snapshot(), None)
    }

    /// Atomically publishes an already-frozen generation — the v2 mmap
    /// reload path, which never materializes an [`STTransRec`].
    /// `snapshot_bytes` overrides the reported byte gauge (the container
    /// file size for mapped loads); `None` reports the frozen tables'
    /// own storage bytes. The new generation's retrieval index (when
    /// the cell has one) is built *before* the write lock is taken, so
    /// readers are never blocked behind an index build.
    pub fn swap_frozen(&self, frozen: FrozenModel, snapshot_bytes: Option<u64>) -> u64 {
        let mut snapshot = Self::wrap(frozen, 0, &self.retrieval_ctx);
        if let Some(bytes) = snapshot_bytes {
            Arc::get_mut(&mut snapshot)
                .expect("freshly wrapped snapshot is unshared")
                .snapshot_bytes = bytes;
        }
        let mut guard = self.current.write().expect("model cell poisoned");
        let epoch = guard.epoch + 1;
        Arc::get_mut(&mut snapshot)
            .expect("freshly wrapped snapshot is unshared")
            .epoch = epoch;
        *guard = snapshot;
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

/// Rebuilds and restores models from a checkpoint file on demand.
pub struct Reloader {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    config: ModelConfig,
    path: PathBuf,
    /// Modification time of the last checkpoint we loaded (for the
    /// mtime watcher); `None` until the first load through this reloader.
    last_mtime: Mutex<Option<SystemTime>>,
}

impl Reloader {
    /// Creates a reloader for `path` with the architecture the server
    /// was launched with (a checkpoint can only restore into an
    /// identically shaped model).
    pub fn new(
        dataset: Arc<Dataset>,
        split: Arc<CrossingCitySplit>,
        config: ModelConfig,
        path: impl Into<PathBuf>,
    ) -> Self {
        Self {
            dataset,
            split,
            config,
            path: path.into(),
            last_mtime: Mutex::new(None),
        }
    }

    /// The checkpoint path being watched.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the checkpoint into a freshly built model (full training
    /// state — the migration/offline path; the serving reload goes
    /// through [`Reloader::load_frozen`] instead). Any failure —
    /// missing file, corrupt bytes, architecture mismatch — returns
    /// `Err` without touching the cell it would have been swapped into.
    pub fn load(&self) -> std::io::Result<STTransRec> {
        let mtime = std::fs::metadata(&self.path)
            .and_then(|m| m.modified())
            .ok();
        let file = std::fs::File::open(&self.path)?;
        let mut model = STTransRec::new(&self.dataset, &self.split, self.config.clone());
        model.restore(std::io::BufReader::new(file))?;
        *self.last_mtime.lock().expect("mtime lock poisoned") = mtime;
        Ok(model)
    }

    /// Loads the checkpoint as a frozen serving model, returning it with
    /// the byte count to report for the snapshot gauge. Dispatches on
    /// the container version: **v2** is memory-mapped and becomes a
    /// [`FrozenModel`] directly — O(header) validation, no training
    /// state, tables paged in on demand — while **v1** takes the legacy
    /// rebuild-and-restore path. Either way a bad checkpoint errors out
    /// before anything is swapped.
    pub fn load_frozen(&self) -> std::io::Result<(FrozenModel, u64)> {
        let mtime = std::fs::metadata(&self.path)
            .and_then(|m| m.modified())
            .ok();
        let version = st_tensor::checkpoint::snapshot_version(&self.path)?;
        let loaded = if version >= 2 {
            let mapped = st_tensor::map_params(&self.path)?;
            let frozen = FrozenModel::from_mapped(&mapped)?;
            // The checkpoint must describe the dataset this server was
            // launched with; a mismatched table would panic on the first
            // out-of-range gather (or silently truncate the catalog).
            if frozen.num_users() != self.dataset.num_users()
                || frozen.num_pois() != self.dataset.num_pois()
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint tables ({} users, {} pois) do not match the dataset ({}, {})",
                        frozen.num_users(),
                        frozen.num_pois(),
                        self.dataset.num_users(),
                        self.dataset.num_pois()
                    ),
                ));
            }
            (frozen, mapped.file_bytes() as u64)
        } else {
            let file = std::fs::File::open(&self.path)?;
            let mut model = STTransRec::new(&self.dataset, &self.split, self.config.clone());
            model.restore(std::io::BufReader::new(file))?;
            let frozen = model.snapshot();
            let bytes = frozen.table_bytes() as u64;
            (frozen, bytes)
        };
        *self.last_mtime.lock().expect("mtime lock poisoned") = mtime;
        Ok(loaded)
    }

    /// Loads and swaps in one step, returning the verified outcome: the
    /// new epoch plus the snapshot-format gauges of what is now serving.
    pub fn reload_into(&self, cell: &ModelCell) -> std::io::Result<ReloadOutcome> {
        let (frozen, bytes) = self.load_frozen()?;
        let format = frozen.encoding();
        let mapped = frozen.is_mapped();
        let epoch = cell.swap_frozen(frozen, Some(bytes));
        Ok(ReloadOutcome {
            epoch,
            format,
            snapshot_bytes: bytes,
            mapped,
        })
    }

    /// True when the checkpoint file's mtime differs from the last load
    /// (the mtime watcher's trigger). Unreadable metadata reads as
    /// "unchanged" so a transient stat failure does not force a reload.
    pub fn mtime_changed(&self) -> bool {
        let Ok(meta) = std::fs::metadata(&self.path) else {
            return false;
        };
        let Ok(mtime) = meta.modified() else {
            return false;
        };
        *self.last_mtime.lock().expect("mtime lock poisoned") != Some(mtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CityId;
    use st_data::UserId;
    use st_eval::Scorer;

    fn setup() -> (Arc<Dataset>, Arc<CrossingCitySplit>) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (Arc::new(d), Arc::new(split))
    }

    #[test]
    fn swap_bumps_epoch_and_old_arcs_survive() {
        let (d, s) = setup();
        let cell = ModelCell::new(STTransRec::new(&d, &s, ModelConfig::test_small()));
        assert_eq!(cell.epoch(), 1);
        let old = cell.current();
        let epoch = cell.swap(STTransRec::new(&d, &s, ModelConfig::test_small()));
        assert_eq!(epoch, 2);
        assert_eq!(cell.epoch(), 2);
        assert_eq!(old.epoch, 1);
        // The old snapshot still scores after the swap.
        let pois = d.pois_in_city(s.target_city);
        let _ = old.frozen.score_batch(UserId(0), pois);
    }

    #[test]
    fn frozen_snapshot_scores_bitwise_like_its_model() {
        let (d, s) = setup();
        let mut model = STTransRec::new(&d, &s, ModelConfig::test_small());
        model.train_epoch(&d);
        let pois = d.pois_in_city(s.target_city);
        let want = model.score_batch(UserId(0), pois);
        let cell = ModelCell::new(model);
        let snap = cell.current();
        assert_eq!(snap.frozen.score_batch(UserId(0), pois), want);
        assert_eq!(snap.format(), st_tensor::StorageEncoding::F32);
        assert!(!snap.mapped);
        assert!(snap.snapshot_bytes > 0);
    }

    #[test]
    fn with_retrieval_builds_an_index_per_generation() {
        let (d, s) = setup();
        let cfg = RetrievalConfig {
            min_catalog: 1,
            ..RetrievalConfig::default()
        };
        let cell = ModelCell::with_retrieval(
            STTransRec::new(&d, &s, ModelConfig::test_small()),
            d.clone(),
            cfg,
        );
        let first = cell.current();
        let idx1 = first.retrieval.as_ref().expect("index built at epoch 1");
        assert!(idx1.covers(s.target_city));
        cell.swap(STTransRec::new(&d, &s, ModelConfig::test_small()));
        let second = cell.current();
        let idx2 = second.retrieval.as_ref().expect("index rebuilt on swap");
        assert!(!Arc::ptr_eq(idx1, idx2), "swap must rebuild the index");
        // Cells created without retrieval stay index-free.
        let plain = ModelCell::new(STTransRec::new(&d, &s, ModelConfig::test_small()));
        assert!(plain.current().retrieval.is_none());
    }

    #[test]
    fn reloader_rejects_corrupt_checkpoint_without_swapping() {
        let (d, s) = setup();
        let dir = std::env::temp_dir().join(format!("st-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");

        let mut trained = STTransRec::new(&d, &s, ModelConfig::test_small());
        trained.train_epoch(&d);
        let mut bytes = Vec::new();
        trained.save(&mut bytes).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        let cell = ModelCell::new(STTransRec::new(&d, &s, ModelConfig::test_small()));
        let reloader = Reloader::new(d.clone(), s.clone(), ModelConfig::test_small(), &path);
        let outcome = reloader.reload_into(&cell).unwrap();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.format, st_tensor::StorageEncoding::F32);
        assert!(!outcome.mapped, "v1 checkpoints rebuild in memory");

        // Corrupt the file: reload fails, epoch unchanged.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(reloader.reload_into(&cell).is_err());
        assert_eq!(cell.epoch(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_checkpoints_reload_mapped_and_score_like_the_source_model() {
        use st_tensor::StorageEncoding;
        let (d, s) = setup();
        let dir = std::env::temp_dir().join(format!("st-serve-v2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");

        let mut trained = STTransRec::new(&d, &s, ModelConfig::test_small());
        trained.train_epoch(&d);
        let pois = d.pois_in_city(s.target_city);
        let want = trained.score_batch(UserId(0), pois);

        let cell = ModelCell::new(STTransRec::new(&d, &s, ModelConfig::test_small()));
        let reloader = Reloader::new(d.clone(), s.clone(), ModelConfig::test_small(), &path);

        // f32 v2: mapped zero-copy reload, bit-identical scores.
        st_tensor::save_params_atomic(trained.params(), &path).unwrap();
        let outcome = reloader.reload_into(&cell).unwrap();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.format, StorageEncoding::F32);
        assert!(outcome.mapped, "outcome must report the mapped load");
        let snap = cell.current();
        assert!(snap.mapped, "v2 reload must map, not parse");
        assert_eq!(snap.format(), StorageEncoding::F32);
        assert_eq!(snap.frozen.score_batch(UserId(0), pois), want);
        let file_len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(snap.snapshot_bytes, file_len);

        // int8 v2: mapped, quantized format surfaced, scores close.
        st_tensor::save_params_atomic_as(trained.params(), &path, StorageEncoding::I8).unwrap();
        let outcome = reloader.reload_into(&cell).unwrap();
        assert_eq!(outcome.epoch, 3);
        assert_eq!(
            outcome.format,
            StorageEncoding::I8,
            "reload-verify must surface the quantized format"
        );
        let snap = cell.current();
        assert_eq!(snap.format(), StorageEncoding::I8);
        assert!(snap.mapped);
        assert!(snap.snapshot_bytes < file_len, "int8 container must shrink");
        for (a, b) in snap.frozen.score_batch(UserId(0), pois).iter().zip(&want) {
            assert!((a - b).abs() < 0.05, "int8 scores drifted: {a} vs {b}");
        }

        // A checkpoint for a different dataset shape is rejected cleanly.
        let cfg2 = SynthConfig {
            users: SynthConfig::tiny().users + 3,
            ..SynthConfig::tiny()
        };
        let (d2, _) = generate(&cfg2);
        let s2 = CrossingCitySplit::build(&d2, CityId(cfg2.target_city as u16));
        let other = STTransRec::new(&d2, &s2, ModelConfig::test_small());
        st_tensor::save_params_atomic(other.params(), &path).unwrap();
        assert!(reloader.reload_into(&cell).is_err());
        assert_eq!(cell.epoch(), 3, "failed reload must not swap");

        std::fs::remove_dir_all(&dir).ok();
    }
}
