//! A slab-backed LRU cache for serving results.
//!
//! Entries live in a `Vec` slab threaded as a doubly-linked list
//! (most-recently-used at the head) with a `HashMap` from key to slot,
//! so `get`/`insert` are O(1) with no per-entry allocation after the
//! slab fills. The serving layer keys entries by
//! `(user, city, k, model_epoch)`: bumping the model epoch on hot-reload
//! makes every stale entry unreachable immediately — invalidation is
//! free — and normal LRU pressure evicts the dead entries over time.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel for "no slot".
const NONE: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. Capacity 0 is
    /// a valid always-miss cache (caching disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NONE;
        self.slots[slot].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Looks up `key`, marking the entry most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        if slot != self.head {
            self.unlink(slot);
            self.link_front(slot);
        }
        Some(&self.slots[slot].value)
    }

    /// Inserts or replaces `key`, returning the evicted LRU entry when
    /// the cache was full (or the replaced value under the same key).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        if let Some(&slot) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.slots[slot].value, value);
            if slot != self.head {
                self.unlink(slot);
                self.link_front(slot);
            }
            return Some((key, old));
        }
        if self.map.len() == self.capacity {
            // Full: reuse the LRU slot in place.
            let lru = self.tail;
            self.unlink(lru);
            let old = std::mem::replace(
                &mut self.slots[lru],
                Slot {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.link_front(lru);
            return Some((old.key, old.value));
        }
        self.slots.push(Slot {
            key: key.clone(),
            value,
            prev: NONE,
            next: NONE,
        });
        let slot = self.slots.len() - 1;
        self.map.insert(key, slot);
        self.link_front(slot);
        None
    }

    /// Drops every entry, keeping the map allocation.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NONE;
        self.tail = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&2), Some(&"b"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.get(&1); // 2 is now LRU
        let evicted = c.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn reinsert_replaces_and_refreshes() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.insert(1, "a2"), Some((1, "a"))); // 1 refreshed, 2 is LRU
        c.insert(3, "c");
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&"a2"));
    }

    #[test]
    fn capacity_zero_never_stores() {
        let mut c = LruCache::new(0);
        assert!(c.insert(1, "a").is_some());
        assert!(c.get(&1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn churn_keeps_len_bounded_and_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000usize {
            c.insert(i % 13, i);
            assert!(c.len() <= 8);
            // The most recent insert must always be retrievable.
            assert_eq!(c.get(&(i % 13)), Some(&i));
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.capacity(), 8);
        c.clear();
        assert!(c.is_empty());
    }
}

/// Differential proptests against a naive oracle, driving the cache the
/// way serving does: epoch-keyed entries with the epoch bumping on
/// hot-reload. The slab + linked-list implementation must be observably
/// identical to a `BTreeMap` plus an explicit recency list — including
/// which entry every insert evicts — and an entry written under an old
/// epoch must never come back from a current-epoch lookup.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Serving-style cache key: `(request id, model epoch)`.
    type Key = (u8, u64);

    /// The obviously-correct model: a `BTreeMap` for contents and a
    /// recency `Vec` (front = most recently used) for eviction order.
    struct Oracle {
        cap: usize,
        map: BTreeMap<Key, u64>,
        recency: Vec<Key>,
    }

    impl Oracle {
        fn new(cap: usize) -> Self {
            Self {
                cap,
                map: BTreeMap::new(),
                recency: Vec::new(),
            }
        }

        fn touch(&mut self, key: Key) {
            self.recency.retain(|&k| k != key);
            self.recency.insert(0, key);
        }

        fn get(&mut self, key: &Key) -> Option<u64> {
            let value = *self.map.get(key)?;
            self.touch(*key);
            Some(value)
        }

        /// Mirrors [`LruCache::insert`]'s return exactly: the bounced
        /// pair at capacity 0, the replaced value on a re-insert, or the
        /// evicted LRU entry when full.
        fn insert(&mut self, key: Key, value: u64) -> Option<(Key, u64)> {
            if self.cap == 0 {
                return Some((key, value));
            }
            if let Some(old) = self.map.insert(key, value) {
                self.touch(key);
                return Some((key, old));
            }
            self.touch(key);
            if self.map.len() > self.cap {
                let lru = self.recency.pop().expect("oracle recency tracked");
                let old = self.map.remove(&lru).expect("oracle map tracked");
                return Some((lru, old));
            }
            None
        }
    }

    /// Op stream: `(0, id)` = insert under the current epoch, `(1, id)` =
    /// get under the current epoch, `(2, _)` = epoch bump (hot-reload).
    /// Small id space and capacities force heavy collision and eviction.
    fn ops() -> impl Strategy<Value = (usize, Vec<(u8, u8)>)> {
        (
            0usize..6,
            proptest::collection::vec((0u8..3, 0u8..6), 1..250),
        )
    }

    proptest! {
        #[test]
        fn lru_is_observably_identical_to_the_oracle((cap, ops) in ops()) {
            let mut cache = LruCache::new(cap);
            let mut oracle = Oracle::new(cap);
            let mut epoch = 1u64;
            for (kind, id) in ops {
                match kind {
                    0 => {
                        // Stamp the value with the writing epoch so a
                        // stale hit is detectable from the value alone.
                        let evicted = cache.insert((id, epoch), epoch);
                        let expected = oracle.insert((id, epoch), epoch);
                        prop_assert_eq!(evicted, expected, "evictions diverged");
                    }
                    1 => {
                        let got = cache.get(&(id, epoch)).copied();
                        prop_assert_eq!(got, oracle.get(&(id, epoch)));
                        if let Some(stamp) = got {
                            prop_assert_eq!(stamp, epoch, "stale epoch served as fresh");
                        }
                    }
                    _ => epoch += 1, // hot-reload: old entries now stale
                }
                prop_assert!(cache.len() <= cap, "capacity exceeded: {} > {cap}", cache.len());
                prop_assert_eq!(cache.len(), oracle.map.len());
                prop_assert_eq!(cache.is_empty(), oracle.map.is_empty());
            }
        }

        #[test]
        fn entries_from_before_a_reload_never_hit_after_it(
            ids in proptest::collection::vec(0u8..8, 1..32),
            bumps in 1u64..4,
        ) {
            let mut cache = LruCache::new(64);
            for &id in &ids {
                cache.insert((id, 1u64), 1u64);
            }
            let epoch = 1 + bumps;
            for &id in &ids {
                // Fresh-epoch lookups miss everything written before the
                // reload; the stale keys are unreachable, not returned.
                prop_assert_eq!(cache.get(&(id, epoch)), None);
            }
            for &id in &ids {
                prop_assert_eq!(cache.get(&(id, 1u64)).copied(), Some(1u64));
            }
        }
    }
}
