//! A minimal blocking HTTP/1.1 client over `TcpStream`.
//!
//! Exists for the load generator and the end-to-end tests: it reuses one
//! keep-alive connection across requests (the access pattern the server
//! optimizes for) and parses just the subset of HTTP the server emits —
//! status line, headers, `Content-Length` body.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body as UTF-8 (every server response is text).
    pub body: String,
}

impl HttpResponse {
    /// First header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` with a generous request timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
        })
    }

    /// Wraps an already-connected stream, keeping whatever timeouts the
    /// caller configured (the router uses short probe timeouts).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
        })
    }

    /// Issues one request on the shared connection and reads the reply.
    pub fn request(&mut self, method: &str, path: &str) -> std::io::Result<HttpResponse> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: st-serve\r\n\r\n"
        )?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path)
    }

    /// `POST path` with an empty body.
    pub fn post(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path)
    }
}

/// One-shot convenience: connect, GET, disconnect.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    HttpClient::connect(addr)?.get(path)
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<HttpResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(invalid("connection closed before response"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("EOF inside response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
            }
            headers.push((name, value));
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("non-UTF8 body"))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
