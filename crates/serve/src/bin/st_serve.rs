//! `st-serve` — the online recommendation server.
//!
//! ```text
//! # serve a trained checkpoint over a dataset
//! st-serve --data checkins.tsv --checkpoint model.bin --addr 127.0.0.1:8080
//!
//! # generate a self-contained demo (tiny synthetic dataset + trained
//! # checkpoint) to try the server without real data
//! st-serve --gen-demo demo/
//! st-serve --data demo/checkins.tsv --checkpoint demo/model.bin
//! curl 'http://127.0.0.1:8080/recommend?user=0&city=1&k=5'
//! ```
//!
//! The model architecture must match the checkpoint: pick it with
//! `--config test-small|foursquare|yelp` (default `test-small`, which is
//! what `--gen-demo` trains) and optionally `--embedding-dim`.

use st_data::{synth, CityId, CrossingCitySplit, Dataset};
use st_serve::server::{Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_serve::BatchConfig;
use st_tensor::StorageEncoding;
use st_transrec_core::{ModelConfig, RetrievalConfig, STTransRec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    data: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    gen_demo: Option<PathBuf>,
    addr: String,
    target_city: u16,
    workers: usize,
    batch_window_us: u64,
    max_batch: usize,
    queue_capacity: usize,
    deadline_ms: u64,
    degrade_watermark: usize,
    cache_capacity: usize,
    watch_interval_ms: u64,
    config: String,
    embedding_dim: Option<usize>,
    demo_epochs: usize,
    snapshot_format: StorageEncoding,
    max_candidates: usize,
    nprobe: usize,
    grid_rings: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            data: None,
            checkpoint: None,
            gen_demo: None,
            addr: "127.0.0.1:8080".into(),
            target_city: 1,
            workers: 4,
            batch_window_us: 500,
            max_batch: 64,
            queue_capacity: 4096,
            deadline_ms: 0,
            degrade_watermark: 0,
            cache_capacity: 4096,
            watch_interval_ms: 0,
            config: "test-small".into(),
            embedding_dim: None,
            demo_epochs: 1,
            snapshot_format: StorageEncoding::F32,
            max_candidates: RetrievalConfig::default().max_candidates,
            nprobe: RetrievalConfig::default().nprobe,
            grid_rings: RetrievalConfig::default().grid_rings,
        }
    }
}

const USAGE: &str = "st-serve: online crossing-city POI recommendation server

USAGE:
  st-serve --data FILE --checkpoint FILE [OPTIONS]
  st-serve --gen-demo DIR [--demo-epochs N]

OPTIONS:
  --data FILE             dataset in the st-data text format
  --checkpoint FILE       model checkpoint (v2 containers are served
                          memory-mapped; legacy v1 is parsed)
  --addr HOST:PORT        bind address      [default: 127.0.0.1:8080]
  --target-city ID        held-out target city id          [default: 1]
  --workers N             HTTP worker threads              [default: 4]
  --batch-window-us U     micro-batch coalescing window  [default: 500]
  --max-batch N           max requests per forward pass   [default: 64]
  --queue-capacity N      batcher queue bound; overflow sheds with 429
                          (0 = unbounded)               [default: 4096]
  --deadline-ms MS        queued-request deadline; expired jobs get 503
                          (0 = off)                        [default: 0]
  --degrade-watermark N   queue depth above which requests fall back to
                          stale cached results (0 = off)   [default: 0]
  --cache-capacity N      LRU result-cache entries      [default: 4096]
  --max-candidates N      two-stage retrieval candidate budget; queries
                          re-rank at most N candidates instead of the
                          full city catalog (0 = always exact scan)
                                                        [default: 4096]
  --nprobe N              IVF inverted lists probed per query
                                                           [default: 8]
  --grid-rings N          geo-grid ring radius around the query anchor
                                                           [default: 2]
  --watch-interval-ms MS  checkpoint mtime watcher (0=off) [default: 0]
  --config NAME           test-small | foursquare | yelp
  --embedding-dim D       override the preset's embedding size
  --gen-demo DIR          write DIR/checkins.tsv + DIR/model.bin and exit
  --demo-epochs N         training epochs for --gen-demo   [default: 1]
  --snapshot-format F     demo checkpoint encoding: f32 | f16 | int8
                                                         [default: f32]
  --help                  print this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match flag.as_str() {
            "--data" => args.data = Some(PathBuf::from(value("--data"))),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--gen-demo" => args.gen_demo = Some(PathBuf::from(value("--gen-demo"))),
            "--addr" => args.addr = value("--addr"),
            "--target-city" => {
                args.target_city = value("--target-city")
                    .parse()
                    .unwrap_or_else(|_| fail("--target-city must be an integer"))
            }
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers must be an integer"))
            }
            "--batch-window-us" => {
                args.batch_window_us = value("--batch-window-us")
                    .parse()
                    .unwrap_or_else(|_| fail("--batch-window-us must be an integer"))
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-batch must be an integer"))
            }
            "--queue-capacity" => {
                args.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue-capacity must be an integer"))
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--deadline-ms must be an integer"))
            }
            "--degrade-watermark" => {
                args.degrade_watermark = value("--degrade-watermark")
                    .parse()
                    .unwrap_or_else(|_| fail("--degrade-watermark must be an integer"))
            }
            "--cache-capacity" => {
                args.cache_capacity = value("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache-capacity must be an integer"))
            }
            "--max-candidates" => {
                args.max_candidates = value("--max-candidates")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-candidates must be an integer"))
            }
            "--nprobe" => {
                args.nprobe = value("--nprobe")
                    .parse()
                    .unwrap_or_else(|_| fail("--nprobe must be an integer"))
            }
            "--grid-rings" => {
                args.grid_rings = value("--grid-rings")
                    .parse()
                    .unwrap_or_else(|_| fail("--grid-rings must be an integer"))
            }
            "--watch-interval-ms" => {
                args.watch_interval_ms = value("--watch-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--watch-interval-ms must be an integer"))
            }
            "--config" => args.config = value("--config"),
            "--embedding-dim" => {
                args.embedding_dim = Some(
                    value("--embedding-dim")
                        .parse()
                        .unwrap_or_else(|_| fail("--embedding-dim must be an integer")),
                )
            }
            "--demo-epochs" => {
                args.demo_epochs = value("--demo-epochs")
                    .parse()
                    .unwrap_or_else(|_| fail("--demo-epochs must be an integer"))
            }
            "--snapshot-format" => {
                args.snapshot_format = value("--snapshot-format")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn model_config(args: &Args) -> ModelConfig {
    let mut config = match args.config.as_str() {
        "test-small" => ModelConfig::test_small(),
        "foursquare" => ModelConfig::foursquare(),
        "yelp" => ModelConfig::yelp(),
        other => fail(&format!(
            "unknown --config {other:?} (expected test-small, foursquare, or yelp)"
        )),
    };
    if let Some(dim) = args.embedding_dim {
        config = config.with_embedding_dim(dim);
    }
    config
}

/// Writes a runnable demo: tiny synthetic dataset + trained checkpoint.
fn gen_demo(dir: &PathBuf, epochs: usize, format: StorageEncoding) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let synth_config = synth::SynthConfig::tiny();
    let (dataset, _) = synth::generate(&synth_config);
    let data_path = dir.join("checkins.tsv");
    st_data::write_dataset(&dataset, std::fs::File::create(&data_path)?)?;
    // Train on the dataset as `--data` will reload it: the text format
    // rebuilds the vocabulary from what it stores, so model shapes must
    // come from the round-tripped dataset, not the in-memory one.
    let dataset = st_data::read_dataset(std::io::BufReader::new(std::fs::File::open(&data_path)?))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;

    let split = CrossingCitySplit::build(&dataset, CityId(synth_config.target_city as u16));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    eprintln!("training demo model ({epochs} epochs)...");
    for _ in 0..epochs {
        model.train_epoch(&dataset);
    }
    let ckpt_path = dir.join("model.bin");
    st_tensor::save_params_atomic_as(model.params(), &ckpt_path, format)?;

    eprintln!(
        "wrote {} and {}\nserve it with:\n  st-serve --data {} --checkpoint {} --target-city {}",
        data_path.display(),
        ckpt_path.display(),
        data_path.display(),
        ckpt_path.display(),
        synth_config.target_city,
    );
    Ok(())
}

fn load_dataset(path: &PathBuf) -> Dataset {
    let file = std::fs::File::open(path)
        .unwrap_or_else(|e| fail(&format!("cannot open {}: {e}", path.display())));
    st_data::read_dataset(std::io::BufReader::new(file))
        .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())))
}

fn main() {
    let args = parse_args();

    if let Some(dir) = &args.gen_demo {
        gen_demo(dir, args.demo_epochs.max(1), args.snapshot_format)
            .unwrap_or_else(|e| fail(&format!("demo generation failed: {e}")));
        return;
    }

    let Some(data_path) = &args.data else {
        fail("--data is required (or use --gen-demo)");
    };
    let Some(ckpt_path) = &args.checkpoint else {
        fail("--checkpoint is required (or use --gen-demo)");
    };

    let dataset = Arc::new(load_dataset(data_path));
    let target = CityId(args.target_city);
    if (target.0 as usize) >= dataset.cities().len() {
        fail(&format!(
            "--target-city {} out of range: dataset has {} cities",
            target.0,
            dataset.cities().len()
        ));
    }
    if dataset.cities().len() < 2 {
        fail("dataset needs at least two cities (one source, one target)");
    }
    let split = Arc::new(CrossingCitySplit::build(&dataset, target));
    let config = model_config(&args);

    let reloader = Reloader::new(dataset.clone(), split.clone(), config.clone(), ckpt_path);
    eprintln!("loading checkpoint {}...", ckpt_path.display());
    // v2 containers are memory-mapped (zero-copy, no training state);
    // v1 falls back to rebuild-and-restore inside `load_frozen`.
    let (frozen, snapshot_bytes) = reloader
        .load_frozen()
        .unwrap_or_else(|e| fail(&format!("cannot load checkpoint: {e}")));
    let snapshot_format = frozen.encoding();
    let snapshot_mapped = frozen.is_mapped();

    let serve_config = ServeConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        batch: BatchConfig {
            window: Duration::from_micros(args.batch_window_us),
            max_batch: args.max_batch.max(1),
            queue_capacity: args.queue_capacity,
            deadline: Duration::from_millis(args.deadline_ms),
            ..BatchConfig::default()
        },
        cache_capacity: args.cache_capacity,
        watch_interval: (args.watch_interval_ms > 0)
            .then(|| Duration::from_millis(args.watch_interval_ms)),
        degrade_watermark: args.degrade_watermark,
        retrieval: (args.max_candidates > 0).then(|| RetrievalConfig {
            max_candidates: args.max_candidates,
            nprobe: args.nprobe.max(1),
            grid_rings: args.grid_rings,
            ..RetrievalConfig::default()
        }),
        ..ServeConfig::default()
    };
    let engine = Engine::new_frozen(
        dataset.clone(),
        frozen,
        snapshot_bytes,
        Some(reloader),
        &serve_config,
    );
    let server = Server::start(engine, &serve_config)
        .unwrap_or_else(|e| fail(&format!("cannot bind {}: {e}", args.addr)));

    eprintln!(
        "st-serve listening on http://{} ({} users, {} POIs, {} cities, target city {})",
        server.local_addr(),
        dataset.num_users(),
        dataset.num_pois(),
        dataset.cities().len(),
        target.0,
    );
    eprintln!(
        "snapshot: {snapshot_format} encoding, {snapshot_bytes} bytes{}",
        if snapshot_mapped {
            ", memory-mapped"
        } else {
            ", in-memory"
        },
    );
    eprintln!(
        "routes: GET /recommend?user=U&city=C&k=K | GET /healthz | GET /metrics | POST /admin/reload"
    );
    server.wait();
}
