//! The HTTP serving engine: routing, worker pool, cache, and reload.
//!
//! Four routes:
//!
//! - `GET /recommend?user=U&city=C&k=K` — top-k POIs for a user in a
//!   city, answered from the LRU result cache or the micro-batcher.
//! - `GET /healthz` — liveness plus the current model epoch.
//! - `GET /metrics` — plain-text counters and histograms.
//! - `POST /admin/reload` — checkpoint hot-reload; failure keeps the
//!   old model and reports `500`.
//!
//! A fixed pool of worker threads pulls accepted connections off a
//! channel and speaks keep-alive HTTP/1.1; malformed requests get `400`
//! and the connection is closed. Responses carry `X-Cache: HIT|MISS`
//! (or `STALE` for degraded answers) and `X-Model-Epoch` headers so
//! clients (and the load generator) can see cache and reload behaviour
//! without parsing bodies.
//!
//! Overload handling layers admission → deadline → degradation: a full
//! batcher queue sheds with `429` + `Retry-After`; jobs that age out in
//! the queue get `503 deadline-exceeded`; and above
//! [`ServeConfig::degrade_watermark`] queued jobs, requests whose
//! `(user, city, k)` exists in the epoch-agnostic stale cache are
//! answered from it immediately — marked `"degraded": true` — instead of
//! joining the queue.

use crate::batcher::{BatchConfig, BatchRequest, MicroBatcher, SubmitError};
use crate::fault::FaultInjector;
use crate::http::{read_request, ParseError, Request, Response};
use crate::lru::LruCache;
use crate::metrics::{Metrics, LATENCY_BUCKETS_US};
use crate::snapshot::{ModelCell, ReloadOutcome, Reloader};
use st_data::{CityId, Dataset, UserId};
use st_transrec_core::ModelSnapshot as FrozenModel;
use st_transrec_core::{InferCtx, Recommendation, RetrievalConfig, STTransRec};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Cache key: a result is only reusable for the exact same question
/// answered by the exact same model generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    user: UserId,
    city: CityId,
    k: usize,
    epoch: u64,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// HTTP worker threads.
    pub workers: usize,
    /// Micro-batching window and batch cap.
    pub batch: BatchConfig,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Poll interval for the checkpoint-mtime watcher; `None` disables
    /// the watcher (reloads happen only via `POST /admin/reload`).
    pub watch_interval: Option<Duration>,
    /// Keep-alive idle timeout per connection.
    pub idle_timeout: Duration,
    /// Default `k` when the query omits it.
    pub default_k: usize,
    /// Largest accepted `k`.
    pub max_k: usize,
    /// Queue depth at which requests degrade to stale cached results
    /// instead of queueing (0 disables degradation).
    pub degrade_watermark: usize,
    /// Two-stage retrieval knobs; `None` disables candidate generation
    /// entirely (every request re-ranks the full city catalog). With the
    /// default config, catalogs under `min_catalog` still scan exactly —
    /// the index only engages where it pays.
    pub retrieval: Option<RetrievalConfig>,
    /// Fault-injection hooks for chaos testing; `None` in production.
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            batch: BatchConfig::default(),
            cache_capacity: 4096,
            watch_interval: None,
            idle_timeout: Duration::from_secs(5),
            default_k: 10,
            max_k: 1000,
            degrade_watermark: 0,
            retrieval: Some(RetrievalConfig::default()),
            fault: None,
        }
    }
}

/// Key of the epoch-agnostic stale cache backing degraded serving: any
/// generation's answer to the same question is better than queueing
/// behind an overloaded batcher.
type StaleKey = (UserId, CityId, usize);

/// Everything the request handlers share.
pub struct Engine {
    dataset: Arc<Dataset>,
    cell: Arc<ModelCell>,
    reloader: Option<Reloader>,
    cache: Mutex<LruCache<CacheKey, Arc<str>>>,
    /// Last known answer per `(user, city, k)` regardless of epoch,
    /// tagged with the epoch that produced it; only consulted above the
    /// degradation watermark.
    stale: Mutex<LruCache<StaleKey, (u64, Arc<str>)>>,
    metrics: Arc<Metrics>,
    batcher: MicroBatcher,
    default_k: usize,
    max_k: usize,
    degrade_watermark: usize,
}

/// Seconds since the Unix epoch; 0 if the clock reads before 1970.
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Engine {
    /// Builds an engine around an already loaded model. `reloader` is
    /// `None` when no checkpoint path is configured (reload disabled).
    pub fn new(
        dataset: Arc<Dataset>,
        model: STTransRec,
        reloader: Option<Reloader>,
        config: &ServeConfig,
    ) -> Arc<Self> {
        let cell = Arc::new(match config.retrieval.clone() {
            Some(cfg) => ModelCell::with_retrieval(model, dataset.clone(), cfg),
            None => ModelCell::new(model),
        });
        Self::from_cell(dataset, cell, reloader, config)
    }

    /// Builds an engine straight from a frozen generation — the v2
    /// startup path ([`Reloader::load_frozen`]), which serves out of the
    /// mapped checkpoint without ever materializing a training model.
    /// `snapshot_bytes` is the container file size reported by the
    /// snapshot gauges.
    pub fn new_frozen(
        dataset: Arc<Dataset>,
        frozen: FrozenModel,
        snapshot_bytes: u64,
        reloader: Option<Reloader>,
        config: &ServeConfig,
    ) -> Arc<Self> {
        let retrieval = config.retrieval.clone().map(|cfg| (dataset.clone(), cfg));
        let cell = Arc::new(ModelCell::from_frozen(
            frozen,
            Some(snapshot_bytes),
            retrieval,
        ));
        Self::from_cell(dataset, cell, reloader, config)
    }

    fn from_cell(
        dataset: Arc<Dataset>,
        cell: Arc<ModelCell>,
        reloader: Option<Reloader>,
        config: &ServeConfig,
    ) -> Arc<Self> {
        let metrics = Arc::new(Metrics::new());
        metrics
            .last_reload_unix
            .store(unix_now(), Ordering::Relaxed);
        let startup = cell.current();
        metrics.stamp_snapshot(startup.format(), startup.snapshot_bytes, startup.mapped);
        drop(startup);
        let batcher = MicroBatcher::start_with_faults(
            cell.clone(),
            metrics.clone(),
            config.batch,
            config.fault.clone(),
        );
        Arc::new(Self {
            dataset,
            cell,
            reloader,
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stale: Mutex::new(LruCache::new(config.cache_capacity)),
            metrics,
            batcher,
            default_k: config.default_k,
            max_k: config.max_k,
            degrade_watermark: config.degrade_watermark,
        })
    }

    /// The serving metrics (shared with the batcher).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current model epoch.
    pub fn model_epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The model cell (snapshot access for tests and embedding tools).
    pub fn cell(&self) -> &Arc<ModelCell> {
        &self.cell
    }

    /// Hot-reloads the checkpoint, returning the verified outcome: the
    /// new epoch plus the snapshot-format gauges of the generation that
    /// just went live (what `/admin/reload` reports back to rollout
    /// drivers).
    pub fn reload(&self) -> std::io::Result<ReloadOutcome> {
        let reloader = self.reloader.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no checkpoint configured for reload",
            )
        })?;
        match reloader.reload_into(&self.cell) {
            Ok(outcome) => {
                self.metrics.reloads_ok.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .last_reload_unix
                    .store(unix_now(), Ordering::Relaxed);
                self.metrics
                    .stamp_snapshot(outcome.format, outcome.snapshot_bytes, outcome.mapped);
                Ok(outcome)
            }
            Err(e) => {
                self.metrics.reloads_failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/recommend") => self.handle_recommend(req),
            ("GET", "/healthz") => {
                self.metrics
                    .healthz_requests
                    .fetch_add(1, Ordering::Relaxed);
                Response::json(
                    200,
                    format!(
                        "{{\"status\":\"ok\",\"model_epoch\":{}}}",
                        self.cell.epoch()
                    ),
                )
            }
            ("GET", "/metrics") => {
                self.metrics
                    .metrics_requests
                    .fetch_add(1, Ordering::Relaxed);
                let cache_len = self.cache.lock().expect("cache poisoned").len();
                Response::text(200, self.metrics.render(self.cell.epoch(), cache_len))
            }
            ("POST", "/admin/reload") => {
                self.metrics.reload_requests.fetch_add(1, Ordering::Relaxed);
                match self.reload() {
                    Ok(o) => Response::json(
                        200,
                        format!(
                            "{{\"reloaded\":true,\"model_epoch\":{},\"snapshot_format\":\"{}\",\"snapshot_bytes\":{},\"snapshot_mapped\":{}}}",
                            o.epoch, o.format, o.snapshot_bytes, o.mapped
                        ),
                    ),
                    Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                        Response::error(409, &e.to_string())
                    }
                    Err(e) => Response::error(500, &format!("reload rejected: {e}")),
                }
            }
            (_, "/recommend") | (_, "/healthz") | (_, "/metrics") | (_, "/admin/reload") => {
                Response::error(405, "method not allowed")
            }
            _ => Response::error(404, &format!("no route for {}", req.path)),
        }
    }

    fn handle_recommend(&self, req: &Request) -> Response {
        self.metrics
            .recommend_requests
            .fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let response = self.recommend_response(req);
        let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics
            .latency_us
            .observe(elapsed_us, &LATENCY_BUCKETS_US);
        response
    }

    fn recommend_response(&self, req: &Request) -> Response {
        // Parse and validate request input; none of it may panic.
        let user = match req.query_param("user").map(str::parse::<u32>) {
            Some(Ok(u)) => UserId(u),
            Some(Err(_)) => return Response::error(400, "user must be a non-negative integer"),
            None => return Response::error(400, "missing query parameter: user"),
        };
        let city = match req.query_param("city").map(str::parse::<u16>) {
            Some(Ok(c)) => CityId(c),
            Some(Err(_)) => return Response::error(400, "city must be a non-negative integer"),
            None => return Response::error(400, "missing query parameter: city"),
        };
        let k = match req.query_param("k").map(str::parse::<usize>) {
            Some(Ok(k)) => k,
            Some(Err(_)) => return Response::error(400, "k must be a non-negative integer"),
            None => self.default_k,
        };
        if k > self.max_k {
            return Response::error(400, &format!("k exceeds maximum {}", self.max_k));
        }
        if user.idx() >= self.dataset.num_users() {
            return Response::error(404, &format!("unknown user {}", user.0));
        }
        if (city.0 as usize) >= self.dataset.cities().len() {
            return Response::error(404, &format!("unknown city {}", city.0));
        }

        // Cache lookup under the current epoch.
        let key = CacheKey {
            user,
            city,
            k,
            epoch: self.cell.epoch(),
        };
        if let Some(body) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Response::json(200, body.as_bytes().to_vec())
                .with_header("X-Cache", "HIT")
                .with_header("X-Model-Epoch", &key.epoch.to_string());
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Degradation: above the watermark, a possibly-stale cached
        // answer beats queueing behind an overloaded batcher. Fresh-epoch
        // hits never reach here (caught above), so anything served from
        // the stale cache is explicitly marked degraded.
        if self.degrade_watermark > 0 && self.batcher.queue_depth() >= self.degrade_watermark {
            let stale = self
                .stale
                .lock()
                .expect("stale cache poisoned")
                .get(&(user, city, k))
                .cloned();
            if let Some((epoch, body)) = stale {
                self.metrics.degraded_total.fetch_add(1, Ordering::Relaxed);
                // Splice the marker into the cached body: `{"degraded":
                // true,` + the body minus its opening brace.
                let mut degraded = String::with_capacity(body.len() + 18);
                degraded.push_str("{\"degraded\":true,");
                degraded.push_str(&body[1..]);
                return Response::json(200, degraded.into_bytes())
                    .with_header("X-Cache", "STALE")
                    .with_header("X-Degraded", "true")
                    .with_header("X-Model-Epoch", &epoch.to_string());
            }
        }

        // Miss: generate candidates (two-stage retrieval when this
        // generation carries an index, exact full catalog otherwise),
        // then score through the micro-batcher.
        let generation = self.cell.current();
        let retrieved = generation.retrieval.as_deref().and_then(|index| {
            let mut ctx = InferCtx::new();
            index.candidates(&generation.frozen, &mut ctx, &self.dataset, user, city)
        });
        let candidates = match retrieved {
            Some(c) => Arc::new(c.pois),
            None => {
                // Degraded-to-exact serving, made observable: either no
                // index covers this city or retrieval is disabled.
                self.metrics
                    .retrieval_fallback_total
                    .fetch_add(1, Ordering::Relaxed);
                Arc::new(self.dataset.pois_in_city(city).to_vec())
            }
        };
        self.metrics
            .candidate_size
            .observe(candidates.len() as u64, &crate::metrics::CANDIDATE_BUCKETS);
        let reply = match self.batcher.submit(BatchRequest {
            user,
            candidates,
            k,
        }) {
            Ok(reply) => reply,
            Err(SubmitError::QueueFull) => {
                return Response::error(429, "queue full, retry later")
                    .with_header("Retry-After", "1");
            }
            Err(SubmitError::DeadlineExceeded) => {
                // Retry-After marks this as a deliberate overload shed
                // (like the 429 above): the server is alive, the job
                // just aged out. The router relies on this marker to
                // keep deliberate sheds out of its circuit breakers.
                return Response::error(503, "deadline-exceeded").with_header("Retry-After", "1");
            }
            Err(SubmitError::ShuttingDown) => {
                return Response::error(503, "server shutting down");
            }
            Err(SubmitError::ScorerFailed) => {
                return Response::error(500, "scorer failed");
            }
            Err(SubmitError::InvalidRequest) => {
                // The snapshot the batch scored with could not address
                // this request's ids (e.g. a model generation narrower
                // than the dataset): client error, not a worker panic.
                return Response::error(400, "request not scorable by the serving model");
            }
        };
        let body: Arc<str> = render_recommend_body(user, city, k, reply.epoch, &reply.recs).into();
        self.cache.lock().expect("cache poisoned").insert(
            CacheKey {
                user,
                city,
                k,
                // Key by the epoch that actually scored the batch: a
                // reload racing this request must not poison the new
                // generation's cache with old-model results.
                epoch: reply.epoch,
            },
            body.clone(),
        );
        self.stale
            .lock()
            .expect("stale cache poisoned")
            .insert((user, city, k), (reply.epoch, body.clone()));
        Response::json(200, body.as_bytes().to_vec())
            .with_header("X-Cache", "MISS")
            .with_header("X-Model-Epoch", &reply.epoch.to_string())
    }
}

/// Renders the `/recommend` response body. Scores print via Rust's
/// shortest-roundtrip float formatting, so parsing them back yields the
/// bit-identical `f32` the scorer produced.
pub fn render_recommend_body(
    user: UserId,
    city: CityId,
    k: usize,
    epoch: u64,
    recs: &[Recommendation],
) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(64 + recs.len() * 32);
    let _ = write!(
        out,
        "{{\"user\":{},\"city\":{},\"k\":{k},\"model_epoch\":{epoch},\"recommendations\":[",
        user.0, city.0
    );
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"poi\":{},\"score\":{}}}", r.poi.0, r.score);
    }
    out.push_str("]}");
    out
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// the listener, workers, batcher, and watcher.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    conns: ConnRegistry,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    watcher_handle: Option<std::thread::JoinHandle<()>>,
}

/// Live client connections keyed by accept order, so shutdown can
/// force-close a blocked keep-alive read instead of waiting out its
/// idle timeout.
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

impl Server {
    /// Binds and starts serving `engine` under `config`.
    pub fn start(engine: Arc<Engine>, config: &ServeConfig) -> std::io::Result<Server> {
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad addr")
            })?)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        // Fixed worker pool fed by an accept thread over a channel.
        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = conn_rx.clone();
            let engine = engine.clone();
            let registry = conns.clone();
            let idle = config.idle_timeout;
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("st-serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = rx.lock().expect("conn rx poisoned").recv();
                        match conn {
                            Ok((conn_id, stream)) => {
                                handle_connection(&engine, stream, idle);
                                registry
                                    .lock()
                                    .expect("conn registry poisoned")
                                    .remove(&conn_id);
                            }
                            Err(_) => return, // accept thread gone: shutdown
                        }
                    })
                    .expect("spawn worker"),
            );
        }

        let accept_stop = stop.clone();
        let accept_conns = conns.clone();
        let accept_handle = std::thread::Builder::new()
            .name("st-serve-accept".into())
            .spawn(move || {
                let mut next_id = 0u64;
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break; // the shutdown self-connection lands here
                    }
                    match stream {
                        Ok(stream) => {
                            let conn_id = next_id;
                            next_id += 1;
                            if let Ok(clone) = stream.try_clone() {
                                accept_conns
                                    .lock()
                                    .expect("conn registry poisoned")
                                    .insert(conn_id, clone);
                            }
                            if conn_tx.send((conn_id, stream)).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping conn_tx unblocks every worker.
            })
            .expect("spawn accept thread");

        let watcher_handle = match (config.watch_interval, engine.reloader.is_some()) {
            (Some(interval), true) => {
                let engine = engine.clone();
                let stop = stop.clone();
                Some(
                    std::thread::Builder::new()
                        .name("st-serve-watcher".into())
                        .spawn(move || {
                            while !stop.load(Ordering::Acquire) {
                                std::thread::sleep(interval);
                                let Some(reloader) = engine.reloader.as_ref() else {
                                    return;
                                };
                                if reloader.mtime_changed() {
                                    // A broken half-written checkpoint is
                                    // rejected; the next tick retries.
                                    let _ = engine.reload();
                                }
                            }
                        })
                        .expect("spawn watcher"),
                )
            }
            _ => None,
        };

        Ok(Server {
            addr,
            engine,
            stop,
            conns,
            accept_handle: Some(accept_handle),
            worker_handles,
            watcher_handle,
        })
    }

    /// The bound address (use this to learn an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Blocks the calling thread until the server stops.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Force-close live keep-alive connections so blocked worker
        // reads fail now rather than at their idle timeout.
        for (_, stream) in self.conns.lock().expect("conn registry poisoned").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.watcher_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Serves one connection: keep-alive request loop with an idle timeout.
fn handle_connection(engine: &Engine, stream: TcpStream, idle_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match read_request(&mut reader) {
            Ok(None) => return, // clean close between requests
            Ok(Some(req)) => {
                let response = engine.route(&req);
                engine.metrics.record_status(response.status);
                let keep_alive = !req.wants_close();
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ParseError::Malformed(msg)) => {
                let response = Response::error(400, &msg);
                engine.metrics.record_status(400);
                let _ = response.write_to(&mut writer, false);
                return;
            }
            Err(ParseError::Io(_)) => return, // timeout or peer reset
        }
    }
}
