//! The micro-batcher: coalesces concurrent recommendation requests into
//! one batched forward pass, behind overload-safe admission control.
//!
//! HTTP workers submit [`BatchRequest`]s and block on a per-request
//! channel. Admission is bounded: a queue at `queue_capacity` sheds new
//! submissions synchronously with [`SubmitError::QueueFull`] instead of
//! growing without limit, and every queued job carries its enqueue time
//! so the drain path can drop jobs whose `deadline` passed before
//! scoring ([`SubmitError::DeadlineExceeded`]) — one slow batch delays
//! the queue, it does not cascade into a convoy of doomed work.
//!
//! A single batcher thread takes the first queued request, waits up to
//! the configured window for more to arrive (leaving early when
//! `max_batch` fills), then concatenates every request's
//! `(user, candidate)` pairs into one scoring call against the
//! generation's frozen [`st_transrec_core::ModelSnapshot`] — tape-free
//! `InferCtx` execution over scratch buffers the batcher thread owns and
//! reuses for its whole lifetime. Scores are split back per request and
//! ranked exactly like `recommend_top_k`, so a batched response is
//! bit-identical to an unbatched one.
//!
//! Every submitted job reaches exactly one terminal outcome: scored,
//! shed at admission, expired in queue, failed by an injected fault, or
//! answered with a shutdown error. The shutdown flag lives under the
//! same mutex as the queue, so no job can slip in between the stop flag
//! and the final drain — the conservation invariant the chaos harness
//! asserts end to end.

use crate::fault::FaultInjector;
use crate::metrics::{Metrics, BATCH_BUCKETS};
use crate::snapshot::ModelCell;
use st_data::{PoiId, UserId};
use st_transrec_core::ModelSnapshot as FrozenModel;
use st_transrec_core::{InferCtx, Recommendation, STTransRec};
use std::collections::VecDeque;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scores `(user, poi)` pairs given as parallel slices in one forward
/// pass. This is the surface the micro-batcher needs from a model; it is
/// a trait so tests can drive the batcher with synthetic scorers.
pub trait PairScorer: Send + Sync {
    /// Scores each `(users[i], pois[i])` pair; output is parallel to the
    /// inputs and must not depend on how pairs are batched together.
    fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32>;
}

impl PairScorer for STTransRec {
    fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32> {
        let user_rows: Vec<usize> = users.iter().map(|u| u.idx()).collect();
        let poi_rows: Vec<usize> = pois.iter().map(|p| p.idx()).collect();
        self.predict(&user_rows, &poi_rows)
    }
}

impl PairScorer for FrozenModel {
    fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32> {
        // Inherent method of the same name; resolves to the snapshot's own
        // tape-free scoring, not back into this trait impl.
        FrozenModel::score_pairs(self, users, pois)
    }
}

/// One recommendation request as the batcher sees it.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The requesting user.
    pub user: UserId,
    /// Candidate POIs (already filtered to the requested city).
    pub candidates: Arc<Vec<PoiId>>,
    /// How many top results to return.
    pub k: usize,
}

/// The batcher's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// Epoch of the model snapshot that scored this request.
    pub epoch: u64,
    /// Top-k recommendations, ranked like `recommend_top_k`.
    pub recs: Vec<Recommendation>,
}

/// Why a submission did not get a scored reply. Every variant is a
/// terminal outcome: the submitter got its answer, just not a ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Shed at admission: the queue was at capacity (HTTP `429`).
    QueueFull,
    /// The job sat in the queue past its deadline and was dropped before
    /// scoring (HTTP `503`).
    DeadlineExceeded,
    /// The batcher is shutting down (HTTP `503`).
    ShuttingDown,
    /// An injected scorer fault failed the batch (HTTP `500`; only
    /// reachable with a [`FaultInjector`] attached).
    ScorerFailed,
    /// The request referenced a user or POI the serving snapshot cannot
    /// score (HTTP `400`). Malformed input is validated out per job
    /// before the batch is concatenated, so it becomes an error reply
    /// for that job alone — never a worker panic, and never collateral
    /// damage to the well-formed jobs sharing its batch.
    InvalidRequest,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::DeadlineExceeded => write!(f, "deadline exceeded"),
            SubmitError::ShuttingDown => write!(f, "shutting down"),
            SubmitError::ScorerFailed => write!(f, "scorer failed"),
            SubmitError::InvalidRequest => write!(f, "invalid request"),
        }
    }
}

struct Job {
    req: BatchRequest,
    tx: mpsc::Sender<Result<BatchReply, SubmitError>>,
    enqueued_at: Instant,
}

/// Queue and shutdown flag under ONE mutex: `submit` checks the flag and
/// enqueues atomically, so a job either lands before the batcher's final
/// drain (and gets answered) or is rejected — never silently parked.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    arrived: Condvar,
}

/// Handle to the batcher thread.
pub struct MicroBatcher {
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    config: BatchConfig,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Upper bound on how long the batcher holds a batch open for
    /// companions after the first request; it fires early once arrivals
    /// pause. Zero disables the coalescing delay entirely (each pass
    /// takes whatever is already queued — batches still form naturally
    /// from the backlog that accumulates while the previous batch
    /// scores).
    pub window: Duration,
    /// Most requests folded into one forward pass. 1 reproduces
    /// one-request-at-a-time serving through the identical code path.
    pub max_batch: usize,
    /// Upper bound on `(user, poi)` pairs per `score_pairs` call. A
    /// coalesced batch larger than this is scored in chunks split at
    /// request boundaries: per-pair cost rises once a forward pass's
    /// tape intermediates outgrow the cache, so a huge concatenated
    /// batch is *slower* than a few cache-resident ones. Also bounds
    /// peak scoring memory. 0 disables chunking.
    pub chunk_pairs: usize,
    /// Most jobs the queue will hold; submissions beyond this are shed
    /// with [`SubmitError::QueueFull`]. 0 disables the bound (the
    /// pre-overload-control behaviour; not recommended in production).
    pub queue_capacity: usize,
    /// How long a job may wait in the queue before the drain path drops
    /// it with [`SubmitError::DeadlineExceeded`] instead of scoring it.
    /// Zero disables deadlines.
    pub deadline: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_micros(500),
            max_batch: 64,
            chunk_pairs: 256,
            queue_capacity: 4096,
            deadline: Duration::ZERO,
        }
    }
}

/// How often the batcher re-checks a closed fault gate (and shutdown).
const FREEZE_POLL: Duration = Duration::from_micros(200);

impl MicroBatcher {
    /// Spawns the batcher thread over `cell`'s current model.
    pub fn start(cell: Arc<ModelCell>, metrics: Arc<Metrics>, config: BatchConfig) -> Self {
        Self::start_with_faults(cell, metrics, config, None)
    }

    /// [`start`](MicroBatcher::start) with fault-injection hooks
    /// attached; the chaos harness and tests drive `injector` to freeze
    /// the drain path, pad scoring latency, or force batch failures.
    pub fn start_with_faults(
        cell: Arc<ModelCell>,
        metrics: Arc<Metrics>,
        config: BatchConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            arrived: Condvar::new(),
        });
        let worker_shared = shared.clone();
        let worker_metrics = metrics.clone();
        let handle = std::thread::Builder::new()
            .name("st-serve-batcher".into())
            .spawn(move || batcher_loop(worker_shared, cell, worker_metrics, config, injector))
            .expect("spawn batcher thread");
        Self {
            shared,
            metrics,
            config,
            handle: Some(handle),
        }
    }

    /// Submits a request and blocks until it reaches a terminal outcome:
    /// a scored reply, a synchronous shed when the queue is full, or an
    /// error from the drain path (deadline, injected fault, shutdown).
    pub fn submit(&self, req: BatchRequest) -> Result<BatchReply, SubmitError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("batcher queue poisoned");
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if self.config.queue_capacity > 0 && state.jobs.len() >= self.config.queue_capacity {
                self.metrics.shed_total.fetch_add(1, Relaxed);
                return Err(SubmitError::QueueFull);
            }
            state.jobs.push_back(Job {
                req,
                tx,
                enqueued_at: Instant::now(),
            });
            self.metrics
                .queue_depth
                .store(state.jobs.len() as u64, Relaxed);
        }
        self.shared.arrived.notify_all();
        // A closed channel without a message can only mean the batcher
        // died; report it as a shutdown rather than hanging or panicking.
        rx.recv().unwrap_or(Err(SubmitError::ShuttingDown))
    }

    /// Live queue depth (jobs admitted but not yet drained).
    pub fn queue_depth(&self) -> usize {
        self.metrics.queue_depth.load(Relaxed) as usize
    }

    /// Stops the batcher thread, answering queued jobs first: jobs
    /// already admitted are scored (or expired) before the thread exits,
    /// and submissions from then on get [`SubmitError::ShuttingDown`].
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("batcher queue poisoned");
            state.shutdown = true;
        }
        self.shared.arrived.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(
    shared: Arc<Shared>,
    cell: Arc<ModelCell>,
    metrics: Arc<Metrics>,
    config: BatchConfig,
    injector: Option<Arc<FaultInjector>>,
) {
    // The batcher thread's scratch buffers, reused across every batch it
    // ever scores: zero allocations per batch once warmed up.
    let mut ctx = InferCtx::new();
    loop {
        // Wait for the first request (or shutdown). Because the shutdown
        // flag shares the queue mutex, "empty and shutting down" is a
        // stable exit condition: nothing can be enqueued after it.
        let mut state = shared.state.lock().expect("batcher queue poisoned");
        while state.jobs.is_empty() {
            if state.shutdown {
                return;
            }
            state = shared
                .arrived
                .wait_timeout(state, Duration::from_millis(50))
                .expect("batcher queue poisoned")
                .0;
        }

        // Fault gate, checked with jobs in hand and before any drain:
        // while frozen, stay off the queue so admission (and shedding)
        // continues while the backlog builds — once `freeze()` returns,
        // no new drain can start. Shutdown overrides the freeze so a
        // frozen server still stops cleanly.
        if let Some(inj) = injector.as_deref() {
            if inj.frozen() && !state.shutdown {
                drop(state);
                std::thread::sleep(FREEZE_POLL);
                continue;
            }
        }

        // Coalesce: hold the door open up to `window` for more arrivals,
        // leaving as soon as the batch is full — or as soon as arrivals
        // pause. Waiting out the whole window when no more requests are
        // coming just parks every blocked caller behind a timer, so the
        // wait runs in short quanta and fires once a quantum passes with
        // no growth.
        if !config.window.is_zero() && state.jobs.len() < config.max_batch && !state.shutdown {
            let deadline = Instant::now() + config.window;
            let quantum = (config.window / 8).max(Duration::from_micros(20));
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() || state.jobs.len() >= config.max_batch || state.shutdown {
                    break;
                }
                let before = state.jobs.len();
                state = shared
                    .arrived
                    .wait_timeout(state, remaining.min(quantum))
                    .expect("batcher queue poisoned")
                    .0;
                if state.jobs.len() == before {
                    break; // arrivals paused: score what we have
                }
            }
        }

        let take = state.jobs.len().min(config.max_batch);
        let mut batch: Vec<Job> = state.jobs.drain(..take).collect();
        metrics.queue_depth.store(state.jobs.len() as u64, Relaxed);
        drop(state);

        // Deadline pass: drop jobs that aged out while queued, so a slow
        // or stalled batch ahead of them cannot cascade into scoring
        // work whose clients have already given up.
        if !config.deadline.is_zero() {
            batch.retain(|job| {
                if job.enqueued_at.elapsed() > config.deadline {
                    metrics.expired_total.fetch_add(1, Relaxed);
                    let _ = job.tx.send(Err(SubmitError::DeadlineExceeded));
                    false
                } else {
                    true
                }
            });
        }
        if batch.is_empty() {
            continue;
        }

        if let Some(inj) = injector.as_deref() {
            // Forced failure: the whole batch errors instead of scoring.
            if inj.take_batch_failure() {
                metrics
                    .injected_failures_total
                    .fetch_add(batch.len() as u64, Relaxed);
                for job in batch {
                    let _ = job.tx.send(Err(SubmitError::ScorerFailed));
                }
                continue;
            }
            // Latency pad: a deliberately slow scorer.
            if let Some(pad) = inj.next_pad() {
                std::thread::sleep(pad);
            }
        }

        execute_batch(&cell, &metrics, batch, config.chunk_pairs, &mut ctx);
    }
}

/// Runs one coalesced batch — scored in cache-sized chunks of at most
/// `chunk_pairs` pairs, split at request boundaries — and answers every
/// job in it. The whole batch sees one model snapshot regardless of how
/// many `score_pairs` calls it takes.
fn execute_batch(
    cell: &ModelCell,
    metrics: &Metrics,
    batch: Vec<Job>,
    chunk_pairs: usize,
    ctx: &mut InferCtx,
) {
    if batch.is_empty() {
        return;
    }
    let snapshot = cell.current();

    metrics.batches.fetch_add(1, Relaxed);
    metrics
        .batched_requests
        .fetch_add(batch.len() as u64, Relaxed);
    metrics
        .batch_size
        .observe(batch.len() as u64, &BATCH_BUCKETS);

    let mut chunk: Vec<Job> = Vec::with_capacity(batch.len());
    let mut chunk_len = 0usize;
    for job in batch {
        let n = job.req.candidates.len();
        if !chunk.is_empty() && chunk_pairs > 0 && chunk_len + n > chunk_pairs {
            score_chunk(&snapshot, std::mem::take(&mut chunk), chunk_len, ctx);
            chunk_len = 0;
        }
        chunk_len += n;
        chunk.push(job);
    }
    score_chunk(&snapshot, chunk, chunk_len, ctx);
}

/// One tape-free scoring pass over `chunk`'s concatenated pairs (through
/// the generation's frozen parameters and the batcher's reusable
/// scratch), then ranks and replies per request.
fn score_chunk(
    snapshot: &crate::snapshot::ModelSnapshot,
    chunk: Vec<Job>,
    total: usize,
    ctx: &mut InferCtx,
) {
    if chunk.is_empty() {
        return;
    }
    // Validate each job against the snapshot it will be scored by,
    // before any concatenation: a malformed request (unknown user,
    // out-of-range candidate) is answered with `InvalidRequest` on its
    // own channel, and the rest of the chunk scores normally.
    let (num_users, num_pois) = (snapshot.frozen.num_users(), snapshot.frozen.num_pois());
    let mut valid: Vec<Job> = Vec::with_capacity(chunk.len());
    for job in chunk {
        let well_formed =
            job.req.user.idx() < num_users && job.req.candidates.iter().all(|p| p.idx() < num_pois);
        if well_formed {
            valid.push(job);
        } else {
            let _ = job.tx.send(Err(SubmitError::InvalidRequest));
        }
    }
    if valid.is_empty() {
        return;
    }
    let mut users: Vec<UserId> = Vec::with_capacity(total);
    let mut pois: Vec<PoiId> = Vec::with_capacity(total);
    for job in &valid {
        users.extend(std::iter::repeat_n(job.req.user, job.req.candidates.len()));
        pois.extend_from_slice(&job.req.candidates);
    }
    // Per-job validation above makes this infallible, but the worker
    // thread must never be one refactor away from a panic: any residual
    // shape problem is an error reply, not a crash.
    let scores = match snapshot.frozen.try_score_pairs_with(ctx, &users, &pois) {
        Ok(scores) => scores,
        Err(_) => {
            for job in valid {
                let _ = job.tx.send(Err(SubmitError::InvalidRequest));
            }
            return;
        }
    };

    let mut offset = 0;
    for job in valid {
        let n = job.req.candidates.len();
        let slice = &scores[offset..offset + n];
        offset += n;
        let recs = rank_top_k(&job.req.candidates, slice, job.req.k);
        // A dropped receiver (client hung up) is not an error.
        let _ = job.tx.send(Ok(BatchReply {
            epoch: snapshot.epoch,
            recs,
        }));
    }
}

/// Ranks candidates by score exactly like `recommend_top_k`: descending
/// `total_cmp`, ties broken by ascending POI id, truncated to `k`.
pub fn rank_top_k(candidates: &[PoiId], scores: &[f32], k: usize) -> Vec<Recommendation> {
    let mut ranked: Vec<Recommendation> = candidates
        .iter()
        .zip(scores)
        .map(|(&poi, &score)| Recommendation { poi, score })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.poi.cmp(&b.poi)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit};
    use st_transrec_core::{recommend_top_k, ModelConfig};

    fn cell() -> (Arc<ModelCell>, st_data::Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        let mut model = STTransRec::new(&d, &split, ModelConfig::test_small());
        model.train_epoch(&d);
        (Arc::new(ModelCell::new(model)), d, split)
    }

    fn request(user: UserId, candidates: &Arc<Vec<PoiId>>, k: usize) -> BatchRequest {
        BatchRequest {
            user,
            candidates: candidates.clone(),
            k,
        }
    }

    #[test]
    fn batched_replies_match_recommend_top_k() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let batcher = MicroBatcher::start(
            cell.clone(),
            metrics.clone(),
            BatchConfig {
                window: Duration::from_millis(2),
                max_batch: 16,
                // A chunk cap smaller than one catalog forces the
                // chunked path; replies must still be exact.
                chunk_pairs: 16,
                ..BatchConfig::default()
            },
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());

        // Concurrent submissions from several threads coalesce; each
        // reply must equal the offline recommend_top_k ranking.
        std::thread::scope(|scope| {
            let handles: Vec<_> = split
                .test_users
                .iter()
                .take(6)
                .map(|&user| {
                    let batcher = &batcher;
                    let candidates = candidates.clone();
                    scope.spawn(move || {
                        let reply = batcher
                            .submit(request(user, &candidates, 5))
                            .expect("batcher alive");
                        (user, reply)
                    })
                })
                .collect();
            for h in handles {
                let (user, reply) = h.join().unwrap();
                assert_eq!(reply.epoch, 1);
                let expected =
                    recommend_top_k(&cell.current().frozen, &d, user, split.target_city, 5, &[]);
                assert_eq!(reply.recs, expected, "user {user:?}");
            }
        });
        assert_eq!(metrics.batched_requests.load(Relaxed), 6);
        assert!(metrics.batches.load(Relaxed) >= 1);
    }

    #[test]
    fn max_batch_one_serves_one_at_a_time() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let batcher = MicroBatcher::start(
            cell.clone(),
            metrics.clone(),
            BatchConfig {
                window: Duration::ZERO,
                max_batch: 1,
                ..BatchConfig::default()
            },
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());
        for &user in split.test_users.iter().take(3) {
            let reply = batcher.submit(request(user, &candidates, 3)).unwrap();
            assert_eq!(reply.recs.len(), 3);
        }
        let batches = metrics.batches.load(Relaxed);
        assert_eq!(batches, 3, "every request is its own batch");
    }

    #[test]
    fn k_zero_and_empty_candidates_are_harmless() {
        let (cell, d, split) = cell();
        let batcher = MicroBatcher::start(cell, Arc::new(Metrics::new()), BatchConfig::default());
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());
        let reply = batcher
            .submit(request(split.test_users[0], &candidates, 0))
            .unwrap();
        assert!(reply.recs.is_empty());
        let reply = batcher
            .submit(request(split.test_users[0], &Arc::new(Vec::new()), 5))
            .unwrap();
        assert!(reply.recs.is_empty());
    }

    #[test]
    fn malformed_jobs_get_invalid_request_without_hurting_batchmates() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let batcher = MicroBatcher::start(
            cell.clone(),
            metrics,
            BatchConfig {
                window: Duration::from_millis(5),
                max_batch: 8,
                ..BatchConfig::default()
            },
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());
        let good_user = split.test_users[0];
        let ghost_user = UserId(d.num_users() as u32 + 7);
        let ghost_poi = Arc::new(vec![PoiId(d.num_pois() as u32)]);

        // Submit a malformed and a well-formed job concurrently so they
        // coalesce into one batch: the bad one errors, the good one is
        // answered exactly like an unbatched request.
        std::thread::scope(|scope| {
            let bad_user = {
                let batcher = &batcher;
                let candidates = candidates.clone();
                scope.spawn(move || batcher.submit(request(ghost_user, &candidates, 3)))
            };
            let bad_poi = {
                let batcher = &batcher;
                let ghost_poi = ghost_poi.clone();
                scope.spawn(move || batcher.submit(request(good_user, &ghost_poi, 3)))
            };
            let good = {
                let batcher = &batcher;
                let candidates = candidates.clone();
                scope.spawn(move || batcher.submit(request(good_user, &candidates, 3)))
            };
            assert_eq!(bad_user.join().unwrap(), Err(SubmitError::InvalidRequest));
            assert_eq!(bad_poi.join().unwrap(), Err(SubmitError::InvalidRequest));
            let reply = good.join().unwrap().expect("valid batchmate served");
            let expected = recommend_top_k(
                &cell.current().frozen,
                &d,
                good_user,
                split.target_city,
                3,
                &[],
            );
            assert_eq!(reply.recs, expected);
        });
    }

    #[test]
    fn full_queue_sheds_synchronously() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let injector = Arc::new(FaultInjector::new(1));
        injector.freeze();
        let batcher = MicroBatcher::start_with_faults(
            cell,
            metrics.clone(),
            BatchConfig {
                window: Duration::ZERO,
                queue_capacity: 3,
                ..BatchConfig::default()
            },
            Some(injector.clone()),
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());

        // With the drain frozen, park `capacity` submitters in the queue
        // from background threads, then overflow from this one.
        std::thread::scope(|scope| {
            let mut parked = Vec::new();
            for &user in split.test_users.iter().take(3) {
                let batcher = &batcher;
                let candidates = candidates.clone();
                parked.push(scope.spawn(move || batcher.submit(request(user, &candidates, 3))));
            }
            while batcher.queue_depth() < 3 {
                std::thread::sleep(Duration::from_micros(100));
            }
            for _ in 0..4 {
                assert_eq!(
                    batcher.submit(request(split.test_users[0], &candidates, 3)),
                    Err(SubmitError::QueueFull)
                );
            }
            assert_eq!(metrics.shed_total.load(Relaxed), 4);
            injector.thaw();
            for h in parked {
                assert!(h.join().unwrap().is_ok(), "parked submitter served");
            }
        });
        assert_eq!(metrics.queue_depth.load(Relaxed), 0);
    }

    #[test]
    fn frozen_batcher_expires_queued_jobs_past_deadline() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let injector = Arc::new(FaultInjector::new(1));
        injector.freeze();
        let batcher = MicroBatcher::start_with_faults(
            cell,
            metrics.clone(),
            BatchConfig {
                window: Duration::ZERO,
                deadline: Duration::from_millis(30),
                ..BatchConfig::default()
            },
            Some(injector.clone()),
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());

        std::thread::scope(|scope| {
            let mut parked = Vec::new();
            for &user in split.test_users.iter().take(3) {
                let batcher = &batcher;
                let candidates = candidates.clone();
                parked.push(scope.spawn(move || batcher.submit(request(user, &candidates, 3))));
            }
            while batcher.queue_depth() < 3 {
                std::thread::sleep(Duration::from_micros(100));
            }
            // Hold the freeze well past the deadline, then let the drain
            // path discover the expired jobs.
            std::thread::sleep(Duration::from_millis(80));
            injector.thaw();
            for h in parked {
                assert_eq!(h.join().unwrap(), Err(SubmitError::DeadlineExceeded));
            }
        });
        assert_eq!(metrics.expired_total.load(Relaxed), 3);
        // A fresh request after the storm scores normally.
        let reply = batcher.submit(request(split.test_users[0], &candidates, 3));
        assert!(reply.is_ok());
    }

    #[test]
    fn injected_scorer_failure_answers_every_job() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let injector = Arc::new(FaultInjector::new(1));
        injector.freeze();
        let batcher = MicroBatcher::start_with_faults(
            cell,
            metrics.clone(),
            BatchConfig {
                window: Duration::ZERO,
                ..BatchConfig::default()
            },
            Some(injector.clone()),
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());

        std::thread::scope(|scope| {
            let mut parked = Vec::new();
            for &user in split.test_users.iter().take(2) {
                let batcher = &batcher;
                let candidates = candidates.clone();
                parked.push(scope.spawn(move || batcher.submit(request(user, &candidates, 3))));
            }
            while batcher.queue_depth() < 2 {
                std::thread::sleep(Duration::from_micros(100));
            }
            injector.fail_next_batches(1);
            injector.thaw();
            for h in parked {
                assert_eq!(h.join().unwrap(), Err(SubmitError::ScorerFailed));
            }
        });
        assert_eq!(metrics.injected_failures_total.load(Relaxed), 2);
        // The failure budget is spent: the next request scores.
        assert!(batcher
            .submit(request(split.test_users[0], &candidates, 3))
            .is_ok());
    }

    /// Regression test for the drain race: a job enqueued between the
    /// stop flag being set and the final drain used to be silently
    /// dropped, leaving its submitter blocked forever. With the flag
    /// under the queue mutex, every submitter must get either a scored
    /// reply or a clean `ShuttingDown` error — never a hang.
    #[test]
    fn concurrent_submit_and_shutdown_loses_no_submitter() {
        for round in 0..8 {
            let (cell, d, split) = cell();
            let metrics = Arc::new(Metrics::new());
            let mut batcher = MicroBatcher::start(
                cell,
                metrics.clone(),
                BatchConfig {
                    window: Duration::ZERO,
                    max_batch: 4,
                    ..BatchConfig::default()
                },
            );
            let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());
            let user = split.test_users[0];

            let (served, refused) = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..4 {
                    let batcher = &batcher;
                    let candidates = candidates.clone();
                    handles.push(scope.spawn(move || {
                        let mut served = 0usize;
                        let mut refused = 0usize;
                        for i in 0..50 {
                            match batcher.submit(request(user, &candidates, 2)) {
                                Ok(_) => served += 1,
                                Err(SubmitError::ShuttingDown) => refused += 1,
                                Err(e) => panic!("unexpected outcome: {e}"),
                            }
                            // Stagger threads so the shutdown lands at a
                            // different interleaving each round.
                            if (i + t + round) % 7 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        (served, refused)
                    }));
                }
                // Let some traffic through, then stop mid-flight.
                std::thread::sleep(Duration::from_millis(2 + round as u64));
                // SAFETY of the borrow: shutdown only joins the batcher
                // thread; submitters still hold &batcher and must all
                // resolve. Scoped threads guarantee they finish here.
                let batcher_ref: &MicroBatcher = &batcher;
                // Trigger shutdown through the shared state exactly like
                // `shutdown()` does, without taking `&mut` (submitters
                // hold shared borrows).
                {
                    let mut state = batcher_ref
                        .shared
                        .state
                        .lock()
                        .expect("batcher queue poisoned");
                    state.shutdown = true;
                }
                batcher_ref.shared.arrived.notify_all();

                let mut served = 0usize;
                let mut refused = 0usize;
                for h in handles {
                    let (s, r) = h.join().unwrap();
                    served += s;
                    refused += r;
                }
                (served, refused)
            });
            batcher.shutdown();
            assert_eq!(served + refused, 200, "every submitter resolved");
            assert_eq!(metrics.queue_depth.load(Relaxed), 0, "no job left behind");
        }
    }
}
