//! The micro-batcher: coalesces concurrent recommendation requests into
//! one batched forward pass.
//!
//! HTTP workers submit [`BatchRequest`]s and block on a per-request
//! channel. A single batcher thread takes the first queued request,
//! waits up to the configured window for more to arrive (leaving early
//! when `max_batch` fills), then concatenates every request's
//! `(user, candidate)` pairs into one scoring call against the
//! generation's frozen [`st_transrec_core::ModelSnapshot`] — tape-free
//! `InferCtx` execution over scratch buffers the batcher thread owns and
//! reuses for its whole lifetime, so steady-state scoring allocates
//! nothing and never touches the autodiff tape. Scores are split back
//! per request and ranked exactly like `recommend_top_k` (descending
//! `total_cmp`, POI-id tiebreak), so a batched response is bit-identical
//! to an unbatched one.
//!
//! The whole batch scores against one model snapshot grabbed at
//! execution time; the reply carries that snapshot's epoch so callers
//! cache under the generation that actually produced the result.

use crate::metrics::{Metrics, BATCH_BUCKETS};
use crate::snapshot::ModelCell;
use st_data::{PoiId, UserId};
use st_transrec_core::ModelSnapshot as FrozenModel;
use st_transrec_core::{InferCtx, Recommendation, STTransRec};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scores `(user, poi)` pairs given as parallel slices in one forward
/// pass. This is the surface the micro-batcher needs from a model; it is
/// a trait so tests can drive the batcher with synthetic scorers.
pub trait PairScorer: Send + Sync {
    /// Scores each `(users[i], pois[i])` pair; output is parallel to the
    /// inputs and must not depend on how pairs are batched together.
    fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32>;
}

impl PairScorer for STTransRec {
    fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32> {
        let user_rows: Vec<usize> = users.iter().map(|u| u.idx()).collect();
        let poi_rows: Vec<usize> = pois.iter().map(|p| p.idx()).collect();
        self.predict(&user_rows, &poi_rows)
    }
}

impl PairScorer for FrozenModel {
    fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32> {
        // Inherent method of the same name; resolves to the snapshot's own
        // tape-free scoring, not back into this trait impl.
        FrozenModel::score_pairs(self, users, pois)
    }
}

/// One recommendation request as the batcher sees it.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The requesting user.
    pub user: UserId,
    /// Candidate POIs (already filtered to the requested city).
    pub candidates: Arc<Vec<PoiId>>,
    /// How many top results to return.
    pub k: usize,
}

/// The batcher's answer to one request.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Epoch of the model snapshot that scored this request.
    pub epoch: u64,
    /// Top-k recommendations, ranked like `recommend_top_k`.
    pub recs: Vec<Recommendation>,
}

struct Job {
    req: BatchRequest,
    tx: mpsc::Sender<BatchReply>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    arrived: Condvar,
    shutdown: Mutex<bool>,
}

/// Handle to the batcher thread.
pub struct MicroBatcher {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Upper bound on how long the batcher holds a batch open for
    /// companions after the first request; it fires early once arrivals
    /// pause. Zero disables the coalescing delay entirely (each pass
    /// takes whatever is already queued — batches still form naturally
    /// from the backlog that accumulates while the previous batch
    /// scores).
    pub window: Duration,
    /// Most requests folded into one forward pass. 1 reproduces
    /// one-request-at-a-time serving through the identical code path.
    pub max_batch: usize,
    /// Upper bound on `(user, poi)` pairs per `score_pairs` call. A
    /// coalesced batch larger than this is scored in chunks split at
    /// request boundaries: per-pair cost rises once a forward pass's
    /// tape intermediates outgrow the cache, so a huge concatenated
    /// batch is *slower* than a few cache-resident ones. Also bounds
    /// peak scoring memory. 0 disables chunking.
    pub chunk_pairs: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_micros(500),
            max_batch: 64,
            chunk_pairs: 256,
        }
    }
}

impl MicroBatcher {
    /// Spawns the batcher thread over `cell`'s current model.
    pub fn start(cell: Arc<ModelCell>, metrics: Arc<Metrics>, config: BatchConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let worker_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("st-serve-batcher".into())
            .spawn(move || batcher_loop(worker_shared, cell, metrics, config))
            .expect("spawn batcher thread");
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// Submits a request and blocks until its batch executes. `None`
    /// only when the batcher is shutting down.
    pub fn submit(&self, req: BatchRequest) -> Option<BatchReply> {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("batcher queue poisoned");
            if *self.shared.shutdown.lock().expect("shutdown poisoned") {
                return None;
            }
            queue.push_back(Job { req, tx });
        }
        self.shared.arrived.notify_all();
        rx.recv().ok()
    }

    /// Stops the batcher thread, answering queued jobs first.
    pub fn shutdown(&mut self) {
        *self.shared.shutdown.lock().expect("shutdown poisoned") = true;
        self.shared.arrived.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(
    shared: Arc<Shared>,
    cell: Arc<ModelCell>,
    metrics: Arc<Metrics>,
    config: BatchConfig,
) {
    // The batcher thread's scratch buffers, reused across every batch it
    // ever scores: zero allocations per batch once warmed up.
    let mut ctx = InferCtx::new();
    loop {
        // Wait for the first request (or shutdown).
        let mut queue = shared.queue.lock().expect("batcher queue poisoned");
        while queue.is_empty() {
            if *shared.shutdown.lock().expect("shutdown poisoned") {
                return;
            }
            queue = shared
                .arrived
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("batcher queue poisoned")
                .0;
        }

        // Coalesce: hold the door open up to `window` for more arrivals,
        // leaving as soon as the batch is full — or as soon as arrivals
        // pause. Waiting out the whole window when no more requests are
        // coming just parks every blocked caller behind a timer, so the
        // wait runs in short quanta and fires once a quantum passes with
        // no growth.
        if !config.window.is_zero() && queue.len() < config.max_batch {
            let deadline = Instant::now() + config.window;
            let quantum = (config.window / 8).max(Duration::from_micros(20));
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero()
                    || queue.len() >= config.max_batch
                    || *shared.shutdown.lock().expect("shutdown poisoned")
                {
                    break;
                }
                let before = queue.len();
                queue = shared
                    .arrived
                    .wait_timeout(queue, remaining.min(quantum))
                    .expect("batcher queue poisoned")
                    .0;
                if queue.len() == before {
                    break; // arrivals paused: score what we have
                }
            }
        }

        let take = queue.len().min(config.max_batch);
        let batch: Vec<Job> = queue.drain(..take).collect();
        drop(queue);
        execute_batch(&cell, &metrics, batch, config.chunk_pairs, &mut ctx);
    }
}

/// Runs one coalesced batch — scored in cache-sized chunks of at most
/// `chunk_pairs` pairs, split at request boundaries — and answers every
/// job in it. The whole batch sees one model snapshot regardless of how
/// many `score_pairs` calls it takes.
fn execute_batch(
    cell: &ModelCell,
    metrics: &Metrics,
    batch: Vec<Job>,
    chunk_pairs: usize,
    ctx: &mut InferCtx,
) {
    if batch.is_empty() {
        return;
    }
    let snapshot = cell.current();

    metrics
        .batches
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    metrics
        .batched_requests
        .fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
    metrics
        .batch_size
        .observe(batch.len() as u64, &BATCH_BUCKETS);

    let mut chunk: Vec<Job> = Vec::with_capacity(batch.len());
    let mut chunk_len = 0usize;
    for job in batch {
        let n = job.req.candidates.len();
        if !chunk.is_empty() && chunk_pairs > 0 && chunk_len + n > chunk_pairs {
            score_chunk(&snapshot, std::mem::take(&mut chunk), chunk_len, ctx);
            chunk_len = 0;
        }
        chunk_len += n;
        chunk.push(job);
    }
    score_chunk(&snapshot, chunk, chunk_len, ctx);
}

/// One tape-free scoring pass over `chunk`'s concatenated pairs (through
/// the generation's frozen parameters and the batcher's reusable
/// scratch), then ranks and replies per request.
fn score_chunk(
    snapshot: &crate::snapshot::ModelSnapshot,
    chunk: Vec<Job>,
    total: usize,
    ctx: &mut InferCtx,
) {
    if chunk.is_empty() {
        return;
    }
    let mut users: Vec<UserId> = Vec::with_capacity(total);
    let mut pois: Vec<PoiId> = Vec::with_capacity(total);
    for job in &chunk {
        users.extend(std::iter::repeat_n(job.req.user, job.req.candidates.len()));
        pois.extend_from_slice(&job.req.candidates);
    }
    let scores = snapshot.frozen.score_pairs_with(ctx, &users, &pois);
    debug_assert_eq!(scores.len(), total);

    let mut offset = 0;
    for job in chunk {
        let n = job.req.candidates.len();
        let slice = &scores[offset..offset + n];
        offset += n;
        let recs = rank_top_k(&job.req.candidates, slice, job.req.k);
        // A dropped receiver (client hung up) is not an error.
        let _ = job.tx.send(BatchReply {
            epoch: snapshot.epoch,
            recs,
        });
    }
}

/// Ranks candidates by score exactly like `recommend_top_k`: descending
/// `total_cmp`, ties broken by ascending POI id, truncated to `k`.
pub fn rank_top_k(candidates: &[PoiId], scores: &[f32], k: usize) -> Vec<Recommendation> {
    let mut ranked: Vec<Recommendation> = candidates
        .iter()
        .zip(scores)
        .map(|(&poi, &score)| Recommendation { poi, score })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.poi.cmp(&b.poi)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit};
    use st_transrec_core::{recommend_top_k, ModelConfig};

    fn cell() -> (Arc<ModelCell>, st_data::Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        let mut model = STTransRec::new(&d, &split, ModelConfig::test_small());
        model.train_epoch(&d);
        (Arc::new(ModelCell::new(model)), d, split)
    }

    #[test]
    fn batched_replies_match_recommend_top_k() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let batcher = MicroBatcher::start(
            cell.clone(),
            metrics.clone(),
            BatchConfig {
                window: Duration::from_millis(2),
                max_batch: 16,
                // A chunk cap smaller than one catalog forces the
                // chunked path; replies must still be exact.
                chunk_pairs: 16,
            },
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());

        // Concurrent submissions from several threads coalesce; each
        // reply must equal the offline recommend_top_k ranking.
        std::thread::scope(|scope| {
            let handles: Vec<_> = split
                .test_users
                .iter()
                .take(6)
                .map(|&user| {
                    let batcher = &batcher;
                    let candidates = candidates.clone();
                    scope.spawn(move || {
                        let reply = batcher
                            .submit(BatchRequest {
                                user,
                                candidates,
                                k: 5,
                            })
                            .expect("batcher alive");
                        (user, reply)
                    })
                })
                .collect();
            for h in handles {
                let (user, reply) = h.join().unwrap();
                assert_eq!(reply.epoch, 1);
                let expected =
                    recommend_top_k(&cell.current().model, &d, user, split.target_city, 5, &[]);
                assert_eq!(reply.recs, expected, "user {user:?}");
            }
        });
        assert_eq!(
            metrics
                .batched_requests
                .load(std::sync::atomic::Ordering::Relaxed),
            6
        );
        assert!(metrics.batches.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }

    #[test]
    fn max_batch_one_serves_one_at_a_time() {
        let (cell, d, split) = cell();
        let metrics = Arc::new(Metrics::new());
        let batcher = MicroBatcher::start(
            cell.clone(),
            metrics.clone(),
            BatchConfig {
                window: Duration::ZERO,
                max_batch: 1,
                ..BatchConfig::default()
            },
        );
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());
        for &user in split.test_users.iter().take(3) {
            let reply = batcher
                .submit(BatchRequest {
                    user,
                    candidates: candidates.clone(),
                    k: 3,
                })
                .unwrap();
            assert_eq!(reply.recs.len(), 3);
        }
        let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(batches, 3, "every request is its own batch");
    }

    #[test]
    fn k_zero_and_empty_candidates_are_harmless() {
        let (cell, d, split) = cell();
        let batcher = MicroBatcher::start(cell, Arc::new(Metrics::new()), BatchConfig::default());
        let candidates = Arc::new(d.pois_in_city(split.target_city).to_vec());
        let reply = batcher
            .submit(BatchRequest {
                user: split.test_users[0],
                candidates,
                k: 0,
            })
            .unwrap();
        assert!(reply.recs.is_empty());
        let reply = batcher
            .submit(BatchRequest {
                user: split.test_users[0],
                candidates: Arc::new(Vec::new()),
                k: 5,
            })
            .unwrap();
        assert!(reply.recs.is_empty());
    }
}
