//! Deterministic fault injection for overload and chaos testing.
//!
//! Two pieces:
//!
//! - [`FaultInjector`] — the runtime hooks the micro-batcher consults on
//!   its drain path: a **freeze gate** that holds the batcher off the
//!   queue (so admission control keeps running while the queue fills — a
//!   stand-in for a stalled scorer), a **forced-failure budget** (the
//!   next N batches answer every job with a scorer error instead of
//!   scoring), and a **latency pad** (every batch sleeps a base plus a
//!   seeded-RNG jitter before scoring, simulating a slow model). All
//!   hooks default to "off"; a server built without an injector pays one
//!   `Option` check per batch.
//! - [`FaultPlan`] — a seed-reproducible chaos schedule: a sequence of
//!   [`ChaosPhase`]s expanded from a single `u64` seed through the
//!   deterministic `st-rand` generator. The same seed always yields the
//!   same phases with the same parameters, so every chaos run's expected
//!   shed/expired/degraded/served counts are computable up front and two
//!   runs with the same seed must report identical counts.
//!
//! The injector carries no clock and no thread of its own: all timing
//! comes from whoever drives it (the chaos harness opens and closes the
//! gate around deterministic queue states), which is what makes the
//! chaos scenarios reproducible instead of schedule-dependent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Runtime fault hooks consulted by the batcher's drain path.
#[derive(Debug)]
pub struct FaultInjector {
    /// While set, the batcher leaves the queue untouched (admission and
    /// shedding keep running), as if the scorer had stalled.
    frozen: AtomicBool,
    /// Number of upcoming batches to fail outright instead of scoring.
    fail_batches: AtomicU64,
    /// Base pre-scoring sleep per batch, microseconds (0 = off).
    pad_base_us: AtomicU64,
    /// Upper bound on the seeded random extra pad, microseconds.
    pad_jitter_us: AtomicU64,
    /// Deterministic jitter source; consumed once per padded batch.
    rng: Mutex<SmallRng>,
}

impl FaultInjector {
    /// Creates an injector with every fault disabled. `seed` drives the
    /// latency-pad jitter sequence.
    pub fn new(seed: u64) -> Self {
        Self {
            frozen: AtomicBool::new(false),
            fail_batches: AtomicU64::new(0),
            pad_base_us: AtomicU64::new(0),
            pad_jitter_us: AtomicU64::new(0),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Closes the gate: the batcher stops draining until [`thaw`].
    ///
    /// [`thaw`]: FaultInjector::thaw
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Release);
    }

    /// Reopens the gate.
    pub fn thaw(&self) {
        self.frozen.store(false, Ordering::Release);
    }

    /// Whether the gate is currently closed.
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Arms the next `n` batches to fail with a scorer error.
    pub fn fail_next_batches(&self, n: u64) {
        self.fail_batches.store(n, Ordering::Release);
    }

    /// Consumes one unit of the failure budget; `true` means the caller
    /// must fail the batch it is about to score.
    pub fn take_batch_failure(&self) -> bool {
        self.fail_batches
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Sets the per-batch latency pad: every batch sleeps `base_us` plus
    /// a uniformly random `0..=jitter_us` before scoring. Zero both to
    /// disable.
    pub fn set_latency_pad(&self, base_us: u64, jitter_us: u64) {
        self.pad_base_us.store(base_us, Ordering::Release);
        self.pad_jitter_us.store(jitter_us, Ordering::Release);
    }

    /// The pad to apply to the batch about to score, if any. Draws one
    /// jitter sample from the seeded RNG per padded batch.
    pub fn next_pad(&self) -> Option<Duration> {
        let base = self.pad_base_us.load(Ordering::Acquire);
        let jitter = self.pad_jitter_us.load(Ordering::Acquire);
        if base == 0 && jitter == 0 {
            return None;
        }
        let extra = if jitter == 0 {
            0
        } else {
            self.rng
                .lock()
                .expect("fault rng poisoned")
                .gen_range(0..=jitter)
        };
        Some(Duration::from_micros(base + extra))
    }
}

/// One step of a chaos schedule. Counts below are in requests; the
/// harness derives the expected terminal outcome of every request in the
/// phase from the phase parameters alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhase {
    /// Plain traffic with distinct users: every request scores, `200`.
    Normal {
        /// Requests to issue.
        requests: usize,
    },
    /// Traffic under a latency-padded scorer: still every request `200`,
    /// but each batch sleeps `pad_us` (+ seeded jitter) first.
    PaddedTraffic {
        /// Requests to issue.
        requests: usize,
        /// Base pad per batch, microseconds.
        pad_us: u64,
    },
    /// Freeze the batcher, submit `queue capacity + excess` concurrent
    /// requests: exactly `capacity` enqueue, exactly `excess` shed with
    /// `429`, then the thaw serves the queued ones.
    Burst {
        /// Requests beyond the queue capacity (each one sheds).
        excess: usize,
    },
    /// Freeze the batcher, queue `queued` requests, hold the freeze past
    /// the deadline: every queued request expires with `503`.
    DeadlineExpiry {
        /// Requests to park in the queue (at most the capacity).
        queued: usize,
    },
    /// Warm the caches for `warm` keys, hot-reload (invalidating the
    /// fresh epoch-keyed cache), freeze, fill the queue to the
    /// high-watermark, then issue `hits` requests for warmed keys: all
    /// `hits` are answered degraded from the stale cache.
    DegradedServe {
        /// Keys to warm before the overload.
        warm: usize,
        /// Requests for warmed keys under overload (each one degrades).
        hits: usize,
    },
    /// Freeze, queue `queued` requests, hot-reload mid-burst, thaw: all
    /// queued requests are served (by whichever epoch scores them) —
    /// zero requests lost.
    ReloadMidBurst {
        /// Requests to park in the queue (at most the capacity).
        queued: usize,
    },
    /// Freeze, queue `queued` requests, arm a forced scorer failure,
    /// thaw: every queued request gets a clean `500`.
    ScorerFailure {
        /// Requests to park in the queue (at most one batch).
        queued: usize,
    },
}

/// A seed-reproducible chaos schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed that generated (and reproduces) this plan.
    pub seed: u64,
    /// Phases in execution order.
    pub phases: Vec<ChaosPhase>,
}

impl FaultPlan {
    /// Expands `seed` into a chaos schedule sized against the serving
    /// limits it will run under. The plan always covers every fault mode
    /// at least once (one deck of all seven phases), then appends
    /// `extra_phases` more drawn at random; order and parameters are
    /// fully determined by the seed.
    ///
    /// `queue_capacity` and `degrade_watermark` bound the phase
    /// parameters so each phase's outcome is exact: queued counts never
    /// exceed the capacity, burst excess is at least 1, and degraded
    /// phases never warm more keys than the watermark leaves room for.
    pub fn from_seed(
        seed: u64,
        queue_capacity: usize,
        degrade_watermark: usize,
        extra_phases: usize,
    ) -> Self {
        assert!(queue_capacity >= 2, "chaos needs a queue to fill");
        assert!(
            (1..=queue_capacity).contains(&degrade_watermark),
            "watermark must be within the queue capacity"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let draw = |rng: &mut SmallRng, idx: usize| -> ChaosPhase {
            match idx {
                0 => ChaosPhase::Normal {
                    requests: rng.gen_range(4..=12),
                },
                1 => ChaosPhase::PaddedTraffic {
                    requests: rng.gen_range(3..=8),
                    pad_us: rng.gen_range(200..=2_000),
                },
                2 => ChaosPhase::Burst {
                    excess: rng.gen_range(1..=queue_capacity),
                },
                3 => ChaosPhase::DeadlineExpiry {
                    queued: rng.gen_range(2..=queue_capacity),
                },
                4 => ChaosPhase::DegradedServe {
                    warm: rng.gen_range(2..=4),
                    hits: rng.gen_range(2..=6),
                },
                5 => ChaosPhase::ReloadMidBurst {
                    queued: rng.gen_range(2..=queue_capacity),
                },
                _ => ChaosPhase::ScorerFailure {
                    queued: rng.gen_range(2..=queue_capacity),
                },
            }
        };
        // One of each fault mode, shuffled deterministically...
        let mut phases: Vec<ChaosPhase> = (0..7).map(|i| draw(&mut rng, i)).collect();
        for i in (1..phases.len()).rev() {
            let j = rng.gen_range(0..=i);
            phases.swap(i, j);
        }
        // ...plus extra random phases for longer runs.
        for _ in 0..extra_phases {
            let idx = rng.gen_range(0usize..7);
            phases.push(draw(&mut rng, idx));
        }
        Self { seed, phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_defaults_are_inert() {
        let inj = FaultInjector::new(1);
        assert!(!inj.frozen());
        assert!(!inj.take_batch_failure());
        assert!(inj.next_pad().is_none());
    }

    #[test]
    fn freeze_thaw_and_failure_budget() {
        let inj = FaultInjector::new(1);
        inj.freeze();
        assert!(inj.frozen());
        inj.thaw();
        assert!(!inj.frozen());

        inj.fail_next_batches(2);
        assert!(inj.take_batch_failure());
        assert!(inj.take_batch_failure());
        assert!(!inj.take_batch_failure(), "budget exhausted");
    }

    #[test]
    fn latency_pad_jitter_is_seed_deterministic() {
        let a = FaultInjector::new(42);
        let b = FaultInjector::new(42);
        a.set_latency_pad(100, 50);
        b.set_latency_pad(100, 50);
        for _ in 0..32 {
            let (pa, pb) = (a.next_pad().unwrap(), b.next_pad().unwrap());
            assert_eq!(pa, pb);
            assert!((100..=150).contains(&(pa.as_micros() as u64)));
        }
        a.set_latency_pad(0, 0);
        assert!(a.next_pad().is_none());
    }

    #[test]
    fn plans_are_reproducible_and_cover_every_mode() {
        let a = FaultPlan::from_seed(7, 8, 6, 5);
        let b = FaultPlan::from_seed(7, 8, 6, 5);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.phases.len(), 12);
        let c = FaultPlan::from_seed(8, 8, 6, 5);
        assert_ne!(a, c, "different seed, different plan");

        // The base deck covers all seven fault modes.
        let short = FaultPlan::from_seed(3, 8, 6, 0);
        let mut seen = [false; 7];
        for p in &short.phases {
            let idx = match p {
                ChaosPhase::Normal { .. } => 0,
                ChaosPhase::PaddedTraffic { .. } => 1,
                ChaosPhase::Burst { .. } => 2,
                ChaosPhase::DeadlineExpiry { .. } => 3,
                ChaosPhase::DegradedServe { .. } => 4,
                ChaosPhase::ReloadMidBurst { .. } => 5,
                ChaosPhase::ScorerFailure { .. } => 6,
            };
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing a fault mode: {seen:?}");
    }

    #[test]
    fn plan_parameters_respect_serving_limits() {
        for seed in 0..50 {
            let plan = FaultPlan::from_seed(seed, 6, 4, 8);
            for phase in &plan.phases {
                match *phase {
                    ChaosPhase::Burst { excess } => {
                        assert!((1..=6).contains(&excess))
                    }
                    ChaosPhase::DeadlineExpiry { queued }
                    | ChaosPhase::ReloadMidBurst { queued }
                    | ChaosPhase::ScorerFailure { queued } => {
                        assert!((2..=6).contains(&queued))
                    }
                    ChaosPhase::DegradedServe { warm, hits } => {
                        assert!(warm >= 2 && hits >= 2)
                    }
                    ChaosPhase::Normal { requests }
                    | ChaosPhase::PaddedTraffic { requests, .. } => {
                        assert!(requests >= 3)
                    }
                }
            }
        }
    }
}
