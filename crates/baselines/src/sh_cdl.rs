//! SH-CDL — spatial-aware hierarchical collaborative deep learning
//! (Yin et al., TKDE'17).
//!
//! The original unifies a deep belief network over heterogeneous POI
//! features with matrix factorization. We reproduce its essential
//! mechanism at the fidelity the comparison needs: a deep autoencoder
//! (trained with `st-tensor`) compresses each POI's bag-of-words content
//! into a latent code, and user factors are learned against those codes
//! (plus a learned per-POI offset) by logistic SGD. Deep content
//! representations transfer across cities; the *user-preference* side —
//! unlike ST-TransRec — gets no distribution alignment, which is exactly
//! the gap the paper's comparison highlights.

use crate::mf::{bce, seeded, sigmoid, Factors};
use rand::rngs::SmallRng;
use rand::Rng;
use st_data::{Checkin, CityId, Dataset, PoiId, UserId};
use st_eval::Scorer;
use st_tensor::{Activation, Adam, Gradients, Matrix, Mlp, Optimizer, ParamStore, Tape};
use st_transrec_core::InteractionSampler;

/// SH-CDL hyperparameters.
#[derive(Debug, Clone)]
pub struct ShCdlConfig {
    /// Latent code width (also the user-factor width).
    pub dim: usize,
    /// Autoencoder epochs over POI content.
    pub ae_epochs: usize,
    /// Autoencoder batch size.
    pub ae_batch: usize,
    /// MF epochs.
    pub mf_epochs: usize,
    /// Interaction samples per MF epoch.
    pub samples_per_epoch: usize,
    /// Negatives per positive.
    pub negatives: usize,
    /// Autoencoder learning rate.
    pub ae_lr: f32,
    /// MF learning rate.
    pub mf_lr: f32,
    /// MF L2 regularization.
    pub reg: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShCdlConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            ae_epochs: 8,
            ae_batch: 64,
            mf_epochs: 6,
            samples_per_epoch: 20_000,
            negatives: 4,
            ae_lr: 1e-2,
            mf_lr: 0.05,
            reg: 1e-4,
            seed: 19,
        }
    }
}

/// The trained SH-CDL model.
#[derive(Debug)]
pub struct ShCdl {
    /// Frozen deep POI codes, one row per POI.
    codes: Vec<Vec<f32>>,
    users: Factors,
    poi_offset: Factors,
    poi_bias: Vec<f32>,
    dim: usize,
}

impl ShCdl {
    /// Fits the two stages: autoencoder on POI content, then MF on codes.
    pub fn fit(dataset: &Dataset, train: &[Checkin], config: &ShCdlConfig) -> Self {
        let mut rng = seeded(config.seed);
        let codes = train_autoencoder(dataset, config, &mut rng);

        let mut users = Factors::new(dataset.num_users(), config.dim, 0.1, &mut rng);
        let mut poi_offset = Factors::new(dataset.num_pois(), config.dim, 0.01, &mut rng);
        let mut poi_bias = vec![0.0f32; dataset.num_pois()];
        let cities: Vec<CityId> = dataset.cities().iter().map(|c| c.id).collect();
        let sampler = InteractionSampler::new(dataset, train, &cities);
        let per_epoch = config.samples_per_epoch / (1 + config.negatives);
        for _ in 0..config.mf_epochs {
            let batch = sampler.sample_batch(dataset, per_epoch, config.negatives, &mut rng);
            for i in 0..batch.len() {
                let (u, p, label) = (batch.users[i], batch.pois[i], batch.labels[i]);
                // Item representation: frozen deep code + learned offset.
                let z: f32 = users
                    .row(u)
                    .iter()
                    .zip(codes[p].iter().zip(poi_offset.row(p)))
                    .map(|(&uk, (&ck, &ok))| uk * (ck + ok))
                    .sum::<f32>()
                    + poi_bias[p];
                let prob = sigmoid(z);
                let err = prob - label;
                for (k, &ck) in codes[p].iter().enumerate() {
                    let uk = users.row(u)[k];
                    let item_k = ck + poi_offset.row(p)[k];
                    users.row_mut(u)[k] -= config.mf_lr * (err * item_k + config.reg * uk);
                    poi_offset.row_mut(p)[k] -=
                        config.mf_lr * (err * uk + config.reg * poi_offset.row(p)[k]);
                }
                poi_bias[p] -= config.mf_lr * (err + config.reg * poi_bias[p]);
                let _ = bce(prob, label);
            }
        }

        Self {
            codes,
            users,
            poi_offset,
            poi_bias,
            dim: config.dim,
        }
    }

    /// The deep content code of a POI.
    pub fn poi_code(&self, poi: PoiId) -> &[f32] {
        &self.codes[poi.idx()]
    }
}

/// Trains a `V -> 2*dim -> dim -> 2*dim -> V` tied-free autoencoder on
/// binary POI bag-of-words rows; returns the bottleneck codes.
fn train_autoencoder(dataset: &Dataset, config: &ShCdlConfig, rng: &mut SmallRng) -> Vec<Vec<f32>> {
    let vocab = dataset.vocab().len().max(1);
    let mut store = ParamStore::new();
    let encoder = Mlp::new(
        &mut store,
        "enc",
        &[vocab, 2 * config.dim, config.dim],
        Activation::Tanh,
        0.0,
        rng,
    );
    let decoder = Mlp::new(
        &mut store,
        "dec",
        &[config.dim, 2 * config.dim, vocab],
        Activation::Tanh,
        0.0,
        rng,
    );
    let mut opt = Adam::new(config.ae_lr);

    let content_row = |poi: &st_data::Poi| -> Vec<f32> {
        let mut row = vec![0.0f32; vocab];
        for w in &poi.words {
            row[w.idx()] = 1.0;
        }
        row
    };

    let n = dataset.num_pois();
    for _ in 0..config.ae_epochs {
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = rng.gen_range(i..n);
            order.swap(i, j);
        }
        for chunk in order.chunks(config.ae_batch) {
            let mut data = Vec::with_capacity(chunk.len() * vocab);
            for &p in chunk {
                data.extend(content_row(&dataset.pois()[p]));
            }
            let x = Matrix::from_vec(chunk.len(), vocab, data);
            let mut tape = Tape::new(&store);
            let xv = tape.input(x.clone());
            let code = encoder.forward_train(&mut tape, xv, rng);
            let logits = decoder.forward_train(&mut tape, code, rng);
            let loss = tape.bce_with_logits(logits, x);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
    }

    // Encode every POI with the trained encoder (inference mode).
    let mut codes = Vec::with_capacity(n);
    for chunk in (0..n).collect::<Vec<_>>().chunks(256) {
        let mut data = Vec::with_capacity(chunk.len() * vocab);
        for &p in chunk {
            data.extend(content_row(&dataset.pois()[p]));
        }
        let x = Matrix::from_vec(chunk.len(), vocab, data);
        let mut tape = Tape::new(&store);
        let xv = tape.input(x);
        let code = encoder.forward_inference(&mut tape, xv);
        let values = tape.value(code);
        for r in 0..chunk.len() {
            codes.push(values.row(r).to_vec());
        }
    }
    codes
}

impl Scorer for ShCdl {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        let u = self.users.row(user.idx());
        pois.iter()
            .map(|p| {
                let z: f32 = (0..self.dim)
                    .map(|k| u[k] * (self.codes[p.idx()][k] + self.poi_offset.row(p.idx())[k]))
                    .sum::<f32>()
                    + self.poi_bias[p.idx()];
                sigmoid(z)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;
    use st_eval::{evaluate, EvalConfig, Metric};

    fn quick() -> ShCdlConfig {
        ShCdlConfig {
            dim: 16,
            ae_epochs: 4,
            mf_epochs: 3,
            samples_per_epoch: 6_000,
            ..ShCdlConfig::default()
        }
    }

    fn setup() -> (Dataset, CrossingCitySplit) {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        (d, split)
    }

    #[test]
    fn codes_cluster_by_shared_words() {
        let (d, split) = setup();
        let m = ShCdl::fit(&d, &split.train, &quick());
        let cosine = |a: &[f32], b: &[f32]| -> f32 {
            let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        let share = |a: usize, b: usize| {
            d.pois()[a]
                .words
                .iter()
                .any(|w| d.pois()[b].words.contains(w))
        };
        let (mut s_sim, mut s_n, mut o_sim, mut o_n) = (0.0, 0, 0.0, 0);
        for a in 0..d.num_pois() {
            for b in (a + 1)..d.num_pois() {
                let c = cosine(m.poi_code(PoiId(a as u32)), m.poi_code(PoiId(b as u32)));
                if share(a, b) {
                    s_sim += c;
                    s_n += 1;
                } else {
                    o_sim += c;
                    o_n += 1;
                }
            }
        }
        let avg_s = s_sim / s_n.max(1) as f32;
        let avg_o = o_sim / o_n.max(1) as f32;
        assert!(
            avg_s > avg_o,
            "autoencoder codes ignore content: {avg_s} vs {avg_o}"
        );
    }

    #[test]
    fn beats_chance_on_crossing_city_eval() {
        let (d, split) = setup();
        let m = ShCdl::fit(&d, &split.train, &quick());
        let report = evaluate(&m, &d, &split, &EvalConfig::default());
        let r10 = report.get(Metric::Recall, 10);
        assert!(r10 > 0.1, "SH-CDL recall@10 = {r10}");
    }
}
