//! Topic-model baselines: a collapsed-Gibbs LDA engine with optional
//! city-partitioned topics, powering
//!
//! - **ST-LDA** (Yin et al., TKDE'16): plain LDA over user documents
//!   (the words of their visited POIs) mixed with a crowd-preference
//!   (popularity) prior — region-dependent interests collapse onto the
//!   target city's aggregate behaviour in our single-target setting.
//! - **CTLM** (Li, Gong & Zhang, TCYB'19): LDA whose topics split into
//!   *common* topics shared by all cities and *city-specific* topics only
//!   assignable to tokens generated in that city. Transfer scores use the
//!   common topics only, which is precisely the model's contribution.

use crate::mf::seeded;
use rand::Rng;
use st_data::{Checkin, CityId, Dataset, PoiId, UserId};
use st_eval::Scorer;

/// Configuration of the Gibbs-sampled topic models.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Number of *common* topics.
    pub common_topics: usize,
    /// City-specific topics per city (0 = plain LDA, i.e. ST-LDA).
    pub city_topics: usize,
    /// Dirichlet prior on document-topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic-word distributions.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
    /// Max tokens per user document (subsampled beyond this).
    pub max_tokens_per_user: usize,
    /// Crowd/popularity mixing weight in the final score.
    pub crowd_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopicConfig {
    fn default() -> Self {
        Self {
            common_topics: 16,
            city_topics: 0,
            alpha: 0.5,
            beta: 0.05,
            iterations: 30,
            max_tokens_per_user: 400,
            crowd_weight: 0.3,
            seed: 17,
        }
    }
}

impl TopicConfig {
    /// ST-LDA preset: all topics common.
    pub fn st_lda() -> Self {
        Self::default()
    }

    /// CTLM preset: common topics plus per-city specific topics that
    /// absorb city-dependent words.
    pub fn ctlm() -> Self {
        Self {
            common_topics: 16,
            city_topics: 4,
            ..Self::default()
        }
    }
}

/// A fitted topic-model recommender (either preset).
#[derive(Debug)]
pub struct TopicModel {
    /// Total topics: `common + num_cities * city_topics`.
    num_topics: usize,
    common_topics: usize,
    /// `theta[user][topic]`, renormalized over common topics for scoring.
    theta_common: Vec<Vec<f32>>,
    /// Per-POI common-topic affinity: mean of `phi_t[w]` over the POI's
    /// words, for each common topic.
    poi_topic_score: Vec<Vec<f32>>,
    /// Normalized target-city popularity (the crowd preference).
    crowd: Vec<f32>,
    crowd_weight: f32,
}

impl TopicModel {
    /// Fits the model on training check-ins with Gibbs sampling.
    pub fn fit(dataset: &Dataset, train: &[Checkin], target: CityId, config: &TopicConfig) -> Self {
        assert!(config.common_topics >= 1, "need at least one common topic");
        assert!(config.iterations >= 1);
        let mut rng = seeded(config.seed);
        let num_cities = dataset.cities().len();
        let num_topics = config.common_topics + num_cities * config.city_topics;
        let vocab = dataset.vocab().len().max(1);

        // Build user documents: (word, city-of-POI) tokens.
        let mut docs: Vec<Vec<(u32, u16)>> = vec![Vec::new(); dataset.num_users()];
        for c in train {
            let poi = dataset.poi(c.poi);
            for &w in &poi.words {
                docs[c.user.idx()].push((w.0, poi.city.0));
            }
        }
        // Subsample oversized documents (bounded Gibbs cost).
        for doc in &mut docs {
            if doc.len() > config.max_tokens_per_user {
                for i in 0..config.max_tokens_per_user {
                    let j = rng.gen_range(i..doc.len());
                    doc.swap(i, j);
                }
                doc.truncate(config.max_tokens_per_user);
            }
        }

        // Collapsed Gibbs state.
        let mut n_dk = vec![0u32; dataset.num_users() * num_topics];
        let mut n_kw = vec![0u32; num_topics * vocab];
        let mut n_k = vec![0u32; num_topics];
        let mut assign: Vec<Vec<u16>> = docs
            .iter()
            .map(|doc| doc.iter().map(|_| 0u16).collect())
            .collect();

        let allowed = |city: u16| -> (std::ops::Range<usize>, std::ops::Range<usize>) {
            let specific_start = config.common_topics + city as usize * config.city_topics;
            (
                0..config.common_topics,
                specific_start..specific_start + config.city_topics,
            )
        };

        // Random init restricted to allowed topics.
        for (d, doc) in docs.iter().enumerate() {
            for (i, &(w, city)) in doc.iter().enumerate() {
                let (common, specific) = allowed(city);
                let span = common.len() + specific.len();
                let pick = rng.gen_range(0..span);
                let t = if pick < common.len() {
                    common.start + pick
                } else {
                    specific.start + (pick - common.len())
                };
                assign[d][i] = t as u16;
                n_dk[d * num_topics + t] += 1;
                n_kw[t * vocab + w as usize] += 1;
                n_k[t] += 1;
            }
        }

        // Gibbs sweeps.
        let alpha = config.alpha;
        let beta = config.beta;
        let vbeta = vocab as f64 * beta;
        let mut weights: Vec<f64> = Vec::with_capacity(num_topics);
        for _ in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &(w, city)) in doc.iter().enumerate() {
                    let old = assign[d][i] as usize;
                    n_dk[d * num_topics + old] -= 1;
                    n_kw[old * vocab + w as usize] -= 1;
                    n_k[old] -= 1;

                    let (common, specific) = allowed(city);
                    weights.clear();
                    let mut push = |t: usize| {
                        let p = (n_dk[d * num_topics + t] as f64 + alpha)
                            * (n_kw[t * vocab + w as usize] as f64 + beta)
                            / (n_k[t] as f64 + vbeta);
                        weights.push(p);
                    };
                    for t in common.clone() {
                        push(t);
                    }
                    for t in specific.clone() {
                        push(t);
                    }
                    let total: f64 = weights.iter().sum();
                    let mut x = rng.gen::<f64>() * total;
                    let mut pick = weights.len() - 1;
                    for (j, &p) in weights.iter().enumerate() {
                        x -= p;
                        if x <= 0.0 {
                            pick = j;
                            break;
                        }
                    }
                    let t = if pick < common.len() {
                        common.start + pick
                    } else {
                        specific.start + (pick - common.len())
                    };
                    assign[d][i] = t as u16;
                    n_dk[d * num_topics + t] += 1;
                    n_kw[t * vocab + w as usize] += 1;
                    n_k[t] += 1;
                }
            }
        }

        // Posterior point estimates restricted to common topics.
        let c = config.common_topics;
        let theta_common: Vec<Vec<f32>> = (0..dataset.num_users())
            .map(|d| {
                let row = &n_dk[d * num_topics..d * num_topics + c];
                let total: f64 = row.iter().map(|&x| x as f64 + alpha).sum();
                row.iter()
                    .map(|&x| ((x as f64 + alpha) / total) as f32)
                    .collect()
            })
            .collect();
        let phi: Vec<Vec<f64>> = (0..c)
            .map(|t| {
                let row = &n_kw[t * vocab..(t + 1) * vocab];
                let denom = n_k[t] as f64 + vbeta;
                row.iter().map(|&x| (x as f64 + beta) / denom).collect()
            })
            .collect();

        // Per-POI topic affinity: mean phi over the POI's words,
        // normalized to a distribution over common topics. The
        // normalization is what lets CTLM profit from its topic split:
        // city-dependent words lose almost all their common-topic mass
        // to the city blocks, so after normalization a POI's *direction*
        // over common topics is driven by its transferable words, while
        // ST-LDA's direction stays polluted by city words.
        let poi_topic_score: Vec<Vec<f32>> = dataset
            .pois()
            .iter()
            .map(|p| {
                let raw: Vec<f64> = (0..c)
                    .map(|t| {
                        if p.words.is_empty() {
                            return 0.0;
                        }
                        p.words.iter().map(|w| phi[t][w.idx()]).sum::<f64>() / p.words.len() as f64
                    })
                    .collect();
                let total: f64 = raw.iter().sum();
                if total <= 0.0 {
                    return vec![0.0; c];
                }
                raw.into_iter().map(|x| (x / total) as f32).collect()
            })
            .collect();

        // Crowd preference: normalized target-city popularity in training.
        let mut crowd = vec![0f32; dataset.num_pois()];
        for ck in train {
            if dataset.poi(ck.poi).city == target {
                crowd[ck.poi.idx()] += 1.0;
            }
        }
        let max = crowd.iter().cloned().fold(1f32, f32::max);
        for v in &mut crowd {
            *v /= max;
        }

        Self {
            num_topics,
            common_topics: c,
            theta_common,
            poi_topic_score,
            crowd,
            crowd_weight: config.crowd_weight,
        }
    }

    /// Total topic count (common + all city blocks).
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Common topic count used for transfer scoring.
    pub fn common_topics(&self) -> usize {
        self.common_topics
    }

    /// A user's posterior over common topics.
    pub fn user_topics(&self, user: UserId) -> &[f32] {
        &self.theta_common[user.idx()]
    }
}

impl Scorer for TopicModel {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        let theta = &self.theta_common[user.idx()];
        pois.iter()
            .map(|p| {
                let affinity: f32 = theta
                    .iter()
                    .zip(&self.poi_topic_score[p.idx()])
                    .map(|(&t, &s)| t * s)
                    .sum();
                (1.0 - self.crowd_weight) * affinity + self.crowd_weight * self.crowd[p.idx()]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;
    use st_eval::{evaluate, EvalConfig, Metric};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        (d, split)
    }

    fn quick(mut cfg: TopicConfig) -> TopicConfig {
        cfg.iterations = 15;
        cfg
    }

    #[test]
    fn st_lda_has_no_city_topics() {
        let (d, split) = setup();
        let m = TopicModel::fit(&d, &split.train, CityId(1), &quick(TopicConfig::st_lda()));
        assert_eq!(m.num_topics(), m.common_topics());
    }

    #[test]
    fn ctlm_partitions_topics_per_city() {
        let (d, split) = setup();
        let cfg = quick(TopicConfig::ctlm());
        let m = TopicModel::fit(&d, &split.train, CityId(1), &cfg);
        assert_eq!(
            m.num_topics(),
            cfg.common_topics + d.cities().len() * cfg.city_topics
        );
        assert_eq!(m.common_topics(), cfg.common_topics);
    }

    #[test]
    fn user_topic_posteriors_are_distributions() {
        let (d, split) = setup();
        let m = TopicModel::fit(&d, &split.train, CityId(1), &quick(TopicConfig::st_lda()));
        for u in 0..d.num_users() as u32 {
            let theta = m.user_topics(UserId(u));
            let sum: f32 = theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "theta sums to {sum}");
            assert!(theta.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn both_presets_beat_chance() {
        let (d, split) = setup();
        for cfg in [TopicConfig::st_lda(), TopicConfig::ctlm()] {
            let m = TopicModel::fit(&d, &split.train, CityId(1), &quick(cfg));
            let report = evaluate(&m, &d, &split, &EvalConfig::default());
            let r10 = report.get(Metric::Recall, 10);
            assert!(r10 > 0.1, "topic model recall@10 = {r10}");
        }
    }

    #[test]
    fn gibbs_is_seed_deterministic() {
        let (d, split) = setup();
        let cfg = quick(TopicConfig::st_lda());
        let a = TopicModel::fit(&d, &split.train, CityId(1), &cfg);
        let b = TopicModel::fit(&d, &split.train, CityId(1), &cfg);
        assert_eq!(a.user_topics(UserId(0)), b.user_topics(UserId(0)));
    }
}
