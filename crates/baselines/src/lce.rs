//! LCE — Local Collective Embeddings (Saveski & Mantrach, RecSys'14).
//!
//! Joint factorization of the user-POI interaction matrix and the
//! POI-word content matrix with *shared POI factors*: interactions teach
//! `U V^T`, content teaches `V W^T`. The shared `V` lets content carry
//! cold-start POIs (here: all target-city POIs are cold for test users).

use crate::mf::{bce, seeded, sigmoid, Factors, MfCore};
use rand::Rng;
use st_data::{Checkin, CityId, Dataset, PoiId, UserId};
use st_eval::Scorer;
use st_transrec_core::InteractionSampler;

/// LCE hyperparameters.
#[derive(Debug, Clone)]
pub struct LceConfig {
    /// Latent dimensionality.
    pub dim: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Interaction samples per epoch.
    pub samples_per_epoch: usize,
    /// Negatives per positive (both matrices).
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub reg: f32,
    /// Weight of the content factorization term.
    pub content_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LceConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            epochs: 6,
            samples_per_epoch: 20_000,
            negatives: 4,
            lr: 0.05,
            reg: 1e-4,
            content_weight: 0.5,
            seed: 11,
        }
    }
}

/// The trained LCE model.
#[derive(Debug)]
pub struct Lce {
    mf: MfCore,
    words: Factors,
}

impl Lce {
    /// Fits LCE on the training split (all cities jointly; the shared POI
    /// factors tie target POIs to source preferences through words).
    pub fn fit(dataset: &Dataset, train: &[Checkin], config: &LceConfig) -> Self {
        let mut rng = seeded(config.seed);
        let cities: Vec<CityId> = dataset.cities().iter().map(|c| c.id).collect();
        let sampler = InteractionSampler::new(dataset, train, &cities);
        let mut mf = MfCore::new(
            dataset.num_users(),
            dataset.num_pois(),
            config.dim,
            &mut rng,
        );
        let mut words = Factors::new(dataset.vocab().len().max(1), config.dim, 0.1, &mut rng);

        // Flat (poi, word) edge list for content sampling.
        let edges: Vec<(u32, u32)> = dataset
            .pois()
            .iter()
            .flat_map(|p| p.words.iter().map(move |w| (p.id.0, w.0)))
            .collect();
        assert!(!edges.is_empty(), "dataset has no POI words");

        for _ in 0..config.epochs {
            // Interaction term.
            let batch = sampler.sample_batch(
                dataset,
                config.samples_per_epoch / (1 + config.negatives),
                config.negatives,
                &mut rng,
            );
            for i in 0..batch.len() {
                mf.sgd_update(
                    batch.users[i],
                    batch.pois[i],
                    batch.labels[i],
                    config.lr,
                    config.reg,
                );
            }
            // Content term: positive edges + uniform negative words.
            for _ in 0..config.samples_per_epoch / (1 + config.negatives) {
                let &(poi, word) = &edges[rng.gen_range(0..edges.len())];
                content_update(
                    &mut mf,
                    &mut words,
                    poi as usize,
                    word as usize,
                    1.0,
                    config,
                );
                for _ in 0..config.negatives {
                    let neg = rng.gen_range(0..words.count());
                    content_update(&mut mf, &mut words, poi as usize, neg, 0.0, config);
                }
            }
        }
        Self { mf, words }
    }

    /// The latent representation of a POI.
    pub fn poi_factor(&self, poi: PoiId) -> &[f32] {
        self.mf.pois.row(poi.idx())
    }

    /// Content reconstruction logit (for tests).
    pub fn content_logit(&self, poi: PoiId, word: usize) -> f32 {
        self.mf.pois.dot(poi.idx(), &self.words, word)
    }
}

fn content_update(
    mf: &mut MfCore,
    words: &mut Factors,
    poi: usize,
    word: usize,
    label: f32,
    config: &LceConfig,
) -> f32 {
    let z = mf.pois.dot(poi, words, word);
    let p = sigmoid(z);
    let err = config.content_weight * (p - label);
    let lr = config.lr;
    let reg = config.reg;
    for k in 0..words.dim() {
        let v = mf.pois.row(poi)[k];
        let w = words.row(word)[k];
        mf.pois.row_mut(poi)[k] -= lr * (err * w + reg * v);
        words.row_mut(word)[k] -= lr * (err * v + reg * w);
    }
    bce(p, label)
}

impl Scorer for Lce {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        pois.iter()
            .map(|p| sigmoid(self.mf.logit(user.idx(), p.idx())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;
    use st_eval::{evaluate, EvalConfig, Metric};

    fn quick_config() -> LceConfig {
        LceConfig {
            epochs: 3,
            samples_per_epoch: 4_000,
            ..LceConfig::default()
        }
    }

    #[test]
    fn content_factorization_learns_poi_word_structure() {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let m = Lce::fit(&d, &split.train, &quick_config());
        // A POI's own words should score higher than random words, on
        // average over many POIs.
        let mut own = 0.0;
        let mut other = 0.0;
        let mut n = 0;
        for poi in d.pois().iter().take(40) {
            for &w in poi.words.iter().take(2) {
                own += m.content_logit(poi.id, w.idx());
                other += m.content_logit(poi.id, (w.idx() + 13) % d.vocab().len());
                n += 1;
            }
        }
        assert!(
            own / n as f32 > other / n as f32,
            "content structure not learned: own {own}, other {other}"
        );
    }

    #[test]
    fn beats_chance_on_crossing_city_eval() {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let m = Lce::fit(&d, &split.train, &quick_config());
        let report = evaluate(&m, &d, &split, &EvalConfig::default());
        let r10 = report.get(Metric::Recall, 10);
        // ~100 negatives + small GT: chance recall@10 ~ 0.1.
        assert!(r10 > 0.1, "LCE recall@10 = {r10}");
    }
}
