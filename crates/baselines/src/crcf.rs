//! CRCF — cross-region collaborative filtering (Zhang & Wang, KAIS'16).
//!
//! Combines a *content interest* model (how well a POI's words match the
//! user's word profile) with a *location preference* (distance decay from
//! the user's assumed position in the new region). The paper notes
//! CRCF's weakness for crossing-city use: it "depends on the location of
//! users in a new city", which is unknown for a first-time visitor — we
//! follow the paper and anchor the visitor at the city centre, which
//! biases it toward downtown POIs.

use crate::mf::{profile_poi_cosine, user_word_profiles};
use st_data::{Checkin, CityId, Dataset, PoiId, UserId, WordId};
use st_eval::Scorer;
use st_geo::GeoPoint;

/// CRCF hyperparameters.
#[derive(Debug, Clone)]
pub struct CrcfConfig {
    /// Distance-decay scale in km for the location preference.
    pub decay_km: f64,
    /// Mixing weight of content interest vs location preference.
    pub content_weight: f32,
}

impl Default for CrcfConfig {
    fn default() -> Self {
        Self {
            decay_km: 8.0,
            content_weight: 0.7,
        }
    }
}

/// The fitted, self-contained CRCF scorer.
#[derive(Debug)]
pub struct Crcf {
    profiles: Vec<Vec<(u32, f32)>>,
    /// POI words snapshotted at fit time so scoring needs no dataset.
    poi_words: Vec<Vec<WordId>>,
    /// Per-POI location preference given the city-centre anchor
    /// (zero outside the target city).
    location_pref: Vec<f32>,
    content_weight: f32,
}

impl Crcf {
    /// Fits CRCF: word profiles from training check-ins plus the
    /// distance-decay prior toward `target` city's centre.
    pub fn fit(dataset: &Dataset, train: &[Checkin], target: CityId, config: CrcfConfig) -> Self {
        assert!(config.decay_km > 0.0, "decay scale must be positive");
        assert!((0.0..=1.0).contains(&config.content_weight));
        let profiles = user_word_profiles(dataset, train);
        let anchor: GeoPoint = dataset.city(target).bbox.center();
        let location_pref = dataset
            .pois()
            .iter()
            .map(|p| {
                if p.city == target {
                    (-(p.location.haversine_km(&anchor)) / config.decay_km).exp() as f32
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            profiles,
            poi_words: dataset.pois().iter().map(|p| p.words.clone()).collect(),
            location_pref,
            content_weight: config.content_weight,
        }
    }

    /// The location-preference component for a POI.
    pub fn location_preference(&self, poi: PoiId) -> f32 {
        self.location_pref[poi.idx()]
    }
}

impl Scorer for Crcf {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        let profile = &self.profiles[user.idx()];
        pois.iter()
            .map(|p| {
                let content = profile_poi_cosine(profile, &self.poi_words[p.idx()]);
                self.content_weight * content
                    + (1.0 - self.content_weight) * self.location_pref[p.idx()]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;
    use st_eval::{evaluate, EvalConfig, Metric};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        (d, split)
    }

    #[test]
    fn location_preference_decays_with_distance() {
        let (d, split) = setup();
        let m = Crcf::fit(&d, &split.train, CityId(1), CrcfConfig::default());
        let center = d.city(CityId(1)).bbox.center();
        let pois = d.pois_in_city(CityId(1));
        let (mut best, mut best_d) = (pois[0], f64::MAX);
        let (mut worst, mut worst_d) = (pois[0], 0.0f64);
        for &p in pois {
            let dist = d.poi(p).location.haversine_km(&center);
            if dist < best_d {
                best = p;
                best_d = dist;
            }
            if dist > worst_d {
                worst = p;
                worst_d = dist;
            }
        }
        assert!(m.location_preference(best) > m.location_preference(worst));
        // Source-city POIs get zero location preference.
        let src = d.pois_in_city(CityId(0))[0];
        assert_eq!(m.location_preference(src), 0.0);
    }

    #[test]
    fn content_matching_lifts_taste_aligned_pois() {
        let (d, split) = setup();
        let m = Crcf::fit(&d, &split.train, CityId(1), CrcfConfig::default());
        let report = evaluate(&m, &d, &split, &EvalConfig::default());
        let r10 = report.get(Metric::Recall, 10);
        assert!(r10 > 0.08, "CRCF recall@10 = {r10}");
    }

    #[test]
    fn scores_are_finite_for_all_users() {
        let (d, split) = setup();
        let m = Crcf::fit(&d, &split.train, CityId(1), CrcfConfig::default());
        let pois = d.pois_in_city(CityId(1));
        for u in 0..d.num_users() as u32 {
            let s = m.score_batch(UserId(u), pois);
            assert!(s.iter().all(|x| x.is_finite()));
        }
    }
}
