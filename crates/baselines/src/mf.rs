//! Shared logistic matrix-factorization machinery.
//!
//! Several baselines (LCE, PR-UIDT) are MF variants: latent user and POI
//! factors trained pointwise with sampled negatives under a logistic
//! loss. [`MfCore`] provides the factor storage and the SGD update; each
//! baseline composes it with its own extra structure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::{Checkin, Dataset};
use st_transrec_core::InteractionSampler;

/// Dense latent factors with per-row SGD updates.
#[derive(Debug, Clone)]
pub struct Factors {
    data: Vec<f32>,
    dim: usize,
}

impl Factors {
    /// `count` rows of dimension `dim`, Gaussian-initialized.
    pub fn new(count: usize, dim: usize, std: f32, rng: &mut SmallRng) -> Self {
        let data = (0..count * dim).map(|_| std * gaussian(rng)).collect();
        Self { data, dim }
    }

    /// Factor dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn count(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Dot product of rows from two factor matrices.
    #[inline]
    pub fn dot(&self, i: usize, other: &Factors, j: usize) -> f32 {
        self.row(i)
            .iter()
            .zip(other.row(j))
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

/// Logistic MF: `P(y=1 | u, v) = sigma(p_u . q_v + b_v)`.
#[derive(Debug, Clone)]
pub struct MfCore {
    /// User factors.
    pub users: Factors,
    /// POI factors.
    pub pois: Factors,
    /// POI popularity biases.
    pub poi_bias: Vec<f32>,
}

impl MfCore {
    /// Allocates factors for the dataset.
    pub fn new(num_users: usize, num_pois: usize, dim: usize, rng: &mut SmallRng) -> Self {
        Self {
            users: Factors::new(num_users, dim, 0.1, rng),
            pois: Factors::new(num_pois, dim, 0.1, rng),
            poi_bias: vec![0.0; num_pois],
        }
    }

    /// Prediction logit for a (user, POI) pair.
    #[inline]
    pub fn logit(&self, user: usize, poi: usize) -> f32 {
        self.users.dot(user, &self.pois, poi) + self.poi_bias[poi]
    }

    /// One pointwise logistic SGD update; returns the example loss.
    pub fn sgd_update(&mut self, user: usize, poi: usize, label: f32, lr: f32, reg: f32) -> f32 {
        let z = self.logit(user, poi);
        let p = sigmoid(z);
        let err = p - label; // d loss / d z
        let dim = self.users.dim();
        // Update rows in lockstep without aliasing.
        for k in 0..dim {
            let pu = self.users.row(user)[k];
            let qv = self.pois.row(poi)[k];
            self.users.row_mut(user)[k] -= lr * (err * qv + reg * pu);
            self.pois.row_mut(poi)[k] -= lr * (err * pu + reg * qv);
        }
        self.poi_bias[poi] -= lr * (err + reg * self.poi_bias[poi]);
        bce(p, label)
    }

    /// Trains on interaction samples for `epochs` passes over
    /// `samples_per_epoch` positives with `negatives` negatives each.
    /// Returns the mean loss of the final epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &mut self,
        dataset: &Dataset,
        sampler: &InteractionSampler,
        epochs: usize,
        samples_per_epoch: usize,
        negatives: usize,
        lr: f32,
        reg: f32,
        rng: &mut SmallRng,
    ) -> f32 {
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut n = 0usize;
            let mut remaining = samples_per_epoch;
            while remaining > 0 {
                let chunk = remaining.min(512);
                let batch = sampler.sample_batch(dataset, chunk, negatives, rng);
                for i in 0..batch.len() {
                    total +=
                        self.sgd_update(batch.users[i], batch.pois[i], batch.labels[i], lr, reg);
                    n += 1;
                }
                remaining -= chunk;
            }
            last = total / n.max(1) as f32;
        }
        last
    }
}

/// Overflow-safe sigmoid (shared by the classic-ML baselines).
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Pointwise binary cross-entropy with probability clamping.
#[inline]
pub fn bce(p: f32, label: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

/// Standard normal via Box-Muller.
pub fn gaussian(rng: &mut SmallRng) -> f32 {
    loop {
        let u1: f32 = rng.gen();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    }
}

/// Deterministic RNG for a baseline run.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Builds a per-user word-frequency profile from training check-ins,
/// L2-normalized (shared by the content-based baselines).
pub fn user_word_profiles(dataset: &Dataset, train: &[Checkin]) -> Vec<Vec<(u32, f32)>> {
    use std::collections::HashMap;
    let mut raw: Vec<HashMap<u32, f32>> = vec![HashMap::new(); dataset.num_users()];
    for c in train {
        for &w in &dataset.poi(c.poi).words {
            *raw[c.user.idx()].entry(w.0).or_default() += 1.0;
        }
    }
    raw.into_iter()
        .map(|m| {
            let norm: f32 = m.values().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
            let mut v: Vec<(u32, f32)> = m.into_iter().map(|(w, c)| (w, c / norm)).collect();
            v.sort_unstable_by_key(|&(w, _)| w);
            v
        })
        .collect()
}

/// Cosine similarity between a sparse profile and a POI's word set
/// (each POI word weighted 1/sqrt(|words|)).
pub fn profile_poi_cosine(profile: &[(u32, f32)], poi_words: &[st_data::WordId]) -> f32 {
    if poi_words.is_empty() {
        return 0.0;
    }
    let w = 1.0 / (poi_words.len() as f32).sqrt();
    let mut score = 0.0;
    for word in poi_words {
        if let Ok(pos) = profile.binary_search_by_key(&word.0, |&(w, _)| w) {
            score += profile[pos].1 * w;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit};

    #[test]
    fn sgd_moves_logit_toward_label() {
        let mut rng = seeded(0);
        let mut mf = MfCore::new(2, 2, 8, &mut rng);
        let before = mf.logit(0, 1);
        for _ in 0..50 {
            mf.sgd_update(0, 1, 1.0, 0.1, 0.0);
        }
        assert!(mf.logit(0, 1) > before + 1.0);
        for _ in 0..100 {
            mf.sgd_update(0, 1, 0.0, 0.1, 0.0);
        }
        assert!(sigmoid(mf.logit(0, 1)) < 0.3);
    }

    #[test]
    fn regularization_shrinks_factors() {
        let mut rng = seeded(1);
        let mut mf = MfCore::new(1, 1, 4, &mut rng);
        let norm_before: f32 = mf.users.row(0).iter().map(|x| x * x).sum();
        for _ in 0..200 {
            // label == prediction ~ 0.5 at z=0 keeps err small; reg dominates.
            let p = sigmoid(mf.logit(0, 0));
            mf.sgd_update(0, 0, p, 0.05, 0.1);
        }
        let norm_after: f32 = mf.users.row(0).iter().map(|x| x * x).sum();
        assert!(norm_after < norm_before);
    }

    #[test]
    fn training_reduces_loss_on_real_sampler() {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let sampler = InteractionSampler::new(&d, &split.train, &[CityId(0), CityId(1)]);
        let mut rng = seeded(2);
        let mut mf = MfCore::new(d.num_users(), d.num_pois(), 16, &mut rng);
        let first = mf.train(&d, &sampler, 1, 2000, 4, 0.05, 1e-4, &mut rng);
        let mut rng2 = seeded(3);
        let last = mf.train(&d, &sampler, 4, 2000, 4, 0.05, 1e-4, &mut rng2);
        assert!(last < first, "MF loss did not drop: {first} -> {last}");
    }

    #[test]
    fn word_profiles_are_normalized_and_sparse() {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let profiles = user_word_profiles(&d, &split.train);
        assert_eq!(profiles.len(), d.num_users());
        for p in &profiles {
            if p.is_empty() {
                continue;
            }
            let norm: f32 = p.iter().map(|&(_, v)| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-4, "profile norm {norm}");
            // Sorted by word id for binary search.
            assert!(p.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn cosine_favours_matching_words() {
        let profile = vec![(1u32, 0.8f32), (5, 0.6)];
        let hit = profile_poi_cosine(&profile, &[st_data::WordId(1)]);
        let miss = profile_poi_cosine(&profile, &[st_data::WordId(9)]);
        assert!(hit > 0.0);
        assert_eq!(miss, 0.0);
        assert_eq!(profile_poi_cosine(&profile, &[]), 0.0);
    }
}
