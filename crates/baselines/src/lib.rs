//! # st-baselines
//!
//! Re-implementations of the paper's eight comparison methods (Sec. 4.1),
//! all exposed through `st_eval::Scorer` so the harness evaluates every
//! method on identical candidate sets:
//!
//! | Method   | Family        | Module |
//! |----------|---------------|--------|
//! | ItemPop  | popularity    | [`ItemPop`] |
//! | LCE      | CF + content  | [`Lce`] |
//! | CRCF     | CF + location | [`Crcf`] |
//! | PR-UIDT  | CF + transfer | [`PrUidt`] |
//! | ST-LDA   | topic model   | [`TopicModel`] (`TopicConfig::st_lda`) |
//! | CTLM     | topic + transfer | [`TopicModel`] (`TopicConfig::ctlm`) |
//! | SH-CDL   | deep content  | [`ShCdl`] |
//! | PACE     | deep NCF + context | [`Pace`] |
//!
//! [`fit_method`] is the one-call factory the experiment harness uses.

#![warn(missing_docs)]

mod crcf;
mod itempop;
mod lce;
mod mf;
mod pace;
mod pr_uidt;
mod sh_cdl;
mod topic;

pub use crcf::{Crcf, CrcfConfig};
pub use itempop::ItemPop;
pub use lce::{Lce, LceConfig};
pub use mf::{Factors, MfCore};
pub use pace::{Pace, PaceConfig};
pub use pr_uidt::{PrUidt, PrUidtConfig};
pub use sh_cdl::{ShCdl, ShCdlConfig};
pub use topic::{TopicConfig, TopicModel};

use st_data::{CrossingCitySplit, Dataset};
use st_eval::Scorer;
use st_transrec_core::ModelConfig;

/// All comparison methods, in the paper's reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Popularity ranking.
    ItemPop,
    /// Local collective embeddings.
    Lce,
    /// Cross-region CF.
    Crcf,
    /// Interest drift & transfer MF.
    PrUidt,
    /// Spatial topic model.
    StLda,
    /// Common-topic transfer model.
    Ctlm,
    /// Deep content + MF.
    ShCdl,
    /// Deep NCF + context prediction.
    Pace,
}

impl Method {
    /// Every method, in reporting order.
    pub const ALL: [Method; 8] = [
        Method::ItemPop,
        Method::Lce,
        Method::Crcf,
        Method::PrUidt,
        Method::StLda,
        Method::Ctlm,
        Method::ShCdl,
        Method::Pace,
    ];

    /// The display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::ItemPop => "ItemPop",
            Method::Lce => "LCE",
            Method::Crcf => "CRCF",
            Method::PrUidt => "PR-UIDT",
            Method::StLda => "ST-LDA",
            Method::Ctlm => "CTLM",
            Method::ShCdl => "SH-CDL",
            Method::Pace => "PACE",
        }
    }
}

/// A rough training-effort budget so full runs and CI runs share code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Few epochs / iterations — unit tests and smoke runs.
    Quick,
    /// The paper-shaped effort level for the experiment harness.
    Full,
}

/// Fits `method` on the training split and returns it as a boxed scorer.
///
/// `neural_config` carries the per-dataset hyperparameters (embedding
/// size, tower shape...) that the paper shares between ST-TransRec and
/// the deep baselines ("the hyparameters and structure are set the same
/// to those of ST-TransRec").
pub fn fit_method(
    method: Method,
    dataset: &Dataset,
    split: &CrossingCitySplit,
    neural_config: &ModelConfig,
    budget: Budget,
) -> Box<dyn Scorer> {
    let (mf_epochs, mf_samples, gibbs_iters) = match budget {
        Budget::Quick => (3, 6_000, 15),
        Budget::Full => (8, 60_000, 40),
    };
    match method {
        Method::ItemPop => Box::new(ItemPop::fit(dataset, &split.train)),
        Method::Lce => {
            let cfg = LceConfig {
                dim: neural_config.embedding_dim.min(64),
                epochs: mf_epochs,
                samples_per_epoch: mf_samples,
                ..LceConfig::default()
            };
            Box::new(Lce::fit(dataset, &split.train, &cfg))
        }
        Method::Crcf => Box::new(Crcf::fit(
            dataset,
            &split.train,
            split.target_city,
            CrcfConfig::default(),
        )),
        Method::PrUidt => {
            let cfg = PrUidtConfig {
                dim: neural_config.embedding_dim.min(64),
                epochs: mf_epochs,
                samples_per_epoch: mf_samples,
                ..PrUidtConfig::default()
            };
            Box::new(PrUidt::fit(dataset, &split.train, &cfg))
        }
        Method::StLda => {
            let cfg = TopicConfig {
                iterations: gibbs_iters,
                ..TopicConfig::st_lda()
            };
            Box::new(TopicModel::fit(
                dataset,
                &split.train,
                split.target_city,
                &cfg,
            ))
        }
        Method::Ctlm => {
            let cfg = TopicConfig {
                iterations: gibbs_iters,
                ..TopicConfig::ctlm()
            };
            Box::new(TopicModel::fit(
                dataset,
                &split.train,
                split.target_city,
                &cfg,
            ))
        }
        Method::ShCdl => {
            let cfg = ShCdlConfig {
                dim: neural_config.embedding_dim.min(64),
                mf_epochs,
                samples_per_epoch: mf_samples,
                ae_epochs: match budget {
                    Budget::Quick => 4,
                    Budget::Full => 10,
                },
                ..ShCdlConfig::default()
            };
            Box::new(ShCdl::fit(dataset, &split.train, &cfg))
        }
        Method::Pace => {
            let mut cfg = PaceConfig::from_model(neural_config.clone());
            if budget == Budget::Quick {
                cfg.base.epochs = cfg.base.epochs.min(3);
            }
            let mut p = Pace::new(dataset, split, cfg);
            p.fit(dataset);
            Box::new(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, UserId};
    use st_eval::{evaluate, EvalConfig, Metric};

    #[test]
    fn method_names_are_unique() {
        let mut names: Vec<_> = Method::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Method::ALL.len());
    }

    #[test]
    fn factory_fits_every_method_above_chance() {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let ncfg = ModelConfig::test_small();
        for method in Method::ALL {
            let scorer = fit_method(method, &d, &split, &ncfg, Budget::Quick);
            let report = evaluate(&*scorer, &d, &split, &EvalConfig::default());
            let r10 = report.get(Metric::Recall, 10);
            assert!(
                r10 > 0.05,
                "{} failed sanity: recall@10 = {r10}",
                method.name()
            );
            // And the scorer is usable through the trait object.
            let pois = d.pois_in_city(CityId(1));
            let scores = scorer.score_batch(UserId(0), pois);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }
}
