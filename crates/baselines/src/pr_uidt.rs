//! PR-UIDT — cross-city MF with interest drift and transfer
//! (Ding et al., IMWUT'19).
//!
//! Each user has a *shared* factor (the transferable interest) plus a
//! *city-specific drift* factor; an interaction in city `c` is scored by
//! `(u_shared + u_drift[c]) . q_v`. Following the paper's adaptation for
//! our zero-overlap scenario ("this model makes users' preferences
//! learned from the source city directly match POIs in the target
//! city"), target-city scoring uses only the shared factor.

use crate::mf::{bce, seeded, sigmoid, Factors};
use st_data::{Checkin, CityId, Dataset, PoiId, UserId};
use st_eval::Scorer;
use st_transrec_core::InteractionSampler;

/// PR-UIDT hyperparameters.
#[derive(Debug, Clone)]
pub struct PrUidtConfig {
    /// Latent dimensionality.
    pub dim: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Interaction samples per epoch (positives + negatives).
    pub samples_per_epoch: usize,
    /// Negatives per positive.
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization; the drift factor gets `10x` this (it must stay
    /// small relative to the shared interest — the paper's drift prior).
    pub reg: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrUidtConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            epochs: 6,
            samples_per_epoch: 20_000,
            negatives: 4,
            lr: 0.05,
            reg: 1e-4,
            seed: 13,
        }
    }
}

/// The trained PR-UIDT model.
#[derive(Debug)]
pub struct PrUidt {
    shared: Factors,
    /// One drift block per city, laid out `[city][user]`.
    drift: Vec<Factors>,
    pois: Factors,
    poi_bias: Vec<f32>,
}

impl PrUidt {
    /// Fits on all training interactions, learning per-city drift.
    pub fn fit(dataset: &Dataset, train: &[Checkin], config: &PrUidtConfig) -> Self {
        let mut rng = seeded(config.seed);
        let mut model = Self {
            shared: Factors::new(dataset.num_users(), config.dim, 0.1, &mut rng),
            drift: (0..dataset.cities().len())
                .map(|_| Factors::new(dataset.num_users(), config.dim, 0.01, &mut rng))
                .collect(),
            pois: Factors::new(dataset.num_pois(), config.dim, 0.1, &mut rng),
            poi_bias: vec![0.0; dataset.num_pois()],
        };
        let cities: Vec<CityId> = dataset.cities().iter().map(|c| c.id).collect();
        let sampler = InteractionSampler::new(dataset, train, &cities);
        let per_epoch = config.samples_per_epoch / (1 + config.negatives);
        for _ in 0..config.epochs {
            let batch = sampler.sample_batch(dataset, per_epoch, config.negatives, &mut rng);
            for i in 0..batch.len() {
                let city = dataset.poi(PoiId(batch.pois[i] as u32)).city;
                model.sgd_update(batch.users[i], batch.pois[i], city, batch.labels[i], config);
            }
        }
        model
    }

    fn train_logit(&self, user: usize, poi: usize, city: CityId) -> f32 {
        let s = self.shared.dot(user, &self.pois, poi);
        let d = self.drift[city.idx()].dot(user, &self.pois, poi);
        s + d + self.poi_bias[poi]
    }

    fn sgd_update(
        &mut self,
        user: usize,
        poi: usize,
        city: CityId,
        label: f32,
        config: &PrUidtConfig,
    ) -> f32 {
        let z = self.train_logit(user, poi, city);
        let p = sigmoid(z);
        let err = p - label;
        let (lr, reg) = (config.lr, config.reg);
        let drift = &mut self.drift[city.idx()];
        for k in 0..config.dim {
            let su = self.shared.row(user)[k];
            let du = drift.row(user)[k];
            let qv = self.pois.row(poi)[k];
            self.shared.row_mut(user)[k] -= lr * (err * qv + reg * su);
            drift.row_mut(user)[k] -= lr * (err * qv + 10.0 * reg * du);
            self.pois.row_mut(poi)[k] -= lr * (err * (su + du) + reg * qv);
        }
        self.poi_bias[poi] -= lr * (err + reg * self.poi_bias[poi]);
        bce(p, label)
    }

    /// L2 norm of a user's shared factor (diagnostics).
    pub fn shared_norm(&self, user: UserId) -> f32 {
        self.shared
            .row(user.idx())
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt()
    }

    /// L2 norm of a user's drift factor in a city (diagnostics).
    pub fn drift_norm(&self, user: UserId, city: CityId) -> f32 {
        self.drift[city.idx()]
            .row(user.idx())
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt()
    }
}

impl Scorer for PrUidt {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        // Evaluation ranks target-city POIs, where no drift was ever
        // observed: score with the shared (transferable) factor only.
        pois.iter()
            .map(|p| {
                sigmoid(self.shared.dot(user.idx(), &self.pois, p.idx()) + self.poi_bias[p.idx()])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;
    use st_eval::{evaluate, EvalConfig, Metric};

    fn quick() -> PrUidtConfig {
        PrUidtConfig {
            epochs: 4,
            samples_per_epoch: 6_000,
            ..PrUidtConfig::default()
        }
    }

    fn setup() -> (Dataset, CrossingCitySplit) {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        (d, split)
    }

    #[test]
    fn drift_stays_smaller_than_shared_interest() {
        let (d, split) = setup();
        let m = PrUidt::fit(&d, &split.train, &quick());
        let mut shared_sum = 0.0;
        let mut drift_sum = 0.0;
        for u in 0..d.num_users() as u32 {
            shared_sum += m.shared_norm(UserId(u));
            drift_sum += m.drift_norm(UserId(u), CityId(0));
        }
        assert!(
            drift_sum < shared_sum,
            "drift ({drift_sum}) should stay below shared ({shared_sum})"
        );
    }

    #[test]
    fn transfers_above_chance() {
        let (d, split) = setup();
        let m = PrUidt::fit(&d, &split.train, &quick());
        let report = evaluate(&m, &d, &split, &EvalConfig::default());
        let r10 = report.get(Metric::Recall, 10);
        assert!(r10 > 0.1, "PR-UIDT recall@10 = {r10}");
    }

    #[test]
    fn scoring_is_deterministic() {
        let (d, split) = setup();
        let m = PrUidt::fit(&d, &split.train, &quick());
        let pois = d.pois_in_city(CityId(1));
        assert_eq!(
            m.score_batch(UserId(1), pois),
            m.score_batch(UserId(1), pois)
        );
    }
}
