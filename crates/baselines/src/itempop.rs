//! ItemPop: rank POIs by training-set popularity (check-in count).
//!
//! The weakest baseline of Sec. 4.1 — no personalization at all — but a
//! strong sanity anchor: every personalized method must beat it.

use st_data::{Checkin, Dataset, PoiId, UserId};
use st_eval::Scorer;

/// Popularity-based recommender.
#[derive(Debug, Clone)]
pub struct ItemPop {
    popularity: Vec<f32>,
}

impl ItemPop {
    /// Counts training check-ins per POI.
    pub fn fit(dataset: &Dataset, train: &[Checkin]) -> Self {
        let mut counts = vec![0usize; dataset.num_pois()];
        for c in train {
            counts[c.poi.idx()] += 1;
        }
        let max = *counts.iter().max().unwrap_or(&1) as f32;
        Self {
            popularity: counts.iter().map(|&c| c as f32 / max.max(1.0)).collect(),
        }
    }

    /// Normalized popularity of a POI.
    pub fn popularity(&self, poi: PoiId) -> f32 {
        self.popularity[poi.idx()]
    }
}

impl Scorer for ItemPop {
    fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
        pois.iter().map(|p| self.popularity[p.idx()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit};

    #[test]
    fn ranks_by_training_popularity_only() {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let m = ItemPop::fit(&d, &split.train);
        // Score is user-independent.
        let pois = d.pois_in_city(CityId(1));
        let a = m.score_batch(UserId(0), pois);
        let b = m.score_batch(UserId(5), pois);
        assert_eq!(a, b);
        // And proportional to training counts.
        let mut counts = vec![0usize; d.num_pois()];
        for c in &split.train {
            counts[c.poi.idx()] += 1;
        }
        for (i, &p) in pois.iter().enumerate() {
            for (j, &q) in pois.iter().enumerate() {
                if counts[p.idx()] > counts[q.idx()] {
                    assert!(a[i] > a[j]);
                }
            }
        }
    }

    #[test]
    fn beats_random_on_synthetic_data() {
        use st_eval::{evaluate, EvalConfig, Metric};
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        let m = ItemPop::fit(&d, &split.train);
        let report = evaluate(&m, &d, &split, &EvalConfig::default());
        // Popularity skew means ItemPop clearly beats the ~10% random
        // baseline at recall@10 — but it stays far from oracle.
        let r10 = report.get(Metric::Recall, 10);
        assert!(r10 > 0.10, "ItemPop recall@10 too low: {r10}");
        assert!(r10 < 0.95);
    }
}
