//! PACE — Preference And Context Embedding (Yang et al., KDD'17).
//!
//! PACE extends neural collaborative filtering by jointly predicting the
//! *context* of POIs while modeling user-POI interactions. Architecturally
//! it is ST-TransRec minus the two transfer mechanisms: no MMD alignment
//! and no density-based resampling; its context prediction additionally
//! covers *spatial* neighbours within a limited distance (the paper's
//! critique: "it just exploited the geographical relations among POIs
//! within a limited distance").
//!
//! We therefore build PACE from the core crate's components — the same
//! NCF tower and word-context skipgram, with the MMD/resampling variant
//! disabled — plus a POI-POI neighbour-context loss of our own.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::{CrossingCitySplit, Dataset, PoiId, UserId};
use st_eval::Scorer;
use st_tensor::{Gradients, Matrix, Tape};
use st_transrec_core::{ModelConfig, STTransRec, Variant};

/// PACE hyperparameters.
#[derive(Debug, Clone)]
pub struct PaceConfig {
    /// Base neural configuration (tower, embeddings, epochs...).
    pub base: ModelConfig,
    /// Neighbour-context radius in km ("limited distance").
    pub neighbor_km: f64,
    /// Max spatial neighbours kept per POI.
    pub max_neighbors: usize,
    /// Spatial-context pairs per training step.
    pub spatial_batch: usize,
}

impl PaceConfig {
    /// Derives the PACE setup from an ST-TransRec configuration (the
    /// paper sets PACE's hyperparameters "the same to those of
    /// ST-TransRec").
    pub fn from_model(base: ModelConfig) -> Self {
        Self {
            base: base.with_variant(Variant::NoMmd),
            neighbor_km: 2.0,
            max_neighbors: 10,
            spatial_batch: 64,
        }
    }
}

/// The trained PACE model.
pub struct Pace {
    inner: STTransRec,
    /// Flat spatial-context edges (poi, neighbour poi).
    spatial_edges: Vec<(u32, u32)>,
    config: PaceConfig,
}

impl Pace {
    /// Builds PACE over the training split.
    pub fn new(dataset: &Dataset, split: &CrossingCitySplit, config: PaceConfig) -> Self {
        let inner = STTransRec::new(dataset, split, config.base.clone());
        let spatial_edges = build_spatial_edges(dataset, config.neighbor_km, config.max_neighbors);
        Self {
            inner,
            spatial_edges,
            config,
        }
    }

    /// Number of spatial context edges discovered.
    pub fn num_spatial_edges(&self) -> usize {
        self.spatial_edges.len()
    }

    /// Trains for the configured number of epochs: the inner NCF + word
    /// context losses, plus the spatial neighbour-context loss.
    pub fn fit(&mut self, dataset: &Dataset) {
        let epochs = self.config.base.epochs;
        let steps = self.inner.steps_per_epoch();
        let mut rng = SmallRng::seed_from_u64(self.config.base.seed ^ 0x9ACE);
        for _ in 0..epochs {
            for _ in 0..steps {
                self.inner.train_step(dataset);
                self.spatial_step(dataset, &mut rng);
            }
        }
    }

    /// One skipgram-style step over spatial neighbour pairs: neighbouring
    /// POIs should have similar embeddings; random POIs should not.
    fn spatial_step(&mut self, dataset: &Dataset, rng: &mut SmallRng) {
        if self.spatial_edges.is_empty() {
            return;
        }
        let table = self.inner.params();
        let poi_table = {
            // The POI table is the first embedding registered after users;
            // resolve by name for robustness.
            table
                .iter()
                .find(|(_, name, _)| *name == "poi_emb")
                .map(|(id, _, _)| id)
                .expect("poi embedding registered")
        };
        let n = self.config.spatial_batch;
        let mut a_rows = Vec::with_capacity(2 * n);
        let mut b_rows = Vec::with_capacity(2 * n);
        let mut labels = Vec::with_capacity(2 * n);
        for _ in 0..n {
            let &(a, b) = &self.spatial_edges[rng.gen_range(0..self.spatial_edges.len())];
            a_rows.push(a as usize);
            b_rows.push(b as usize);
            labels.push(1.0);
            a_rows.push(a as usize);
            b_rows.push(rng.gen_range(0..dataset.num_pois()));
            labels.push(0.0);
        }
        let mut grads = Gradients::zeros_like(self.inner.params());
        {
            let mut tape = Tape::new(self.inner.params());
            let av = tape.gather_param(poi_table, &a_rows);
            let bv = tape.gather_param(poi_table, &b_rows);
            let logits = tape.row_dot(av, bv);
            let m = labels.len();
            let loss = tape.bce_with_logits(logits, Matrix::from_vec(m, 1, labels));
            tape.backward(loss, &mut grads);
        }
        self.inner.apply(&grads);
    }
}

/// POIs within `radius_km` in the same city become mutual context
/// (capped at `max_neighbors`, nearest kept). Uses a coarse lat/lon hash
/// grid so construction is near-linear instead of all-pairs.
fn build_spatial_edges(dataset: &Dataset, radius_km: f64, max_neighbors: usize) -> Vec<(u32, u32)> {
    use std::collections::HashMap;
    // ~1km per 0.009 degrees latitude; bucket at the radius scale.
    let bucket_deg = (radius_km / 111.0).max(1e-4);
    let mut buckets: HashMap<(u16, i32, i32), Vec<u32>> = HashMap::new();
    for p in dataset.pois() {
        let key = (
            p.city.0,
            (p.location.lat / bucket_deg) as i32,
            (p.location.lon / bucket_deg) as i32,
        );
        buckets.entry(key).or_default().push(p.id.0);
    }
    let mut edges = Vec::new();
    for p in dataset.pois() {
        let (bx, by) = (
            (p.location.lat / bucket_deg) as i32,
            (p.location.lon / bucket_deg) as i32,
        );
        let mut neigh: Vec<(f64, u32)> = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cands) = buckets.get(&(p.city.0, bx + dx, by + dy)) {
                    for &q in cands {
                        if q == p.id.0 {
                            continue;
                        }
                        let dist = p.location.haversine_km(&dataset.poi(PoiId(q)).location);
                        if dist <= radius_km {
                            neigh.push((dist, q));
                        }
                    }
                }
            }
        }
        neigh.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        for &(_, q) in neigh.iter().take(max_neighbors) {
            edges.push((p.id.0, q));
        }
    }
    edges
}

impl Scorer for Pace {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        self.inner.score_batch(user, pois)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CityId;
    use st_eval::{evaluate, EvalConfig, Metric};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        (d, split)
    }

    #[test]
    fn pace_disables_mmd_but_keeps_text() {
        let (d, split) = setup();
        let cfg = PaceConfig::from_model(ModelConfig::test_small());
        assert!(!cfg.base.use_mmd());
        assert!(cfg.base.use_text());
        let p = Pace::new(&d, &split, cfg);
        assert!(p.num_spatial_edges() > 0, "no spatial context found");
    }

    #[test]
    fn spatial_edges_are_same_city_and_within_radius() {
        let (d, _) = setup();
        let edges = build_spatial_edges(&d, 2.0, 5);
        for &(a, b) in &edges {
            let (pa, pb) = (d.poi(PoiId(a)), d.poi(PoiId(b)));
            assert_eq!(pa.city, pb.city);
            assert!(pa.location.haversine_km(&pb.location) <= 2.0 + 1e-9);
        }
        // Cap respected.
        let mut counts = std::collections::HashMap::new();
        for &(a, _) in &edges {
            *counts.entry(a).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 5));
    }

    #[test]
    fn pace_trains_and_beats_chance() {
        let (d, split) = setup();
        let mut cfg = PaceConfig::from_model(ModelConfig::test_small());
        cfg.base.epochs = 3;
        let mut p = Pace::new(&d, &split, cfg);
        p.fit(&d);
        let report = evaluate(&p, &d, &split, &EvalConfig::default());
        let r10 = report.get(Metric::Recall, 10);
        assert!(r10 > 0.15, "PACE recall@10 = {r10}");
    }
}
