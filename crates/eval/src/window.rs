//! Windowed shadow evaluation over recent check-in events.
//!
//! The offline protocol ([`crate::evaluate`]) ranks held-out
//! crossing-city visits; the online loop needs something different: a
//! cheap, deterministic score for "how well would this candidate model
//! serve the traffic we just saw?". [`evaluate_window`] answers that
//! over a held-out window of recent events — for each event, the true
//! POI is ranked against seeded same-city negatives the scorer also
//! sees, yielding hit-rate@k and MRR.
//!
//! Determinism is the load-bearing property: the negative sets depend
//! only on `(events, seed)`, never on the scorer, so a candidate and the
//! serving baseline are compared on *identical* candidate lists and the
//! publish gate's accept/reject decision is reproducible run to run.

use crate::Scorer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::{Checkin, Dataset, PoiId};

/// Shadow-evaluation knobs.
#[derive(Debug, Clone)]
pub struct WindowEvalConfig {
    /// Same-city negatives ranked against each event's true POI.
    pub negatives: usize,
    /// Cutoff for the hit-rate metric.
    pub k: usize,
    /// Negative-sampling seed: fixed seed + fixed window = identical
    /// candidates for every scorer evaluated on that window.
    pub seed: u64,
}

impl Default for WindowEvalConfig {
    fn default() -> Self {
        Self {
            negatives: 50,
            k: 10,
            seed: 0x5EAD,
        }
    }
}

/// Result of one windowed shadow evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowReport {
    /// Events evaluated (zero for an empty window).
    pub events: usize,
    /// Fraction of events whose true POI ranked in the top `k`.
    pub hit_rate: f64,
    /// Mean reciprocal rank of the true POI.
    pub mrr: f64,
}

/// Ranks each event's true POI against `config.negatives` seeded
/// distinct same-city POIs (the true POI excluded from the negatives)
/// and aggregates hit-rate@k and MRR over the window.
///
/// Ties rank the true POI first, matching the stable ordering of
/// [`crate::rank_metrics`]. An empty window reports zero events and
/// zero metrics — callers gate on `events` before trusting the rates.
pub fn evaluate_window(
    scorer: &dyn Scorer,
    dataset: &Dataset,
    events: &[Checkin],
    config: &WindowEvalConfig,
) -> WindowReport {
    assert!(config.negatives > 0, "need at least one negative");
    assert!(config.k > 0, "need a positive cutoff");
    if events.is_empty() {
        return WindowReport {
            events: 0,
            hit_rate: 0.0,
            mrr: 0.0,
        };
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut hits = 0usize;
    let mut rr_sum = 0.0f64;
    let mut candidates: Vec<PoiId> = Vec::with_capacity(config.negatives + 1);
    for event in events {
        let truth = event.poi;
        let city_pois = dataset.pois_in_city(dataset.poi(truth).city);
        candidates.clear();
        candidates.push(truth);
        sample_negatives(
            city_pois,
            truth,
            config.negatives,
            &mut rng,
            &mut candidates,
        );
        let scores = scorer.score_batch(event.user, &candidates);
        debug_assert_eq!(scores.len(), candidates.len());
        // Rank of the truth (index 0) under descending score, ties
        // resolved in candidate order — i.e. in the truth's favour.
        let rank = scores[1..].iter().filter(|&&s| s > scores[0]).count();
        if rank < config.k {
            hits += 1;
        }
        rr_sum += 1.0 / (rank + 1) as f64;
    }
    let n = events.len() as f64;
    WindowReport {
        events: events.len(),
        hit_rate: hits as f64 / n,
        mrr: rr_sum / n,
    }
}

/// Appends up to `negatives` distinct same-city POIs (excluding `truth`)
/// via partial Fisher-Yates over a scratch index vector.
fn sample_negatives(
    city_pois: &[PoiId],
    truth: PoiId,
    negatives: usize,
    rng: &mut SmallRng,
    out: &mut Vec<PoiId>,
) {
    let pool: Vec<PoiId> = city_pois.iter().copied().filter(|&p| p != truth).collect();
    let k = negatives.min(pool.len());
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
        out.push(pool[idx[i]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, CheckinStream, SynthConfig};
    use st_data::UserId;
    use std::collections::HashMap;

    fn setup() -> (st_data::Dataset, Vec<Checkin>) {
        let (d, _) = generate(&SynthConfig::tiny());
        let events = CheckinStream::new(&d, 11).next_batch(60);
        (d, events)
    }

    /// Scores 1.0 for each user's known true POI, 0.0 otherwise. Only
    /// valid for windows where each user appears once.
    struct Oracle {
        truth: HashMap<u32, PoiId>,
        invert: bool,
    }

    impl Scorer for Oracle {
        fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
            pois.iter()
                .map(|p| {
                    let hit = self.truth.get(&user.0) == Some(p);
                    let s = if hit { 1.0 } else { 0.0 };
                    if self.invert {
                        -s
                    } else {
                        s
                    }
                })
                .collect()
        }
    }

    fn dedup_by_user(events: Vec<Checkin>) -> Vec<Checkin> {
        let mut seen = std::collections::HashSet::new();
        events
            .into_iter()
            .filter(|e| seen.insert(e.user.0))
            .collect()
    }

    #[test]
    fn oracle_scores_perfectly_and_anti_oracle_misses() {
        let (d, events) = setup();
        let events = dedup_by_user(events);
        let truth: HashMap<u32, PoiId> = events.iter().map(|e| (e.user.0, e.poi)).collect();
        let cfg = WindowEvalConfig::default();

        let report = evaluate_window(
            &Oracle {
                truth: truth.clone(),
                invert: false,
            },
            &d,
            &events,
            &cfg,
        );
        assert_eq!(report.events, events.len());
        assert_eq!(report.hit_rate, 1.0);
        assert_eq!(report.mrr, 1.0);

        let anti = evaluate_window(
            &Oracle {
                truth,
                invert: true,
            },
            &d,
            &events,
            &cfg,
        );
        assert!(
            anti.hit_rate < 0.35,
            "anti-oracle hit rate {}",
            anti.hit_rate
        );
        assert!(anti.mrr < 0.5, "anti-oracle mrr {}", anti.mrr);
    }

    #[test]
    fn same_seed_same_window_is_deterministic() {
        struct Hash;
        impl Scorer for Hash {
            fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
                pois.iter()
                    .map(|p| ((p.0 ^ user.0).wrapping_mul(2654435761) % 997) as f32)
                    .collect()
            }
        }
        let (d, events) = setup();
        let cfg = WindowEvalConfig::default();
        let a = evaluate_window(&Hash, &d, &events, &cfg);
        let b = evaluate_window(&Hash, &d, &events, &cfg);
        assert_eq!(a, b);
        let c = evaluate_window(
            &Hash,
            &d,
            &events,
            &WindowEvalConfig {
                seed: 1,
                ..cfg.clone()
            },
        );
        assert_eq!(a.events, c.events); // same window, different negatives
    }

    #[test]
    fn candidates_are_same_city_distinct_and_truth_first() {
        use std::sync::Mutex;
        struct Recording<'a> {
            dataset: &'a st_data::Dataset,
            windows: Mutex<Vec<Vec<PoiId>>>,
        }
        impl Scorer for Recording<'_> {
            fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
                let city = self.dataset.poi(pois[0]).city;
                for &p in pois {
                    assert_eq!(self.dataset.poi(p).city, city, "negative from another city");
                }
                let mut sorted = pois.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), pois.len(), "duplicate candidate");
                self.windows.lock().unwrap().push(pois.to_vec());
                vec![0.0; pois.len()]
            }
        }
        let (d, events) = setup();
        let rec = Recording {
            dataset: &d,
            windows: Mutex::new(Vec::new()),
        };
        let cfg = WindowEvalConfig {
            negatives: 20,
            ..WindowEvalConfig::default()
        };
        evaluate_window(&rec, &d, &events, &cfg);
        let windows = rec.windows.into_inner().unwrap();
        assert_eq!(windows.len(), events.len());
        for (w, e) in windows.iter().zip(&events) {
            assert_eq!(w[0], e.poi, "truth must lead the candidate list");
            assert_eq!(w.len(), 21);
        }
    }

    #[test]
    fn empty_window_reports_zero_events() {
        struct Zero;
        impl Scorer for Zero {
            fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
                vec![0.0; pois.len()]
            }
        }
        let (d, _) = setup();
        let r = evaluate_window(&Zero, &d, &[], &WindowEvalConfig::default());
        assert_eq!(r.events, 0);
        assert_eq!(r.hit_rate, 0.0);
    }
}
