//! # st-eval
//!
//! Evaluation substrate: the four ranking metrics the paper reports
//! (Recall@k, Precision@k, NDCG@k, MAP@k) and its 100-sampled-negative
//! ranking protocol over crossing-city test users (Sec. 4.1).
//!
//! Every method — ST-TransRec, its ablations, and all eight baselines —
//! is evaluated through the same [`Scorer`] trait with a fixed negative
//! sampling seed, so candidate sets are identical across methods.

#![warn(missing_docs)]

mod bootstrap;
mod metrics;
mod protocol;
mod window;

pub use bootstrap::{bootstrap_ci, ConfidenceInterval};
pub use metrics::{
    metric_at_k, overlap_at_k, rank_metrics, Metric, MetricAccumulator, MetricReport, UserMetrics,
};
pub use protocol::{evaluate, score_sharded, EvalConfig, Scorer};
pub use window::{evaluate_window, WindowEvalConfig, WindowReport};
