//! Bootstrap confidence intervals for metric reports.
//!
//! Crossing-city test sets are small (732 / 983 users in the paper, fewer
//! at reduced scales), so point estimates of Recall@k etc. carry real
//! sampling noise. [`bootstrap_ci`] resamples *users* with replacement —
//! the correct unit, since the protocol averages per-user metrics — and
//! reports percentile intervals. EXPERIMENTS.md uses these to state which
//! paper-shape claims are resolved above noise.

use crate::{Metric, UserMetrics};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A two-sided percentile confidence interval for one metric/cutoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean over users).
    pub mean: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// True if the interval excludes `other`'s interval entirely
    /// (a conservative "resolved above noise" check).
    pub fn clearly_above(&self, other: &ConfidenceInterval) -> bool {
        self.lo > other.hi
    }
}

/// Computes a bootstrap CI for `metric` at cutoff `k` from per-user
/// metric rows (as produced by [`crate::rank_metrics`]).
///
/// `level` is the two-sided confidence level (e.g. 0.95).
///
/// # Panics
/// Panics on an empty user set, zero resamples, or a level outside (0, 1).
pub fn bootstrap_ci(
    users: &[UserMetrics],
    metric: Metric,
    k: usize,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!users.is_empty(), "no users to bootstrap");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&(1.0 - level)) && level > 0.0,
        "bad level"
    );
    let mi = Metric::ALL
        .iter()
        .position(|&m| m == metric)
        .expect("known metric");
    let ki = users[0]
        .ks
        .iter()
        .position(|&kk| kk == k)
        .unwrap_or_else(|| panic!("cutoff {k} was not evaluated"));
    let values: Vec<f64> = users.iter().map(|u| u.values[mi][ki]).collect();
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += values[rng.gen_range(0..n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha) as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)) as usize).min(resamples - 1);
    ConfidenceInterval {
        mean,
        lo: means[lo_idx],
        hi: means[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_metrics;

    fn users_with_recall(values: &[f64]) -> Vec<UserMetrics> {
        // Construct per-user metrics where recall@1 is 1 or 0 as listed.
        values
            .iter()
            .map(|&v| {
                let rel = v > 0.5;
                rank_metrics(&[0.9, 0.1], &[rel, !rel], &[1])
            })
            .collect()
    }

    #[test]
    fn interval_brackets_the_mean() {
        let users = users_with_recall(&[1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let ci = bootstrap_ci(&users, Metric::Recall, 1, 500, 0.95, 7);
        assert!((ci.mean - 5.0 / 8.0).abs() < 1e-12);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
    }

    #[test]
    fn degenerate_sample_has_zero_width() {
        let users = users_with_recall(&[1.0; 20]);
        let ci = bootstrap_ci(&users, Metric::Recall, 1, 200, 0.95, 1);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn more_users_narrow_the_interval() {
        let pattern: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let small = users_with_recall(&pattern);
        let large: Vec<UserMetrics> = (0..20).flat_map(|_| users_with_recall(&pattern)).collect();
        let ci_small = bootstrap_ci(&small, Metric::Recall, 1, 400, 0.95, 2);
        let ci_large = bootstrap_ci(&large, Metric::Recall, 1, 400, 0.95, 2);
        assert!(
            ci_large.hi - ci_large.lo < ci_small.hi - ci_small.lo,
            "CI did not narrow: {ci_small:?} vs {ci_large:?}"
        );
    }

    #[test]
    fn clearly_above_requires_disjoint_intervals() {
        let a = ConfidenceInterval {
            mean: 0.8,
            lo: 0.7,
            hi: 0.9,
        };
        let b = ConfidenceInterval {
            mean: 0.5,
            lo: 0.4,
            hi: 0.6,
        };
        assert!(a.clearly_above(&b));
        assert!(!b.clearly_above(&a));
        let c = ConfidenceInterval {
            mean: 0.65,
            lo: 0.55,
            hi: 0.75,
        };
        assert!(!a.clearly_above(&c), "overlapping intervals are unresolved");
    }

    #[test]
    fn seeded_bootstrap_is_deterministic() {
        let users = users_with_recall(&[1.0, 0.0, 1.0, 1.0]);
        let a = bootstrap_ci(&users, Metric::Recall, 1, 300, 0.9, 5);
        let b = bootstrap_ci(&users, Metric::Recall, 1, 300, 0.9, 5);
        assert_eq!(a, b);
    }
}
