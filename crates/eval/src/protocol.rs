//! The paper's evaluation protocol (Sec. 4.1, "Evaluation Metrics"):
//! for each crossing-city test user, sample 100 target-city POIs the user
//! never visited, rank them together with the ground truth, and compute
//! top-k metrics.

use crate::{rank_metrics, MetricAccumulator, MetricReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::{CrossingCitySplit, Dataset, PoiId, UserId};

/// Anything that can score (user, POI) pairs for ranking.
///
/// `score_batch` is the required method because neural scorers are far
/// cheaper on batches; `score` is provided for convenience.
///
/// `Sync` is a supertrait so full-catalog scoring can shard one batch
/// across scoped threads ([`score_sharded`]); every scorer here is a
/// read-only view over trained parameters, so this costs nothing.
pub trait Scorer: Sync {
    /// Scores every POI in `pois` for `user`; higher ranks earlier.
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32>;

    /// Scores a single pair.
    fn score(&self, user: UserId, poi: PoiId) -> f32 {
        self.score_batch(user, &[poi])[0]
    }
}

/// Minimum per-shard batch below which threading overhead dominates and
/// [`score_sharded`] falls back to a single batched call.
const MIN_SHARD: usize = 256;

/// Scores `pois` for `user`, sharding the batch across up to `threads`
/// scoped worker threads. Results are returned in `pois` order and are
/// bit-identical to a single `score_batch` call: the scorer sees each
/// shard as an independent batch, and row-level kernels do not change
/// their per-row operation order with batch size.
///
/// With `threads == 1`, or when the batch is too small to amortize
/// thread spawning, this is exactly one `score_batch` call.
pub fn score_sharded(
    scorer: &dyn Scorer,
    user: UserId,
    pois: &[PoiId],
    threads: usize,
) -> Vec<f32> {
    assert!(threads >= 1, "need at least one scoring thread");
    if threads == 1 || pois.len() < 2 * MIN_SHARD {
        return scorer.score_batch(user, pois);
    }
    let chunk = pois.len().div_ceil(threads).max(MIN_SHARD);
    let shards: Vec<&[PoiId]> = pois.chunks(chunk).collect();
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| scope.spawn(move || scorer.score_batch(user, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoring worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(pois.len());
    for shard_scores in results {
        out.extend(shard_scores);
    }
    debug_assert_eq!(out.len(), pois.len());
    out
}

impl<S: Scorer + ?Sized> Scorer for &S {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        (**self).score_batch(user, pois)
    }
}

impl<S: Scorer + ?Sized> Scorer for Box<S> {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        (**self).score_batch(user, pois)
    }
}

/// Protocol configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Negatives sampled per user (paper: 100).
    pub negatives: usize,
    /// Cutoffs (paper: 2, 4, 6, 8, 10).
    pub ks: Vec<usize>,
    /// Seed for negative sampling: fixed seed = identical candidate sets
    /// across methods, which is what makes the comparison figures fair.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            negatives: 100,
            ks: vec![2, 4, 6, 8, 10],
            seed: 0xE7A1,
        }
    }
}

/// Evaluates `scorer` on a crossing-city split under the paper's
/// 100-negative ranking protocol.
///
/// Users with empty ground truth are skipped (cannot occur for splits
/// built from [`CrossingCitySplit::build`], which defines test users by
/// their target-city visits).
pub fn evaluate(
    scorer: &dyn Scorer,
    dataset: &Dataset,
    split: &CrossingCitySplit,
    config: &EvalConfig,
) -> MetricReport {
    assert!(config.negatives > 0, "need at least one negative");
    assert!(!config.ks.is_empty(), "need at least one cutoff");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let target_pois = dataset.pois_in_city(split.target_city);
    let mut acc = MetricAccumulator::new(&config.ks);

    for (i, &user) in split.test_users.iter().enumerate() {
        let truth = split.ground_truth_for(i);
        if truth.is_empty() {
            continue;
        }
        let candidates = sample_candidates(target_pois, truth, config.negatives, &mut rng);
        let scores = scorer.score_batch(user, &candidates);
        let relevant: Vec<bool> = candidates.iter().map(|p| truth.contains(p)).collect();
        acc.add(&rank_metrics(&scores, &relevant, &config.ks));
    }
    acc.finish()
}

/// Candidate set: all ground-truth POIs plus `negatives` distinct unvisited
/// target-city POIs (fewer if the city is too small).
fn sample_candidates(
    target_pois: &[PoiId],
    truth: &[PoiId],
    negatives: usize,
    rng: &mut SmallRng,
) -> Vec<PoiId> {
    let mut candidates: Vec<PoiId> = truth.to_vec();
    let pool: Vec<PoiId> = target_pois
        .iter()
        .copied()
        .filter(|p| !truth.contains(p))
        .collect();
    let k = negatives.min(pool.len());
    // Partial Fisher-Yates over a scratch index vector.
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
        candidates.push(pool[idx[i]]);
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CityId;

    /// Oracle scorer: knows the ground truth, scores it highest.
    struct Oracle<'a> {
        split: &'a CrossingCitySplit,
    }

    impl Scorer for Oracle<'_> {
        fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
            let idx = self
                .split
                .test_users
                .iter()
                .position(|&u| u == user)
                .expect("test user");
            let truth = self.split.ground_truth_for(idx);
            pois.iter()
                .map(|p| if truth.contains(p) { 1.0 } else { 0.0 })
                .collect()
        }
    }

    /// Anti-oracle: ranks ground truth last.
    struct AntiOracle<'a> {
        split: &'a CrossingCitySplit,
    }

    impl Scorer for AntiOracle<'_> {
        fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
            Oracle { split: self.split }
                .score_batch(user, pois)
                .into_iter()
                .map(|s| -s)
                .collect()
        }
    }

    fn setup() -> (st_data::Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn oracle_achieves_perfect_topk_metrics() {
        let (d, split) = setup();
        let report = evaluate(
            &Oracle { split: &split },
            &d,
            &split,
            &EvalConfig::default(),
        );
        assert_eq!(report.users, split.test_users.len());
        // Every user's ground truth ranks first: precision@2 is |GT∩top2|/2,
        // recall@10 should be 1.0 for users with |GT| <= 10.
        let r10 = report.get(crate::Metric::Recall, 10);
        assert!(r10 > 0.95, "oracle recall@10 = {r10}");
        let ndcg10 = report.get(crate::Metric::Ndcg, 10);
        assert!(ndcg10 > 0.95, "oracle ndcg@10 = {ndcg10}");
    }

    #[test]
    fn anti_oracle_scores_zero() {
        let (d, split) = setup();
        let report = evaluate(
            &AntiOracle { split: &split },
            &d,
            &split,
            &EvalConfig::default(),
        );
        let r10 = report.get(crate::Metric::Recall, 10);
        assert!(r10 < 0.05, "anti-oracle recall@10 = {r10}");
    }

    #[test]
    fn fixed_seed_gives_identical_candidates_across_methods() {
        let (d, split) = setup();
        let cfg = EvalConfig::default();
        let a = evaluate(&Oracle { split: &split }, &d, &split, &cfg);
        let b = evaluate(&Oracle { split: &split }, &d, &split, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn random_scorer_lands_near_chance() {
        struct Rand;
        impl Scorer for Rand {
            fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
                // Deterministic pseudo-random hash scores.
                pois.iter()
                    .map(|p| {
                        let h = (p.0 ^ user.0).wrapping_mul(2654435761);
                        (h % 1000) as f32 / 1000.0
                    })
                    .collect()
            }
        }
        let (d, split) = setup();
        let report = evaluate(&Rand, &d, &split, &EvalConfig::default());
        // With ~100 negatives + small GT, random recall@10 ~ 10/(100+|GT|).
        let r10 = report.get(crate::Metric::Recall, 10);
        assert!((0.0..0.4).contains(&r10), "random recall@10 = {r10}");
    }

    /// Records how many `score_batch` calls it receives and how many of
    /// them ran off the constructing thread, for asserting the sharding
    /// policy.
    struct Recording {
        caller: std::thread::ThreadId,
        calls: std::sync::atomic::AtomicUsize,
        off_thread: std::sync::atomic::AtomicUsize,
    }

    impl Recording {
        fn new() -> Self {
            Self {
                caller: std::thread::current().id(),
                calls: std::sync::atomic::AtomicUsize::new(0),
                off_thread: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl Scorer for Recording {
        fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
            use std::sync::atomic::Ordering::Relaxed;
            self.calls.fetch_add(1, Relaxed);
            if std::thread::current().id() != self.caller {
                self.off_thread.fetch_add(1, Relaxed);
            }
            vec![0.0; pois.len()]
        }
    }

    #[test]
    fn small_catalog_scores_in_one_call_on_the_calling_thread() {
        use std::sync::atomic::Ordering::Relaxed;
        // Just under the 2*MIN_SHARD threshold: threading overhead would
        // dominate, so the catalog must score as one batch, inline.
        let pois: Vec<PoiId> = (0..(2 * MIN_SHARD as u32 - 1)).map(PoiId).collect();
        let rec = Recording::new();
        let scores = score_sharded(&rec, UserId(0), &pois, 8);
        assert_eq!(scores.len(), pois.len());
        assert_eq!(rec.calls.load(Relaxed), 1, "small catalog must not shard");
        assert_eq!(rec.off_thread.load(Relaxed), 0, "must stay on the caller");
    }

    #[test]
    fn large_catalog_shards_with_min_shard_sized_chunks() {
        use std::sync::atomic::Ordering::Relaxed;
        // Large enough to shard, small enough that MIN_SHARD (not the
        // thread count) bounds the shard count: 3*MIN_SHARD pairs across
        // 8 requested threads must become exactly 3 shards.
        let pois: Vec<PoiId> = (0..(3 * MIN_SHARD as u32)).map(PoiId).collect();
        let rec = Recording::new();
        let scores = score_sharded(&rec, UserId(0), &pois, 8);
        assert_eq!(scores.len(), pois.len());
        assert_eq!(rec.calls.load(Relaxed), 3, "shards must hold >= MIN_SHARD");
    }

    #[test]
    fn candidate_sampler_excludes_truth_and_dedupes() {
        let pois: Vec<PoiId> = (0..50).map(PoiId).collect();
        let truth = vec![PoiId(3), PoiId(7)];
        let mut rng = SmallRng::seed_from_u64(0);
        let cands = sample_candidates(&pois, &truth, 20, &mut rng);
        assert_eq!(cands.len(), 22);
        let negs = &cands[2..];
        assert!(!negs.contains(&PoiId(3)));
        assert!(!negs.contains(&PoiId(7)));
        let mut sorted = negs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "negatives must be distinct");
    }

    #[test]
    fn small_city_clamps_negative_count() {
        let pois: Vec<PoiId> = (0..5).map(PoiId).collect();
        let truth = vec![PoiId(0)];
        let mut rng = SmallRng::seed_from_u64(0);
        let cands = sample_candidates(&pois, &truth, 100, &mut rng);
        assert_eq!(cands.len(), 5); // 1 truth + 4 available negatives
    }
}
