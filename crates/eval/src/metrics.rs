//! Ranking metrics: Recall@k, Precision@k, NDCG@k, MAP@k.
//!
//! Definitions follow the POI-recommendation evaluation survey the paper
//! cites ([20], Liu et al., VLDB'17): metrics are computed per user over
//! a ranked candidate list against a ground-truth set, then averaged.

/// The four metric families reported in every figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Fraction of ground truth retrieved in the top-k.
    Recall,
    /// Fraction of the top-k that is ground truth.
    Precision,
    /// Normalized discounted cumulative gain.
    Ndcg,
    /// Mean average precision (truncated at k).
    Map,
}

impl Metric {
    /// All metrics in the paper's reporting order.
    pub const ALL: [Metric; 4] = [Metric::Recall, Metric::Precision, Metric::Ndcg, Metric::Map];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Recall => "Recall",
            Metric::Precision => "Precision",
            Metric::Ndcg => "NDCG",
            Metric::Map => "MAP",
        }
    }
}

/// Computes one metric at cutoff `k` for a single ranked list.
///
/// `ranked` is the candidate list in descending score order; `relevant`
/// marks which candidates are ground truth (parallel to `ranked`'s
/// index space — see [`rank_metrics`] for the usual entry point).
pub fn metric_at_k(metric: Metric, hits: &[bool], num_relevant: usize, k: usize) -> f64 {
    assert!(k > 0, "cutoff k must be positive");
    if num_relevant == 0 {
        return 0.0;
    }
    let k = k.min(hits.len());
    match metric {
        Metric::Recall => {
            let got = hits[..k].iter().filter(|&&h| h).count();
            got as f64 / num_relevant as f64
        }
        Metric::Precision => {
            let got = hits[..k].iter().filter(|&&h| h).count();
            got as f64 / k as f64
        }
        Metric::Ndcg => {
            let dcg: f64 = hits[..k]
                .iter()
                .enumerate()
                .filter(|(_, &h)| h)
                .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
                .sum();
            let ideal: f64 = (0..num_relevant.min(k))
                .map(|i| 1.0 / ((i + 2) as f64).log2())
                .sum();
            dcg / ideal
        }
        Metric::Map => {
            let mut hits_so_far = 0usize;
            let mut ap = 0.0;
            for (i, &h) in hits[..k].iter().enumerate() {
                if h {
                    hits_so_far += 1;
                    ap += hits_so_far as f64 / (i + 1) as f64;
                }
            }
            ap / num_relevant.min(k) as f64
        }
    }
}

/// Computes all four metrics at several cutoffs for one user's ranking.
///
/// `scores` and `relevant` are parallel: `relevant[i]` says whether
/// candidate `i` is ground truth. Ties are broken by candidate order
/// (stable sort), which keeps evaluation deterministic.
pub fn rank_metrics(scores: &[f32], relevant: &[bool], ks: &[usize]) -> UserMetrics {
    assert_eq!(scores.len(), relevant.len(), "scores/relevance mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let hits: Vec<bool> = order.iter().map(|&i| relevant[i]).collect();
    let num_relevant = relevant.iter().filter(|&&r| r).count();
    let values = Metric::ALL
        .iter()
        .map(|&m| {
            ks.iter()
                .map(|&k| metric_at_k(m, &hits, num_relevant, k))
                .collect()
        })
        .collect();
    UserMetrics {
        ks: ks.to_vec(),
        values,
    }
}

/// Per-user metric values: `values[metric_index][k_index]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UserMetrics {
    /// Cutoffs evaluated.
    pub ks: Vec<usize>,
    /// Indexed by [`Metric::ALL`] order, then by cutoff.
    pub values: Vec<Vec<f64>>,
}

/// Accumulates per-user metrics into averages.
#[derive(Debug, Clone, Default)]
pub struct MetricAccumulator {
    ks: Vec<usize>,
    sums: Vec<Vec<f64>>,
    users: usize,
}

impl MetricAccumulator {
    /// Creates an accumulator for the given cutoffs.
    pub fn new(ks: &[usize]) -> Self {
        Self {
            ks: ks.to_vec(),
            sums: vec![vec![0.0; ks.len()]; Metric::ALL.len()],
            users: 0,
        }
    }

    /// Adds one user's metrics.
    pub fn add(&mut self, user: &UserMetrics) {
        assert_eq!(user.ks, self.ks, "cutoff mismatch");
        for (sum_row, user_row) in self.sums.iter_mut().zip(&user.values) {
            for (s, v) in sum_row.iter_mut().zip(user_row) {
                *s += v;
            }
        }
        self.users += 1;
    }

    /// Number of users accumulated.
    pub fn num_users(&self) -> usize {
        self.users
    }

    /// Finalizes into averages.
    pub fn finish(&self) -> MetricReport {
        let n = self.users.max(1) as f64;
        MetricReport {
            ks: self.ks.clone(),
            values: self
                .sums
                .iter()
                .map(|row| row.iter().map(|s| s / n).collect())
                .collect(),
            users: self.users,
        }
    }
}

/// Averaged metrics over all test users — one evaluation run's result.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricReport {
    /// Cutoffs evaluated.
    pub ks: Vec<usize>,
    /// `values[metric][k]`, metric order per [`Metric::ALL`].
    pub values: Vec<Vec<f64>>,
    /// Number of users averaged.
    pub users: usize,
}

impl MetricReport {
    /// Reads one averaged value.
    pub fn get(&self, metric: Metric, k: usize) -> f64 {
        let mi = Metric::ALL
            .iter()
            .position(|&m| m == metric)
            .expect("known metric");
        let ki = self
            .ks
            .iter()
            .position(|&kk| kk == k)
            .unwrap_or_else(|| panic!("cutoff {k} was not evaluated"));
        self.values[mi][ki]
    }
}

impl std::fmt::Display for MetricReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:>10}", "")?;
        for k in &self.ks {
            write!(f, "  @{k:<6}")?;
        }
        writeln!(f)?;
        for (mi, m) in Metric::ALL.iter().enumerate() {
            write!(f, "{:>10}", m.name())?;
            for v in &self.values[mi] {
                write!(f, "  {v:.4}")?;
            }
            writeln!(f)?;
        }
        write!(f, "({} users)", self.users)
    }
}

/// Overlap@k between two rankings: the fraction of `reference`'s top-k
/// items found anywhere in `candidate`'s top-k. This is the recall of a
/// candidate-generation stage against an exact oracle ranking — 1.0
/// means the approximate ranking reproduced the exact top-k as a set.
///
/// An empty reference top-k is vacuously 1.0 (nothing was missed).
pub fn overlap_at_k<T: Eq + std::hash::Hash>(candidate: &[T], reference: &[T], k: usize) -> f64 {
    let want = &reference[..reference.len().min(k)];
    if want.is_empty() {
        return 1.0;
    }
    let got: std::collections::HashSet<&T> = candidate[..candidate.len().min(k)].iter().collect();
    let hit = want.iter().filter(|x| got.contains(x)).count();
    hit as f64 / want.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Candidates: [GT, neg, GT, neg, neg]; scores put GT at ranks 1 and 3.
    fn example() -> (Vec<f32>, Vec<bool>) {
        (
            vec![0.9, 0.5, 0.7, 0.3, 0.1],
            vec![true, false, true, false, false],
        )
    }

    #[test]
    fn overlap_at_k_counts_set_intersection_of_prefixes() {
        let exact = [1, 2, 3, 4, 5];
        assert_eq!(overlap_at_k(&[3, 1, 2], &exact, 3), 1.0);
        assert_eq!(overlap_at_k(&[1, 9, 8], &exact, 3), 1.0 / 3.0);
        assert_eq!(overlap_at_k(&[9, 8, 7], &exact, 3), 0.0);
        // k beyond both lengths uses full lists.
        assert_eq!(overlap_at_k(&[5, 4, 3, 2, 1], &exact, 50), 1.0);
        // Empty reference is vacuous success.
        assert_eq!(overlap_at_k(&[1, 2], &[] as &[i32], 10), 1.0);
    }

    #[test]
    fn recall_precision_known_values() {
        let (s, r) = example();
        let m = rank_metrics(&s, &r, &[1, 2, 3]);
        // Ranked relevance: [T, T(0.7), F, F, F] -> hits at ranks 1,2.
        assert_eq!(m.values[0], vec![0.5, 1.0, 1.0]); // recall
        assert_eq!(m.values[1], vec![1.0, 1.0, 2.0 / 3.0]); // precision
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let scores = vec![0.9, 0.8, 0.1, 0.05];
        let rel = vec![true, true, false, false];
        let m = rank_metrics(&scores, &rel, &[2, 4]);
        let ndcg = &m.values[2];
        assert!((ndcg[0] - 1.0).abs() < 1e-12);
        assert!((ndcg[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_late_hits() {
        let early = rank_metrics(&[0.9, 0.1, 0.2], &[true, false, false], &[3]);
        let late = rank_metrics(&[0.1, 0.9, 0.8], &[true, false, false], &[3]);
        assert!(early.values[2][0] > late.values[2][0]);
        // Exact: hit at rank 3 -> 1/log2(4) = 0.5.
        assert!((late.values[2][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_known_value() {
        // Hits at ranks 1 and 3 of top-3, |GT| = 2:
        // AP = (1/1 + 2/3) / 2 = 5/6.
        let m = rank_metrics(&[0.9, 0.5, 0.4], &[true, false, true], &[3]);
        assert!((m.values[3][0] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth_scores_zero() {
        let m = rank_metrics(&[0.5, 0.4], &[false, false], &[1, 2]);
        for row in &m.values {
            assert!(row.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn cutoff_beyond_list_is_clamped() {
        let m = rank_metrics(&[0.9], &[true], &[10]);
        assert_eq!(m.values[0][0], 1.0);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = MetricAccumulator::new(&[1]);
        acc.add(&rank_metrics(&[0.9, 0.1], &[true, false], &[1])); // recall 1
        acc.add(&rank_metrics(&[0.1, 0.9], &[true, false], &[1])); // recall 0
        let report = acc.finish();
        assert_eq!(report.users, 2);
        assert!((report.get(Metric::Recall, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "was not evaluated")]
    fn report_rejects_unknown_cutoff() {
        let acc = MetricAccumulator::new(&[2]);
        acc.finish().get(Metric::Recall, 7);
    }

    #[test]
    fn display_contains_all_metric_names() {
        let mut acc = MetricAccumulator::new(&[2, 4]);
        acc.add(&rank_metrics(&[0.9, 0.1], &[true, false], &[2, 4]));
        let text = acc.finish().to_string();
        for m in Metric::ALL {
            assert!(text.contains(m.name()));
        }
    }
}
