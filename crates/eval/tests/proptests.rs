//! Property-based tests for the ranking metrics.

use proptest::prelude::*;
use st_eval::{rank_metrics, Metric};

/// Scores plus a relevance mask of the same length with >= 1 relevant.
fn ranking() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.0f32..1.0, n),
            proptest::collection::vec(any::<bool>(), n),
            0..n,
        )
            .prop_map(|(scores, mut rel, force)| {
                rel[force] = true; // at least one relevant item
                (scores, rel)
            })
    })
}

proptest! {
    #[test]
    fn all_metrics_are_in_unit_interval((scores, rel) in ranking()) {
        let m = rank_metrics(&scores, &rel, &[1, 3, 10]);
        for row in &m.values {
            for &v in row {
                prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
            }
        }
    }

    #[test]
    fn recall_is_monotone_in_k((scores, rel) in ranking()) {
        let ks: Vec<usize> = (1..=scores.len()).collect();
        let m = rank_metrics(&scores, &rel, &ks);
        let recall = &m.values[0];
        for w in recall.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "recall decreased: {w:?}");
        }
        // Recall at the full list length retrieves everything.
        prop_assert!((recall[recall.len() - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_counting_identity((scores, rel) in ranking()) {
        // k * precision@k == |GT| * recall@k == #hits in top-k.
        let n_rel = rel.iter().filter(|&&r| r).count();
        for k in [1usize, 2, 5] {
            let m = rank_metrics(&scores, &rel, &[k]);
            let k_eff = k.min(scores.len());
            let hits_p = m.values[1][0] * k_eff as f64;
            let hits_r = m.values[0][0] * n_rel as f64;
            prop_assert!((hits_p - hits_r).abs() < 1e-9, "p {hits_p} vs r {hits_r}");
        }
    }

    #[test]
    fn perfect_ranking_maximizes_every_metric(n_rel in 1usize..5, n_neg in 1usize..20) {
        // Relevant items first with the highest scores.
        let mut scores = Vec::new();
        let mut rel = Vec::new();
        for i in 0..n_rel {
            scores.push(1.0 - i as f32 * 0.001);
            rel.push(true);
        }
        for i in 0..n_neg {
            scores.push(0.5 - i as f32 * 0.001);
            rel.push(false);
        }
        let k = n_rel + n_neg;
        let perfect = rank_metrics(&scores, &rel, &[k]);
        // Any permutation of scores cannot beat it.
        let mut shuffled = scores.clone();
        shuffled.reverse();
        let worse = rank_metrics(&shuffled, &rel, &[k]);
        for (metric, (p, w)) in Metric::ALL.iter().zip(perfect.values.iter().zip(&worse.values)) {
            prop_assert!(
                p[0] >= w[0] - 1e-12,
                "{}: perfect {} < shuffled {}", metric.name(), p[0], w[0]
            );
        }
        // NDCG of the perfect ranking is exactly 1.
        prop_assert!((perfect.values[2][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn order_preserving_score_transforms_do_not_change_metrics((scores, rel) in ranking()) {
        let a = rank_metrics(&scores, &rel, &[2, 5]);
        let transformed: Vec<f32> = scores.iter().map(|s| s * 2.0 + 1.0).collect();
        let b = rank_metrics(&transformed, &rel, &[2, 5]);
        prop_assert_eq!(a, b);
    }
}
