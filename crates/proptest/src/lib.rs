//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of proptest's API the test suites use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`]/[`collection::hash_set`], simple
//! character-class string patterns, `any::<bool>()`, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed and failures are **not shrunk** — the
//! failing case index and message are reported instead. For a repo that
//! pins seeds everywhere, reproducibility is already total.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5851F42D4C957F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String pattern strategy: supports literal characters and character
/// classes with counted repetition, e.g. `"[a-z]{1,8}"` or `"[ab]{3}"`.
///
/// This intentionally covers only the tiny regex subset the test suites
/// use; anything it cannot parse panics loudly instead of silently
/// generating the wrong language.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let (choices, next) = parse_atom(&chars, i, pat);
            let (lo, hi, next) = parse_repeat(&chars, next, pat);
            let count = if lo == hi {
                lo
            } else {
                lo + rng.index(hi - lo + 1)
            };
            for _ in 0..count {
                out.push(choices[rng.index(choices.len())]);
            }
            i = next;
        }
        out
    }

    /// Parses one atom (character class or literal) at `i`, returning the
    /// candidate characters and the next index.
    fn parse_atom(chars: &[char], i: usize, pat: &str) -> (Vec<char>, usize) {
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed character class in pattern {pat:?}"))
                + i;
            let mut choices = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "reversed range in pattern {pat:?}");
                    for c in lo..=hi {
                        choices.push(char::from_u32(c).expect("valid char range"));
                    }
                    j += 3;
                } else {
                    choices.push(chars[j]);
                    j += 1;
                }
            }
            assert!(
                !choices.is_empty(),
                "empty character class in pattern {pat:?}"
            );
            (choices, close + 1)
        } else {
            (vec![chars[i]], i + 1)
        }
    }

    /// Parses an optional `{m}` / `{m,n}` repetition at `i`.
    fn parse_repeat(chars: &[char], i: usize, pat: &str) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .unwrap_or_else(|| panic!("unclosed repetition in pattern {pat:?}"))
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let parse = |s: &str| -> usize {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition {body:?} in pattern {pat:?}"))
        };
        let (lo, hi) = match body.split_once(',') {
            Some((lo, hi)) => (parse(lo), parse(hi)),
            None => (parse(&body), parse(&body)),
        };
        assert!(lo <= hi, "reversed repetition in pattern {pat:?}");
        (lo, hi, close + 1)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.index(self.hi - self.lo + 1)
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `elem` and a size
    /// given as a `usize` or `Range<usize>`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`: distinct elements, sized like [`vec`].
    /// Gives up (with fewer elements) if the element domain is too small
    /// to reach the requested size, mirroring proptest's behaviour of
    /// bounded rejection.
    pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for a fair boolean.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Per-test configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property check, raised by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Stable per-test seed so failures reproduce across runs.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Declares property tests. Each function runs `cases` times with values
/// generated from its strategies; failures report the case index and
/// seed (no shrinking).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strategy = ( $( $strat, )+ );
                for case in 0..cfg.cases {
                    let seed = $crate::seed_for(stringify!($name), case);
                    let mut rng = $crate::TestRng::new(seed);
                    let ( $($arg,)+ ) = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, cfg.cases, seed, e
                        );
                    }
                }
            }
        )*
    };
}

/// Everything a test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_generates_the_right_language() {
        let mut rng = super::TestRng::new(1);
        for _ in 0..100 {
            let s = super::Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_and_hash_set_respect_sizes() {
        let mut rng = super::TestRng::new(2);
        for _ in 0..50 {
            let v = super::Strategy::generate(&collection::vec(0usize..10, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
            let h = super::Strategy::generate(&collection::hash_set(0usize..100, 5), &mut rng);
            assert_eq!(h.len(), 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0usize..10, 0usize..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(usize::from(flip) <= 1);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..5).prop_flat_map(|n| collection::vec(0f32..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    #[allow(unnameable_test_items)] // the nested #[test] is invoked by hand
    fn failures_are_reported_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(
            msg.contains("always_fails") && msg.contains("seed"),
            "{msg}"
        );
    }
}
