//! `st-online` — run the streaming train→serve loop against an embedded
//! server and print the per-cycle audit trail.
//!
//! ```text
//! st-online [--seed N] [--cycles N] [--scale F] [--no-faults]
//! ```

use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit};
use st_online::{run_embedded, FaultPlan, OnlineLoopConfig};
use std::sync::Arc;

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg(&args, "--seed", 42);
    let cycles: usize = arg(&args, "--cycles", 4);
    let scale: f64 = arg(&args, "--scale", 0.05);
    let no_faults = args.iter().any(|a| a == "--no-faults");

    eprintln!("generating synthetic dataset (scale {scale})...");
    let synth_config = SynthConfig::foursquare_like().with_scale(scale);
    let target = CityId(synth_config.target_city as u16);
    let (dataset, _) = generate(&synth_config);
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(&dataset, target));

    let mut config = OnlineLoopConfig::smoke(seed);
    config.faults = if no_faults {
        FaultPlan::none(cycles)
    } else {
        FaultPlan::seeded(cycles.max(3), seed)
    };

    let scratch = std::env::temp_dir().join(format!("st-online-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    eprintln!(
        "warming up {} epochs, then {} publish cycles (ckpt in {})...",
        config.warmup_epochs,
        config.faults.len(),
        scratch.display()
    );
    let report = run_embedded(&dataset, &split, &scratch, &config)?;

    println!("cycle  fault    outcome    trained  loss    cand-hit  base-hit  epoch  publish-us");
    for c in &report.cycles {
        println!(
            "{:>5}  {:<7}  {:<9}  {:>7}  {:<6.4}  {:<8.4}  {:<8.4}  {:>5}  {}",
            c.cycle,
            c.fault.label(),
            c.outcome.label(),
            c.events_trained,
            c.loss,
            c.candidate_hit_rate,
            c.baseline_hit_rate,
            c.served_epoch,
            c.publish_latency_us
                .map(|us| us.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "ingested {} events at {:.0} events/s; served epoch {}; reloads ok={} failed={}",
        report.events_ingested,
        report.events_per_sec,
        report.final_served_epoch,
        report.reloads_ok,
        report.reloads_failed
    );
    Ok(())
}
