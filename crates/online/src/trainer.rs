//! Incremental sparse training over streamed check-in events.
//!
//! Each micro-batch of events becomes an [`InteractionBatch`]: every
//! event is a positive example, paired with seeded same-city negatives
//! the user has not visited *as of this point in the stream*. The batch
//! then runs one row-sparse optimizer step
//! ([`STTransRec::train_on_interactions`]): with sparse gradients and
//! the lazy sharded Adam enabled, only the embedding rows actually
//! touched by the batch pay any optimizer work — the update cost scales
//! with the micro-batch, not the model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::{Checkin, Dataset, PoiId};
use st_transrec_core::{InteractionBatch, STTransRec};

/// What one [`IncrementalTrainer::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroBatchStats {
    /// Streamed events consumed (positives).
    pub events: usize,
    /// Training examples after negative expansion.
    pub examples: usize,
    /// Mean BCE loss of the step.
    pub loss: f32,
}

/// Turns streamed events into incremental sparse training steps.
///
/// The trainer owns the *online* view of each user's visit history: it
/// starts from the dataset the model was trained on and absorbs every
/// ingested event, so negative sampling ("a same-city POI this user has
/// not visited") stays truthful as the stream moves past the snapshot
/// the dataset froze.
pub struct IncrementalTrainer {
    negatives: usize,
    /// Per-user visited POIs, sorted for binary-search membership.
    visited: Vec<Vec<PoiId>>,
    rng: SmallRng,
}

impl IncrementalTrainer {
    /// Builds a trainer seeded for reproducible negative sampling, with
    /// visit history initialized from `dataset`.
    pub fn new(dataset: &Dataset, negatives: usize, seed: u64) -> Self {
        assert!(negatives > 0, "need at least one negative per positive");
        let mut visited: Vec<Vec<PoiId>> = (0..dataset.num_users())
            .map(|u| {
                dataset
                    .user_checkins(st_data::UserId(u as u32))
                    .map(|c| c.poi)
                    .collect()
            })
            .collect();
        for pois in &mut visited {
            pois.sort_unstable();
            pois.dedup();
        }
        Self {
            negatives,
            visited,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Whether `user` has visited `poi` from the trainer's point of view
    /// (dataset history plus every ingested event).
    pub fn has_visited(&self, user: st_data::UserId, poi: PoiId) -> bool {
        self.visited[user.idx()].binary_search(&poi).is_ok()
    }

    /// Expands events into positives + unvisited same-city negatives and
    /// folds the events into the visit history. Public mainly so tests
    /// and tools can audit exactly what a step would train on.
    pub fn build_batch(&mut self, dataset: &Dataset, events: &[Checkin]) -> InteractionBatch {
        let mut batch = InteractionBatch {
            users: Vec::with_capacity(events.len() * (1 + self.negatives)),
            pois: Vec::with_capacity(events.len() * (1 + self.negatives)),
            labels: Vec::with_capacity(events.len() * (1 + self.negatives)),
        };
        for event in events {
            let user = event.user.idx();
            batch.users.push(user);
            batch.pois.push(event.poi.idx());
            batch.labels.push(1.0);

            let city_pois = dataset.pois_in_city(dataset.poi(event.poi).city);
            let visited = &self.visited[user];
            let mut drawn = 0;
            // Uniform same-city negatives; bounded attempts so a user who
            // has visited (almost) the whole city cannot spin forever.
            for _ in 0..self.negatives * 8 {
                if drawn == self.negatives {
                    break;
                }
                let poi = city_pois[self.rng.gen_range(0..city_pois.len())];
                if poi == event.poi || visited.binary_search(&poi).is_ok() {
                    continue;
                }
                batch.users.push(user);
                batch.pois.push(poi.idx());
                batch.labels.push(0.0);
                drawn += 1;
            }
        }
        for event in events {
            let visited = &mut self.visited[event.user.idx()];
            if let Err(pos) = visited.binary_search(&event.poi) {
                visited.insert(pos, event.poi);
            }
        }
        batch
    }

    /// Trains `model` on one micro-batch of streamed events.
    pub fn ingest(
        &mut self,
        model: &mut STTransRec,
        dataset: &Dataset,
        events: &[Checkin],
    ) -> MicroBatchStats {
        assert!(!events.is_empty(), "empty micro-batch");
        let batch = self.build_batch(dataset, events);
        let examples = batch.len();
        let loss = model.train_on_interactions(&batch);
        MicroBatchStats {
            events: events.len(),
            examples,
            loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, CheckinStream, SynthConfig};
    use st_data::{CityId, CrossingCitySplit, PoiId, UserId};
    use st_transrec_core::ModelConfig;

    fn setup() -> (Dataset, CrossingCitySplit) {
        let (d, _) = generate(&SynthConfig::tiny());
        let split = CrossingCitySplit::build(&d, CityId(1));
        (d, split)
    }

    #[test]
    fn ingest_descends_and_history_absorbs_streamed_pois() {
        let (d, split) = setup();
        let mut model = STTransRec::new(&d, &split, ModelConfig::test_small());
        let mut trainer = IncrementalTrainer::new(&d, 4, 5);

        let probe = CheckinStream::new(&d, 5).next_batch(64);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..12 {
            let stats = trainer.ingest(&mut model, &d, &probe);
            assert_eq!(stats.events, 64);
            assert!(stats.examples > 64, "negatives expanded the batch");
            assert!(stats.loss.is_finite());
            if step == 0 {
                first = stats.loss;
            }
            last = stats.loss;
        }
        assert!(
            last < first,
            "repeated steps on one batch must descend: {first} -> {last}"
        );
        for e in &probe {
            assert!(trainer.has_visited(e.user, e.poi));
        }
    }

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let (d, split) = setup();
        let events = CheckinStream::new(&d, 6).next_batch(128);
        let run = |seed| {
            let mut model = STTransRec::new(&d, &split, ModelConfig::test_small());
            let mut trainer = IncrementalTrainer::new(&d, 4, seed);
            (0..4)
                .map(|i| {
                    trainer
                        .ingest(&mut model, &d, &events[i * 32..(i + 1) * 32])
                        .loss
                })
                .collect::<Vec<f32>>()
        };
        assert_eq!(run(9), run(9), "bitwise-identical loss trajectory");
        assert_ne!(run(9), run(10), "trainer seed matters");
    }

    #[test]
    fn negatives_are_unvisited_same_city_and_labels_line_up() {
        let (d, _) = setup();
        let mut trainer = IncrementalTrainer::new(&d, 6, 21);
        let events = CheckinStream::new(&d, 7).next_batch(50);

        // Pre-ingest history, to audit against: build_batch must only
        // draw negatives unvisited *before* this batch.
        let before = IncrementalTrainer::new(&d, 6, 0);
        let batch = trainer.build_batch(&d, &events);

        let mut i = 0;
        for event in &events {
            assert_eq!(batch.users[i], event.user.idx());
            assert_eq!(batch.pois[i], event.poi.idx());
            assert_eq!(batch.labels[i], 1.0);
            let city = d.poi(event.poi).city;
            i += 1;
            while i < batch.len() && batch.labels[i] == 0.0 {
                let poi = PoiId(batch.pois[i] as u32);
                let user = UserId(batch.users[i] as u32);
                assert_eq!(user, event.user, "negative belongs to its event's user");
                assert_eq!(d.poi(poi).city, city, "negative from another city");
                assert_ne!(poi, event.poi);
                assert!(
                    !before.has_visited(user, poi),
                    "negative {poi:?} was already visited by {user:?}"
                );
                i += 1;
            }
        }
        assert_eq!(i, batch.len(), "every example accounted for");
    }
}
