//! # st-online
//!
//! Closes the train→serve loop for ST-TransRec: a deterministic online
//! learning pipeline that ingests a seeded check-in event stream,
//! trains the model incrementally with row-sparse gradient steps,
//! shadow-evaluates each candidate snapshot against the currently
//! serving model on held-out recent events, and publishes accepted
//! candidates to a running `st-serve` instance via an atomic checkpoint
//! write + hot reload. See DESIGN.md §14.
//!
//! The subsystem is built from the pieces the rest of the workspace
//! already proves out:
//!
//! - [`IncrementalTrainer`] — streamed events → positives + unvisited
//!   same-city negatives → one sparse/lazy optimizer step per
//!   micro-batch (`st-transrec-core`).
//! - [`ShadowWindow`] + [`gate`] — held-out events the trainer never
//!   sees, scored with `st-eval`'s seeded windowed protocol; a candidate
//!   that regresses hit-rate beyond tolerance is rejected before any
//!   byte is written.
//! - [`Publisher`] — `st-tensor`'s atomic temp-file + rename checkpoint
//!   write, then `POST /admin/reload`, then `/metrics` verification of
//!   what actually serves.
//! - [`FaultPlan`] — seeded publish-path chaos (regressing candidates,
//!   crashes mid-write) so every run exercises the defenses.
//! - [`run_online_loop`] / [`run_embedded`] — the cycle orchestration,
//!   reproducible end to end under a fixed seed.

#![warn(missing_docs)]

mod fault;
mod pipeline;
mod publisher;
mod shadow;
mod trainer;

pub use fault::{FaultPlan, PublishFault};
pub use pipeline::{
    run_embedded, run_online_loop, CycleOutcome, CycleRecord, OnlineLoopConfig, OnlineReport,
};
pub use publisher::{PublishOutcome, Publisher};
pub use shadow::{gate, GateConfig, GateDecision, ShadowWindow};
pub use trainer::{IncrementalTrainer, MicroBatchStats};
