//! The online learning loop: ingest → train → shadow-eval → gate →
//! publish, in deterministic cycles.
//!
//! Each cycle consumes a slice of the event stream. Most events feed
//! [`IncrementalTrainer::ingest`] micro-batches; a held-out slice the
//! trainer never sees lands in the [`ShadowWindow`]. The cycle then
//! gates the candidate model against the currently *serving* baseline on
//! that window and, only on acceptance, publishes it atomically to the
//! running server. Every decision is a pure function of the loop seed,
//! so two runs with the same config produce identical
//! publish/reject/crash sequences — asserted by the e2e tests.

use crate::fault::{FaultPlan, PublishFault};
use crate::publisher::Publisher;
use crate::shadow::{gate, GateConfig, ShadowWindow};
use crate::trainer::IncrementalTrainer;
use st_data::synth::CheckinStream;
use st_data::{CrossingCitySplit, Dataset};
use st_serve::server::{Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_tensor::StorageEncoding;
use st_transrec_core::{ModelConfig, STTransRec};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Everything that parameterizes one run of the loop.
#[derive(Debug, Clone)]
pub struct OnlineLoopConfig {
    /// Master seed: stream, trainer, impostor inits all derive from it.
    pub seed: u64,
    /// Architecture/optimizer config for the model and every restore.
    pub model: ModelConfig,
    /// Full offline epochs before the stream starts (generation 1).
    pub warmup_epochs: usize,
    /// Events per training micro-batch.
    pub micro_batch: usize,
    /// Training micro-batches per publish cycle.
    pub train_batches_per_cycle: usize,
    /// Events held out into the shadow window per cycle.
    pub shadow_batch: usize,
    /// Shadow window capacity (oldest events evicted beyond it).
    pub shadow_capacity: usize,
    /// Negatives per streamed positive.
    pub negatives: usize,
    /// Publish-gate policy.
    pub gate: GateConfig,
    /// Per-cycle fault schedule; its length is the number of cycles.
    pub faults: FaultPlan,
    /// v2 container encoding for every published checkpoint: f32 by
    /// default, f16/int8 to shrink what the serving tier maps.
    pub snapshot_format: StorageEncoding,
}

impl OnlineLoopConfig {
    /// A small, fast configuration for tests, CI smoke runs, and the
    /// bench harness: 2 warmup epochs, 4 cycles with one injected
    /// regression and one crash, ~384 training events per cycle.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            model: ModelConfig::test_small(),
            warmup_epochs: 2,
            micro_batch: 128,
            train_batches_per_cycle: 3,
            shadow_batch: 64,
            shadow_capacity: 128,
            negatives: 4,
            // A 64-event window quantizes hit-rate in ~0.016 steps, so
            // the default 0.01 tolerance is below one quantum and a
            // single flipped event can veto a healthy candidate. Three
            // quanta of slack keeps clean publishes flowing while an
            // untrained impostor (tens of quanta worse) still rejects.
            gate: GateConfig {
                tolerance: 0.05,
                ..GateConfig::default()
            },
            faults: FaultPlan::seeded(4, seed),
            snapshot_format: StorageEncoding::F32,
        }
    }
}

/// Terminal state of one publish cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleOutcome {
    /// Gate accepted; the snapshot is confirmed serving.
    Published,
    /// Gate rejected; nothing was written, nothing reloaded.
    Rejected,
    /// Publisher crashed mid-write; serving tier untouched.
    Crashed,
}

impl CycleOutcome {
    /// Stable lowercase label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            CycleOutcome::Published => "published",
            CycleOutcome::Rejected => "rejected",
            CycleOutcome::Crashed => "crashed",
        }
    }
}

/// One cycle's full audit trail.
#[derive(Debug, Clone)]
pub struct CycleRecord {
    /// Cycle index, 0-based.
    pub cycle: usize,
    /// Fault injected this cycle.
    pub fault: PublishFault,
    /// What happened.
    pub outcome: CycleOutcome,
    /// Events trained this cycle.
    pub events_trained: usize,
    /// Mean micro-batch loss over the cycle.
    pub loss: f32,
    /// Candidate hit-rate on the shadow window.
    pub candidate_hit_rate: f64,
    /// Serving baseline hit-rate on the identical window.
    pub baseline_hit_rate: f64,
    /// Epoch the server reports serving *after* this cycle.
    pub served_epoch: u64,
    /// Write→confirmed-swap latency, only for published cycles.
    pub publish_latency_us: Option<u64>,
    /// Ingest-start → cycle-end wall time: how stale this cycle's data
    /// was by the time it could have influenced serving.
    pub staleness_us: u64,
}

/// The whole run's results.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Per-cycle records, in order.
    pub cycles: Vec<CycleRecord>,
    /// Events ingested into training across all cycles.
    pub events_ingested: usize,
    /// Ingest+train throughput over the run's training time.
    pub events_per_sec: f64,
    /// Epoch serving when the loop ended.
    pub final_served_epoch: u64,
    /// Server-side successful reload count at loop end.
    pub reloads_ok: u64,
    /// Server-side failed reload count at loop end (0 unless a torn or
    /// corrupt checkpoint reached the reload path — it never should).
    pub reloads_failed: u64,
}

impl OnlineReport {
    /// Cycles with the given outcome.
    pub fn count(&self, outcome: CycleOutcome) -> usize {
        self.cycles.iter().filter(|c| c.outcome == outcome).count()
    }

    /// The deterministic skeleton of the run: everything that must be
    /// bit-identical between two same-seed runs (wall-clock fields
    /// excluded). Two runs reproduce iff their signatures are equal.
    pub fn signature(&self) -> Vec<(usize, &'static str, &'static str, u64, u64, u64)> {
        self.cycles
            .iter()
            .map(|c| {
                (
                    c.cycle,
                    c.fault.label(),
                    c.outcome.label(),
                    c.served_epoch,
                    c.candidate_hit_rate.to_bits(),
                    c.baseline_hit_rate.to_bits(),
                )
            })
            .collect()
    }
}

/// Runs the loop against an already-started server.
///
/// `model` must be the generation the server is currently serving (the
/// warmed-up model whose checkpoint `ckpt` holds); the loop trains it
/// incrementally and publishes through `ckpt`.
pub fn run_online_loop(
    dataset: &Arc<Dataset>,
    split: &Arc<CrossingCitySplit>,
    server: &Server,
    ckpt: &Path,
    model: &mut STTransRec,
    config: &OnlineLoopConfig,
) -> std::io::Result<OnlineReport> {
    let publisher = Publisher::new(server.local_addr(), ckpt).with_format(config.snapshot_format);
    // The baseline mirrors what is serving: it starts as the published
    // warmup generation and is refreshed from the checkpoint after every
    // confirmed publish.
    let mut baseline = STTransRec::new(dataset, split, config.model.clone());
    baseline.restore(std::fs::File::open(ckpt)?)?;

    let mut stream = CheckinStream::new(dataset, config.seed);
    let mut trainer = IncrementalTrainer::new(dataset, config.negatives, config.seed ^ 0x7EA1);
    let mut shadow = ShadowWindow::new(config.shadow_capacity);

    let mut cycles = Vec::with_capacity(config.faults.len());
    let mut events_ingested = 0usize;
    let mut train_time = std::time::Duration::ZERO;

    for cycle in 0..config.faults.len() {
        let cycle_start = Instant::now();
        let mut loss_sum = 0.0f32;
        let mut events_trained = 0usize;
        let train_start = Instant::now();
        for _ in 0..config.train_batches_per_cycle {
            let events = stream.next_batch(config.micro_batch);
            let stats = trainer.ingest(model, dataset, &events);
            loss_sum += stats.loss;
            events_trained += stats.events;
        }
        train_time += train_start.elapsed();
        events_ingested += events_trained;
        // Held out: the trainer never sees these, the gate judges on them.
        shadow.extend(&stream.next_batch(config.shadow_batch));

        let fault = config.faults.fault_for(cycle);
        // Under Regress the real candidate is swapped for an untrained
        // impostor — the defended failure (a bad training run, a bug
        // producing garbage weights) the gate exists to stop.
        let impostor = (fault == PublishFault::Regress).then(|| {
            let cfg = ModelConfig {
                seed: config.seed ^ (cycle as u64).wrapping_add(0xBAD5EED),
                ..config.model.clone()
            };
            STTransRec::new(dataset, split, cfg)
        });
        let candidate: &STTransRec = impostor.as_ref().unwrap_or(model);
        let decision = gate(
            candidate,
            &baseline,
            dataset,
            &shadow,
            &config.gate,
            cycle as u64,
        );

        let (outcome, publish_latency_us) = if !decision.accept {
            (CycleOutcome::Rejected, None)
        } else {
            match fault {
                PublishFault::Crash => {
                    publisher.crash_mid_publish(candidate)?;
                    (CycleOutcome::Crashed, None)
                }
                _ => {
                    let published = publisher.publish(candidate)?;
                    baseline.restore(std::fs::File::open(ckpt)?)?;
                    (
                        CycleOutcome::Published,
                        Some(published.latency.as_micros() as u64),
                    )
                }
            }
        };

        cycles.push(CycleRecord {
            cycle,
            fault,
            outcome,
            events_trained,
            loss: loss_sum / config.train_batches_per_cycle as f32,
            candidate_hit_rate: decision.candidate.hit_rate,
            baseline_hit_rate: decision.baseline.hit_rate,
            served_epoch: publisher.served_epoch()?,
            publish_latency_us,
            staleness_us: cycle_start.elapsed().as_micros() as u64,
        });
    }

    let metrics = server.engine().metrics();
    use std::sync::atomic::Ordering::Relaxed;
    Ok(OnlineReport {
        cycles,
        events_ingested,
        events_per_sec: events_ingested as f64 / train_time.as_secs_f64().max(1e-9),
        final_served_epoch: publisher.served_epoch()?,
        reloads_ok: metrics.reloads_ok.load(Relaxed),
        reloads_failed: metrics.reloads_failed.load(Relaxed),
    })
}

/// Warm-up + serve + loop in one call: trains `config.warmup_epochs`
/// offline, publishes generation 1 into `scratch/model.bin`, starts an
/// embedded server on an ephemeral loopback port, runs the online loop
/// against it, and shuts the server down. The checkpoint (and any torn
/// crash file) stays in `scratch` for inspection.
pub fn run_embedded(
    dataset: &Arc<Dataset>,
    split: &Arc<CrossingCitySplit>,
    scratch: &Path,
    config: &OnlineLoopConfig,
) -> std::io::Result<OnlineReport> {
    let ckpt = scratch.join("model.bin");
    let mut model = STTransRec::new(dataset, split, config.model.clone());
    for _ in 0..config.warmup_epochs {
        model.train_epoch(dataset);
    }
    st_tensor::save_params_atomic_as(model.params(), &ckpt, config.snapshot_format)?;

    let serve_config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let reloader = Reloader::new(dataset.clone(), split.clone(), config.model.clone(), &ckpt);
    let (frozen, snapshot_bytes) = reloader.load_frozen()?;
    let engine = Engine::new_frozen(
        dataset.clone(),
        frozen,
        snapshot_bytes,
        Some(reloader),
        &serve_config,
    );
    let server = Server::start(engine, &serve_config)?;

    let report = run_online_loop(dataset, split, &server, &ckpt, &mut model, config);
    server.shutdown();
    report
}
