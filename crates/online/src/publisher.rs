//! Gated snapshot publishing against a running `st-serve` instance.
//!
//! A publish is two steps, each individually safe:
//!
//! 1. **Atomic checkpoint write** — [`st_tensor::save_params_atomic_as`]
//!    puts the candidate's bytes in a same-directory temp file and
//!    renames it over the serving checkpoint. A crash at any instant
//!    leaves either the old checkpoint or the new one, never a torn mix.
//!    The publisher picks the v2 container encoding
//!    ([`Publisher::with_format`]): f32 by default, or f16/int8 to
//!    shrink the serving footprint — the server maps whatever encoding
//!    arrives and dequantizes on gather.
//! 2. **Reload RPC** — `POST /admin/reload` makes the server load the
//!    checkpoint into a fresh frozen snapshot (with retrieval index) and
//!    atomically swap it in, bumping the serving epoch.
//!
//! The publisher also reads the server's `/metrics` exposition to verify
//! what is actually serving (epoch + last-reload timestamp) rather than
//! trusting its own bookkeeping.

use st_serve::client::HttpClient;
use st_tensor::StorageEncoding;
use st_transrec_core::STTransRec;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Publishes candidate snapshots to one server + checkpoint path.
pub struct Publisher {
    addr: SocketAddr,
    ckpt: PathBuf,
    format: StorageEncoding,
}

/// A confirmed publish.
#[derive(Debug, Clone, Copy)]
pub struct PublishOutcome {
    /// Serving epoch after the swap, as reported by the reload response.
    pub epoch: u64,
    /// Wall time from checkpoint write to confirmed swap.
    pub latency: Duration,
}

impl Publisher {
    /// A publisher for the server at `addr` reloading from `ckpt`,
    /// writing f32 v2 containers.
    pub fn new(addr: SocketAddr, ckpt: &Path) -> Self {
        Self {
            addr,
            ckpt: ckpt.to_path_buf(),
            format: StorageEncoding::F32,
        }
    }

    /// Sets the container encoding for every subsequent publish. Lossy
    /// encodings (f16/int8) apply to the embedding tables only; tower
    /// weights always stay f32.
    pub fn with_format(mut self, format: StorageEncoding) -> Self {
        self.format = format;
        self
    }

    /// The checkpoint path this publisher writes.
    pub fn checkpoint(&self) -> &Path {
        &self.ckpt
    }

    /// The container encoding this publisher writes.
    pub fn format(&self) -> StorageEncoding {
        self.format
    }

    /// Atomically writes `model` to the checkpoint and swaps it into the
    /// server, returning the confirmed new epoch.
    pub fn publish(&self, model: &STTransRec) -> std::io::Result<PublishOutcome> {
        let start = Instant::now();
        st_tensor::save_params_atomic_as(model.params(), &self.ckpt, self.format)?;
        let mut client = HttpClient::connect(self.addr)?;
        let resp = client.post("/admin/reload")?;
        if resp.status != 200 {
            return Err(std::io::Error::other(format!(
                "reload rejected with {}: {}",
                resp.status, resp.body
            )));
        }
        let epoch = parse_field(&resp.body, "\"model_epoch\":").ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("no model_epoch in reload response: {}", resp.body),
            )
        })?;
        Ok(PublishOutcome {
            epoch,
            latency: start.elapsed(),
        })
    }

    /// Simulates the publisher dying mid-write: roughly half of the
    /// candidate's serialized bytes land in a `.crash-` temp file beside
    /// the checkpoint, no rename happens, no reload is issued. Returns
    /// the torn file's path so tests can assert it is quarantined.
    pub fn crash_mid_publish(&self, model: &STTransRec) -> std::io::Result<PathBuf> {
        let mut bytes = Vec::new();
        model.save(&mut bytes)?;
        bytes.truncate(bytes.len() / 2);
        let dir = self.ckpt.parent().unwrap_or_else(|| Path::new("."));
        let torn = dir.join(format!(
            ".{}.crash-{}",
            self.ckpt
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "model".into()),
            std::process::id()
        ));
        std::fs::write(&torn, &bytes)?;
        Ok(torn)
    }

    /// The epoch the server is actually serving, per `/metrics`.
    pub fn served_epoch(&self) -> std::io::Result<u64> {
        self.scrape_gauge("st_serve_model_epoch ")
    }

    /// Unix seconds of the server's last successful (re)load.
    pub fn last_reload_unix(&self) -> std::io::Result<u64> {
        self.scrape_gauge("st_serve_last_reload_timestamp_seconds ")
    }

    fn scrape_gauge(&self, prefix: &str) -> std::io::Result<u64> {
        let mut client = HttpClient::connect(self.addr)?;
        let resp = client.get("/metrics")?;
        resp.body
            .lines()
            .find_map(|l| l.strip_prefix(prefix))
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("gauge {prefix:?} missing from /metrics"),
                )
            })
    }
}

/// Extracts the integer following `key` in a JSON-ish body.
fn parse_field(body: &str, key: &str) -> Option<u64> {
    let rest = &body[body.find(key)? + key.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_field_reads_reload_body() {
        assert_eq!(
            parse_field("{\"reloaded\":true,\"model_epoch\":42}", "\"model_epoch\":"),
            Some(42)
        );
        assert_eq!(parse_field("{}", "\"model_epoch\":"), None);
    }
}
