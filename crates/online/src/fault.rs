//! Deterministic fault injection for the publish path.
//!
//! Mirrors the serving tier's chaos discipline (seeded scripts, not
//! racing timers): a [`FaultPlan`] fixes, per publish cycle, whether the
//! pipeline runs clean, swaps in a metric-regressing candidate (the gate
//! must reject it), or crashes mid-publish after the candidate bytes are
//! partially written (the atomic write must leave the served checkpoint
//! untouched). The same seed always yields the same plan, so two runs of
//! the loop produce identical publish/reject/crash sequences.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What to inject at one publish cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishFault {
    /// No fault: gate and publish the real candidate.
    Clean,
    /// Replace the candidate with an untrained, randomly initialized
    /// model — a guaranteed metric regression the gate must catch.
    Regress,
    /// Simulate the publisher dying mid-write: candidate bytes are
    /// partially written to a temp file that is never renamed, and no
    /// reload is issued.
    Crash,
}

impl PublishFault {
    /// Stable lowercase label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            PublishFault::Clean => "clean",
            PublishFault::Regress => "regress",
            PublishFault::Crash => "crash",
        }
    }
}

/// A per-cycle fault schedule, fixed before the loop starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PublishFault>,
}

impl FaultPlan {
    /// All-clean plan (production shape).
    pub fn none(cycles: usize) -> Self {
        Self {
            faults: vec![PublishFault::Clean; cycles],
        }
    }

    /// An explicit schedule, for tests that pin faults to cycles.
    pub fn explicit(faults: Vec<PublishFault>) -> Self {
        Self { faults }
    }

    /// A seeded chaos plan guaranteed to contain at least one `Regress`
    /// and one `Crash` (so every defended failure mode is exercised),
    /// with the remaining cycles mostly clean. Needs `cycles >= 3` so at
    /// least one clean publish also happens.
    pub fn seeded(cycles: usize, seed: u64) -> Self {
        assert!(cycles >= 3, "need >= 3 cycles for regress + crash + clean");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut faults = vec![PublishFault::Clean; cycles];
        // Reserve cycle 0 for a clean publish: the gate needs at least
        // one trained generation as baseline before a regression can be
        // meaningfully rejected.
        let regress_at = 1 + rng.gen_range(0..cycles - 1);
        let crash_at = loop {
            let c = 1 + rng.gen_range(0..cycles - 1);
            if c != regress_at {
                break c;
            }
        };
        faults[regress_at] = PublishFault::Regress;
        faults[crash_at] = PublishFault::Crash;
        for (i, f) in faults.iter_mut().enumerate() {
            if i > 0 && *f == PublishFault::Clean && rng.gen_bool(0.15) {
                *f = PublishFault::Regress;
            }
        }
        Self { faults }
    }

    /// The fault scheduled for `cycle` (clean past the end of the plan).
    pub fn fault_for(&self, cycle: usize) -> PublishFault {
        self.faults
            .get(cycle)
            .copied()
            .unwrap_or(PublishFault::Clean)
    }

    /// Number of planned cycles.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no cycles.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many cycles schedule `fault`.
    pub fn count(&self, fault: PublishFault) -> usize {
        self.faults.iter().filter(|&&f| f == fault).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic_and_covers_all_modes() {
        for seed in 0..50 {
            let plan = FaultPlan::seeded(5, seed);
            assert_eq!(plan, FaultPlan::seeded(5, seed));
            assert_eq!(plan.fault_for(0), PublishFault::Clean, "seed {seed}");
            assert!(plan.count(PublishFault::Regress) >= 1, "seed {seed}");
            assert_eq!(plan.count(PublishFault::Crash), 1, "seed {seed}");
        }
        assert_ne!(
            FaultPlan::seeded(8, 1),
            FaultPlan::seeded(8, 2),
            "distinct seeds should (here) differ"
        );
    }

    #[test]
    fn past_the_plan_is_clean() {
        let plan = FaultPlan::explicit(vec![PublishFault::Crash]);
        assert_eq!(plan.fault_for(0), PublishFault::Crash);
        assert_eq!(plan.fault_for(7), PublishFault::Clean);
    }
}
