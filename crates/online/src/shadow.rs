//! Held-out shadow window and the publish gate.
//!
//! The stream is split: most events train, a slice per cycle is held out
//! into a bounded [`ShadowWindow`] the trainer never sees. Before a
//! candidate snapshot may publish, [`gate`] shadow-evaluates it *and*
//! the currently serving baseline on that window with identical seeded
//! candidate sets ([`st_eval::evaluate_window`]) and accepts only if the
//! candidate does not regress hit-rate beyond a tolerance. A rejected
//! candidate is never written to the checkpoint and never served.

use st_data::{Checkin, Dataset};
use st_eval::{evaluate_window, Scorer, WindowEvalConfig, WindowReport};

/// Bounded FIFO of the most recent held-out events.
#[derive(Debug, Clone)]
pub struct ShadowWindow {
    capacity: usize,
    events: Vec<Checkin>,
}

impl ShadowWindow {
    /// An empty window keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shadow window needs capacity");
        Self {
            capacity,
            events: Vec::with_capacity(capacity),
        }
    }

    /// Appends events, evicting the oldest beyond capacity.
    pub fn extend(&mut self, events: &[Checkin]) {
        self.events.extend_from_slice(events);
        if self.events.len() > self.capacity {
            let excess = self.events.len() - self.capacity;
            self.events.drain(..excess);
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[Checkin] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Gate policy for publishing a candidate snapshot.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Shadow-evaluation protocol (negatives, k, base seed).
    pub eval: WindowEvalConfig,
    /// Additive slack: accept while `candidate + tolerance >= baseline`
    /// on hit-rate, so sampling noise cannot starve publishing.
    pub tolerance: f64,
    /// Below this many held-out events the window is too thin to judge;
    /// the gate accepts (publishes) rather than stalling on no evidence.
    pub min_events: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            eval: WindowEvalConfig::default(),
            tolerance: 0.01,
            min_events: 16,
        }
    }
}

/// The gate's verdict, with both sides' evidence attached.
#[derive(Debug, Clone, Copy)]
pub struct GateDecision {
    /// Shadow metrics of the candidate snapshot.
    pub candidate: WindowReport,
    /// Shadow metrics of the serving baseline on identical candidates.
    pub baseline: WindowReport,
    /// Whether the candidate may be published.
    pub accept: bool,
}

/// Shadow-evaluates `candidate` against `baseline` on the window.
///
/// `cycle` perturbs the negative-sampling seed so successive gate checks
/// do not reuse one fixed candidate set (a candidate could overfit it),
/// while staying a pure function of `(config.eval.seed, cycle)` — the
/// whole accept/reject sequence replays identically under a fixed seed.
pub fn gate(
    candidate: &dyn Scorer,
    baseline: &dyn Scorer,
    dataset: &Dataset,
    window: &ShadowWindow,
    config: &GateConfig,
    cycle: u64,
) -> GateDecision {
    let eval = WindowEvalConfig {
        seed: config.eval.seed ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..config.eval.clone()
    };
    let cand = evaluate_window(candidate, dataset, window.events(), &eval);
    let base = evaluate_window(baseline, dataset, window.events(), &eval);
    let accept =
        window.len() < config.min_events || cand.hit_rate + config.tolerance >= base.hit_rate;
    GateDecision {
        candidate: cand,
        baseline: base,
        accept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, CheckinStream, SynthConfig};
    use st_data::{PoiId, UserId};

    struct Flat(f32);
    impl Scorer for Flat {
        fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
            vec![self.0; pois.len()]
        }
    }

    /// Favors low POI ids — loses to the tie-scoring Flat baseline
    /// whenever any sampled negative has a lower id than the truth.
    struct ByIdAsc;
    impl Scorer for ByIdAsc {
        fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
            pois.iter().map(|p| -(p.0 as f32)).collect()
        }
    }

    #[test]
    fn window_is_bounded_fifo() {
        let (d, _) = generate(&SynthConfig::tiny());
        let events = CheckinStream::new(&d, 3).next_batch(30);
        let mut w = ShadowWindow::new(20);
        w.extend(&events[..15]);
        assert_eq!(w.len(), 15);
        w.extend(&events[15..]);
        assert_eq!(w.len(), 20, "capped at capacity");
        assert_eq!(w.events(), &events[10..], "oldest evicted first");
    }

    #[test]
    fn gate_rejects_regression_and_accepts_parity() {
        let (d, _) = generate(&SynthConfig::tiny());
        let mut w = ShadowWindow::new(64);
        w.extend(&CheckinStream::new(&d, 4).next_batch(64));
        let cfg = GateConfig::default();

        // A flat scorer ties everything: the truth wins ties, so flat
        // baseline = perfect hit rate; a low-id-favoring candidate loses
        // whenever any negative id is below the truth's.
        let regress = gate(&ByIdAsc, &Flat(0.0), &d, &w, &cfg, 1);
        assert!(regress.candidate.hit_rate < regress.baseline.hit_rate);
        assert!(!regress.accept, "regressing candidate must be rejected");

        let parity = gate(&Flat(1.0), &Flat(0.0), &d, &w, &cfg, 1);
        assert_eq!(parity.candidate.hit_rate, parity.baseline.hit_rate);
        assert!(parity.accept, "parity within tolerance publishes");
    }

    #[test]
    fn thin_window_accepts_and_decisions_replay() {
        let (d, _) = generate(&SynthConfig::tiny());
        let cfg = GateConfig::default();
        let mut thin = ShadowWindow::new(64);
        thin.extend(&CheckinStream::new(&d, 4).next_batch(4));
        let d1 = gate(&ByIdAsc, &Flat(0.0), &d, &thin, &cfg, 0);
        assert!(d1.accept, "too little evidence to block publishing");

        let mut w = ShadowWindow::new(64);
        w.extend(&CheckinStream::new(&d, 4).next_batch(64));
        for cycle in 0..4 {
            let a = gate(&ByIdAsc, &Flat(0.0), &d, &w, &cfg, cycle);
            let b = gate(&ByIdAsc, &Flat(0.0), &d, &w, &cfg, cycle);
            assert_eq!(a.accept, b.accept);
            assert_eq!(a.candidate, b.candidate);
            assert_eq!(a.baseline, b.baseline);
        }
    }
}
