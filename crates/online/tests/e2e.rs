//! End-to-end chaos tests for the online loop: a real embedded server,
//! a seeded event stream, injected publish-path faults — and the three
//! guarantees DESIGN.md §14 promises:
//!
//! 1. a metric-regressing candidate is rejected by the shadow gate and
//!    never serves a single request;
//! 2. a crash mid-publish leaves the serving tier on its previous
//!    generation with an intact, loadable checkpoint;
//! 3. two runs under the same seed produce identical
//!    publish/reject/crash sequences, epochs, and shadow metrics.

use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset};
use st_online::{run_embedded, CycleOutcome, FaultPlan, OnlineLoopConfig, PublishFault};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "st-online-e2e-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny() -> (Arc<Dataset>, Arc<CrossingCitySplit>) {
    let (dataset, _) = generate(&SynthConfig::tiny());
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(&dataset, CityId(1)));
    (dataset, split)
}

#[test]
fn regressing_candidate_is_rejected_and_never_served() {
    let (dataset, split) = tiny();
    let scratch = scratch_dir("regress");
    let mut config = OnlineLoopConfig::smoke(42);
    // Pin the schedule: clean publish, then a regressing impostor, then
    // a clean publish to prove the loop recovers.
    config.faults = FaultPlan::explicit(vec![
        PublishFault::Clean,
        PublishFault::Regress,
        PublishFault::Clean,
    ]);

    let report = run_embedded(&dataset, &split, &scratch, &config).expect("loop runs");

    let regress = &report.cycles[1];
    assert_eq!(regress.fault, PublishFault::Regress);
    assert_eq!(
        regress.outcome,
        CycleOutcome::Rejected,
        "untrained impostor must lose the shadow gate: candidate {} vs baseline {}",
        regress.candidate_hit_rate,
        regress.baseline_hit_rate
    );
    assert!(
        regress.candidate_hit_rate < regress.baseline_hit_rate,
        "impostor should measurably regress"
    );
    // Never served: the epoch after the regress cycle equals the epoch
    // after the first publish — no reload happened for the impostor.
    assert_eq!(regress.served_epoch, report.cycles[0].served_epoch);

    // The loop recovers: both clean cycles published, and the serving
    // tier saw exactly those two reloads, none failed.
    assert_eq!(report.cycles[0].outcome, CycleOutcome::Published);
    assert_eq!(report.cycles[2].outcome, CycleOutcome::Published);
    assert_eq!(report.count(CycleOutcome::Published), 2);
    assert_eq!(report.count(CycleOutcome::Rejected), 1);
    assert_eq!(report.reloads_ok, 2);
    assert_eq!(report.reloads_failed, 0);
    assert_eq!(
        report.final_served_epoch, 3,
        "start epoch 1 + two publishes"
    );
}

#[test]
fn crash_mid_publish_leaves_serving_tier_intact() {
    let (dataset, split) = tiny();
    let scratch = scratch_dir("crash");
    let mut config = OnlineLoopConfig::smoke(43);
    config.faults = FaultPlan::explicit(vec![
        PublishFault::Clean,
        PublishFault::Crash,
        PublishFault::Clean,
    ]);

    let report = run_embedded(&dataset, &split, &scratch, &config).expect("loop runs");

    let crash = &report.cycles[1];
    assert_eq!(crash.outcome, CycleOutcome::Crashed);
    // The crash happened *after* the gate accepted — the dangerous case:
    // a good candidate died halfway through its write.
    assert_eq!(
        crash.served_epoch, report.cycles[0].served_epoch,
        "crash must not move the serving epoch"
    );

    // The torn temp file exists and is NOT the checkpoint: the atomic
    // path never exposes partial bytes under the checkpoint name.
    let torn: Vec<_> = std::fs::read_dir(&scratch)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".crash-"))
        .collect();
    assert_eq!(torn.len(), 1, "exactly one torn publish artifact");

    // The checkpoint still loads cleanly — it is the *previous*
    // generation's bytes, untouched by the crashed publish.
    let store = st_tensor::load_params(std::fs::File::open(scratch.join("model.bin")).unwrap())
        .expect("checkpoint survives the crash");
    assert!(!store.is_empty());
    // And the torn bytes would have been rejected had they ever been
    // renamed into place (truncated stream -> load error).
    let torn_bytes = std::fs::read(torn[0].path()).unwrap();
    assert!(st_tensor::load_params(torn_bytes.as_slice()).is_err());

    // Cycle 2 recovers with a clean publish on top of the old generation.
    assert_eq!(report.cycles[2].outcome, CycleOutcome::Published);
    assert_eq!(report.final_served_epoch, 3);
    assert_eq!(report.reloads_failed, 0);
}

#[test]
fn same_seed_runs_reproduce_identical_publish_sequences() {
    let (dataset, split) = tiny();
    let config = OnlineLoopConfig::smoke(44);
    // The seeded smoke plan carries at least one regression and one
    // crash; both runs must walk the exact same path through them.
    assert!(config.faults.count(PublishFault::Regress) >= 1);
    assert_eq!(config.faults.count(PublishFault::Crash), 1);

    let a = run_embedded(&dataset, &split, &scratch_dir("repro-a"), &config).expect("run a");
    let b = run_embedded(&dataset, &split, &scratch_dir("repro-b"), &config).expect("run b");

    assert_eq!(
        a.signature(),
        b.signature(),
        "same seed must replay the same outcomes, epochs, and metrics"
    );
    assert_eq!(a.events_ingested, b.events_ingested);
    assert_eq!(a.final_served_epoch, b.final_served_epoch);

    // And a different seed takes a different path (stream, faults, and
    // gate seeds all derive from it).
    let other = OnlineLoopConfig::smoke(45);
    let c = run_embedded(&dataset, &split, &scratch_dir("repro-c"), &other).expect("run c");
    assert_ne!(
        a.signature(),
        c.signature(),
        "distinct seeds should not collide on the full signature"
    );
}
