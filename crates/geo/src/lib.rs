//! # st-geo
//!
//! Geospatial substrate for the ST-TransRec reproduction: geographic
//! points and distances, uniform city grids, the paper's Algorithm 1
//! (clustering grid cells into *uniformly accessible regions* by visitor
//! overlap), and the region-density bookkeeping behind the density-based
//! resampler (Eq. 6-8).
//!
//! ```
//! use st_geo::{BoundingBox, CellUserIndex, GeoPoint, Grid, SeedOrder, segment_regions};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let grid = Grid::new(BoundingBox::new(34.0, 34.3, -118.5, -118.1), 8, 8);
//! let mut index = CellUserIndex::new(grid.num_cells());
//! let p = GeoPoint::new(34.05, -118.25);
//! let cell = grid.flat_index(grid.cell_of(&p).unwrap());
//! index.record(cell, 42);
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let seg = segment_regions(&grid, &index, 0.10, SeedOrder::DenseFirst, &mut rng);
//! assert_eq!(seg.num_regions(), 1);
//! ```

#![warn(missing_docs)]

mod density;
mod grid;
mod point;
mod region;

pub use density::RegionDensities;
pub use grid::{BoundingBox, Grid, GridCell};
pub use point::{GeoPoint, EARTH_RADIUS_KM};
pub use region::{
    build_cell_user_index, segment_regions, CellUserIndex, Region, RegionId, SeedOrder,
    Segmentation,
};
