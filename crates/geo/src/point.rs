//! Geographic points and great-circle distances.

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 geographic point (degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating coordinate ranges.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates; check-in data with bad
    /// coordinates should be rejected at ingestion, not propagated.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        Self { lat, lon }
    }

    /// Haversine great-circle distance to `other`, in kilometres.
    pub fn haversine_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(34.05, -118.24);
        assert_eq!(p.haversine_km(&p), 0.0);
    }

    #[test]
    fn la_to_vegas_known_distance() {
        // Los Angeles downtown to Las Vegas strip: ~361 km great-circle.
        let la = GeoPoint::new(34.0522, -118.2437);
        let lv = GeoPoint::new(36.1147, -115.1728);
        let d = la.haversine_km(&lv);
        assert!((d - 361.5).abs() < 3.0, "got {d}");
    }

    #[test]
    fn symmetry() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-5.0, 120.0);
        assert!((a.haversine_km(&b) - b.haversine_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((a.haversine_km(&b) - half).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_bad_latitude() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn rejects_bad_longitude() {
        GeoPoint::new(0.0, 200.0);
    }
}
