//! Uniform `n1 x n2` grid segmentation of a city's bounding box.
//!
//! The paper (Sec. 3.1.4) first divides a city into equal-sized grids;
//! each POI maps to exactly one grid cell by its coordinates. Cells are
//! addressed either by `(row, col)` or by a flat index `row * n2 + col`.

use crate::GeoPoint;

/// An axis-aligned latitude/longitude bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a box; edges may not be inverted or degenerate.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Self {
        assert!(min_lat < max_lat, "degenerate latitude span");
        assert!(min_lon < max_lon, "degenerate longitude span");
        Self {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        }
    }

    /// Smallest box covering all `points`.
    ///
    /// Returns `None` for an empty input. A tiny margin is added so every
    /// point maps to a valid grid cell (points on the max edge still land
    /// in the last row/column). The margin is clamped to the legal
    /// coordinate domain: an unclamped margin pushes boxes built from
    /// points at the poles or the antimeridian past ±90/±180, and any
    /// [`GeoPoint`] later derived from such a box (e.g.
    /// [`Grid::cell_center`] of an edge cell over a tiny span) panics its
    /// coordinate validation. At a domain edge the box edge coincides
    /// with the extreme point, which [`BoundingBox::contains`] and
    /// [`Grid::cell_of`] both accept (max edges are inclusive).
    pub fn covering(points: impl IntoIterator<Item = GeoPoint>) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = (first.lat, first.lat, first.lon, first.lon);
        for p in it {
            bb.0 = bb.0.min(p.lat);
            bb.1 = bb.1.max(p.lat);
            bb.2 = bb.2.min(p.lon);
            bb.3 = bb.3.max(p.lon);
        }
        const MARGIN: f64 = 1e-6;
        Some(Self::new(
            (bb.0 - MARGIN).max(-90.0),
            (bb.1 + MARGIN).min(90.0),
            (bb.2 - MARGIN).max(-180.0),
            (bb.3 + MARGIN).min(180.0),
        ))
    }

    /// True if `p` lies inside the box (all edges inclusive, matching
    /// [`Grid::cell_of`]'s max-edge clamp: a point exactly on the max
    /// edge belongs to the last row/column, it does not fall off).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Geographic centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }
}

/// A `(row, col)` cell address within a [`Grid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCell {
    /// Row index (latitude direction), `0..n1`.
    pub row: usize,
    /// Column index (longitude direction), `0..n2`.
    pub col: usize,
}

/// A uniform `n1 x n2` grid over a bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    bbox: BoundingBox,
    n1: usize,
    n2: usize,
}

impl Grid {
    /// Creates an `n1 x n2` grid over `bbox`.
    pub fn new(bbox: BoundingBox, n1: usize, n2: usize) -> Self {
        assert!(n1 > 0 && n2 > 0, "grid dimensions must be positive");
        Self { bbox, n1, n2 }
    }

    /// The covered bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Rows (latitude bands).
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// Columns (longitude bands).
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.n1 * self.n2
    }

    /// Maps a point to its cell, or `None` if outside the box.
    ///
    /// Points exactly on the max edges clamp into the last row/column so a
    /// box built with [`BoundingBox::covering`] loses no input point.
    pub fn cell_of(&self, p: &GeoPoint) -> Option<GridCell> {
        if p.lat < self.bbox.min_lat
            || p.lat > self.bbox.max_lat
            || p.lon < self.bbox.min_lon
            || p.lon > self.bbox.max_lon
        {
            return None;
        }
        let fr = (p.lat - self.bbox.min_lat) / (self.bbox.max_lat - self.bbox.min_lat);
        let fc = (p.lon - self.bbox.min_lon) / (self.bbox.max_lon - self.bbox.min_lon);
        let row = ((fr * self.n1 as f64) as usize).min(self.n1 - 1);
        let col = ((fc * self.n2 as f64) as usize).min(self.n2 - 1);
        Some(GridCell { row, col })
    }

    /// Flat index of a cell (`row * n2 + col`).
    pub fn flat_index(&self, cell: GridCell) -> usize {
        debug_assert!(cell.row < self.n1 && cell.col < self.n2);
        cell.row * self.n2 + cell.col
    }

    /// Inverse of [`Grid::flat_index`].
    pub fn cell_from_flat(&self, idx: usize) -> GridCell {
        debug_assert!(idx < self.num_cells());
        GridCell {
            row: idx / self.n2,
            col: idx % self.n2,
        }
    }

    /// 4-neighbourhood (von Neumann) of a cell, clipped to the grid.
    pub fn neighbors(&self, cell: GridCell) -> impl Iterator<Item = GridCell> + '_ {
        let (r, c) = (cell.row as isize, cell.col as isize);
        [(r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)]
            .into_iter()
            .filter_map(move |(nr, nc)| {
                (nr >= 0 && nc >= 0 && (nr as usize) < self.n1 && (nc as usize) < self.n2)
                    .then_some(GridCell {
                        row: nr as usize,
                        col: nc as usize,
                    })
            })
    }

    /// Cells at Chebyshev distance exactly `r` from `center`, clipped to
    /// the grid, in deterministic row-major order. `r == 0` yields only
    /// `center` itself.
    ///
    /// This is the expansion step of grid-based candidate retrieval: ring
    /// 0 is the query cell, ring 1 its 8-neighbourhood shell, and so on
    /// outward until the candidate budget fills.
    pub fn ring(&self, center: GridCell, r: usize) -> impl Iterator<Item = GridCell> + '_ {
        let (cr, cc) = (center.row as isize, center.col as isize);
        let r = r as isize;
        let rows = cr - r..=cr + r;
        rows.flat_map(move |row| {
            // Top and bottom edges sweep the full span; the sides only
            // contribute their two extreme columns.
            // For r == 0 the single row is both the top and bottom edge,
            // so the side branch below only ever runs with r >= 1.
            let cols: Vec<isize> = if row == cr - r || row == cr + r {
                (cc - r..=cc + r).collect()
            } else {
                vec![cc - r, cc + r]
            };
            cols.into_iter().map(move |col| (row, col))
        })
        .filter_map(move |(row, col)| {
            (row >= 0 && col >= 0 && (row as usize) < self.n1 && (col as usize) < self.n2)
                .then_some(GridCell {
                    row: row as usize,
                    col: col as usize,
                })
        })
    }

    /// All cells within Chebyshev distance `r` of `center` (rings
    /// `0..=r`), nearest ring first — the full expansion order of
    /// ring-based retrieval.
    pub fn rings_within(&self, center: GridCell, r: usize) -> impl Iterator<Item = GridCell> + '_ {
        (0..=r).flat_map(move |d| self.ring(center, d))
    }

    /// Geographic centre of a cell.
    pub fn cell_center(&self, cell: GridCell) -> GeoPoint {
        let lat_step = (self.bbox.max_lat - self.bbox.min_lat) / self.n1 as f64;
        let lon_step = (self.bbox.max_lon - self.bbox.min_lon) / self.n2 as f64;
        GeoPoint::new(
            self.bbox.min_lat + (cell.row as f64 + 0.5) * lat_step,
            self.bbox.min_lon + (cell.col as f64 + 0.5) * lon_step,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid() -> Grid {
        Grid::new(BoundingBox::new(0.0, 10.0, 0.0, 20.0), 5, 4)
    }

    #[test]
    fn covering_box_contains_all_points() {
        let pts = vec![
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(-3.0, 7.0),
            GeoPoint::new(4.0, -1.0),
        ];
        let bb = BoundingBox::covering(pts.clone()).unwrap();
        for p in pts {
            assert!(bb.contains(&p), "{p:?} outside {bb:?}");
        }
        assert!(BoundingBox::covering(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_degenerate_box() {
        BoundingBox::new(1.0, 1.0, 0.0, 1.0);
    }

    #[test]
    fn cell_mapping_corners_and_edges() {
        let g = unit_grid();
        assert_eq!(
            g.cell_of(&GeoPoint::new(0.0, 0.0)),
            Some(GridCell { row: 0, col: 0 })
        );
        // Max edges clamp into the last cell instead of falling off.
        assert_eq!(
            g.cell_of(&GeoPoint::new(10.0, 20.0)),
            Some(GridCell { row: 4, col: 3 })
        );
        assert_eq!(g.cell_of(&GeoPoint::new(10.1, 0.0)), None);
        assert_eq!(g.cell_of(&GeoPoint::new(5.0, 20.5)), None);
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = unit_grid();
        for idx in 0..g.num_cells() {
            assert_eq!(g.flat_index(g.cell_from_flat(idx)), idx);
        }
    }

    #[test]
    fn neighbors_interior_and_corner() {
        let g = unit_grid();
        let inner: Vec<_> = g.neighbors(GridCell { row: 2, col: 2 }).collect();
        assert_eq!(inner.len(), 4);
        let corner: Vec<_> = g.neighbors(GridCell { row: 0, col: 0 }).collect();
        assert_eq!(corner.len(), 2);
        assert!(corner.contains(&GridCell { row: 1, col: 0 }));
        assert!(corner.contains(&GridCell { row: 0, col: 1 }));
    }

    #[test]
    fn covering_handles_identical_and_domain_edge_points() {
        // All points identical: the margin must still open a valid span.
        let p = GeoPoint::new(37.5, -122.3);
        let bb = BoundingBox::covering(vec![p, p, p]).unwrap();
        assert!(bb.contains(&p));

        // Points pinned at the poles / antimeridian: the margin clamps to
        // the legal domain instead of producing lat > 90 / lon > 180, and
        // the extreme point still maps to a valid cell of a fine grid
        // whose every cell center must be a constructible GeoPoint (this
        // panicked before the clamp).
        for p in [
            GeoPoint::new(90.0, 180.0),
            GeoPoint::new(-90.0, -180.0),
            GeoPoint::new(90.0, 0.0),
        ] {
            let bb = BoundingBox::covering(vec![p, p]).unwrap();
            assert!(bb.max_lat <= 90.0 && bb.min_lat >= -90.0);
            assert!(bb.max_lon <= 180.0 && bb.min_lon >= -180.0);
            assert!(bb.contains(&p), "{p:?} outside {bb:?}");
            let g = Grid::new(bb, 12, 12);
            let cell = g.cell_of(&p).expect("domain-edge point lost");
            let _ = g.cell_center(cell); // must not panic validation
        }
    }

    #[test]
    fn ring_zero_is_center_and_ring_one_is_shell() {
        let g = unit_grid();
        let c = GridCell { row: 2, col: 2 };
        assert_eq!(g.ring(c, 0).collect::<Vec<_>>(), vec![c]);
        let shell: Vec<_> = g.ring(c, 1).collect();
        assert_eq!(shell.len(), 8);
        for cell in &shell {
            let dr = cell.row.abs_diff(c.row);
            let dc = cell.col.abs_diff(c.col);
            assert_eq!(dr.max(dc), 1, "{cell:?} not on ring 1");
        }
    }

    #[test]
    fn ring_clips_at_grid_edges() {
        let g = unit_grid(); // 5 x 4
        let corner = GridCell { row: 0, col: 0 };
        let shell: Vec<_> = g.ring(corner, 1).collect();
        assert_eq!(shell.len(), 3);
        // A ring big enough to leave the grid entirely yields nothing.
        assert_eq!(g.ring(corner, 10).count(), 0);
    }

    #[test]
    fn rings_within_covers_every_cell_exactly_once() {
        let g = unit_grid();
        let c = GridCell { row: 1, col: 3 };
        let max_r = g.n1().max(g.n2());
        let mut seen = std::collections::HashSet::new();
        let mut last_dist = 0usize;
        for cell in g.rings_within(c, max_r) {
            let d = cell.row.abs_diff(c.row).max(cell.col.abs_diff(c.col));
            assert!(d >= last_dist, "rings must expand outward");
            last_dist = d;
            assert!(seen.insert(cell), "{cell:?} emitted twice");
        }
        assert_eq!(seen.len(), g.num_cells(), "expansion must reach all cells");
    }

    #[test]
    fn cell_center_lies_in_cell() {
        let g = unit_grid();
        for idx in 0..g.num_cells() {
            let cell = g.cell_from_flat(idx);
            let center = g.cell_center(cell);
            assert_eq!(g.cell_of(&center), Some(cell));
        }
    }
}
