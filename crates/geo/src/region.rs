//! Algorithm 1: clustering grid cells into *uniformly accessible regions*.
//!
//! Two adjacent cells are considered mutually accessible when they share
//! enough visitors (Eq. 5):
//!
//! ```text
//! dis(r_a, r_b) = |U_a ∩ U_b| / min(|U_a|, |U_b|)
//! ```
//!
//! A region is the set of cells reachable from a seed cell through chains
//! of adjacent cells with `dis >= delta`. We grow regions dense-first (the
//! paper: "starting from the dense grids we extensively merge..."), which
//! makes the segmentation deterministic; a seeded random seed-order is
//! available for experiments on seed sensitivity.

use crate::Grid;
use rand::{seq::SliceRandom, Rng};

/// Identifier of a region produced by [`segment_regions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub usize);

/// Per-cell visitor sets, the input to Algorithm 1.
///
/// User ids are stored as sorted, deduplicated `u32` vectors so the
/// overlap in Eq. 5 is a linear merge, not a hash probe per element.
#[derive(Debug, Clone, Default)]
pub struct CellUserIndex {
    users: Vec<Vec<u32>>,
    checkins: Vec<usize>,
}

impl CellUserIndex {
    /// Creates an index for `num_cells` cells.
    pub fn new(num_cells: usize) -> Self {
        Self {
            users: vec![Vec::new(); num_cells],
            checkins: vec![0; num_cells],
        }
    }

    /// Records one check-in by `user` in `cell` (flat index).
    pub fn record(&mut self, cell: usize, user: u32) {
        self.checkins[cell] += 1;
        let list = &mut self.users[cell];
        if let Err(pos) = list.binary_search(&user) {
            list.insert(pos, user);
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.users.len()
    }

    /// Distinct visitors of a cell.
    pub fn user_count(&self, cell: usize) -> usize {
        self.users[cell].len()
    }

    /// Check-ins recorded in a cell.
    pub fn checkin_count(&self, cell: usize) -> usize {
        self.checkins[cell]
    }

    /// Number of users visiting both cells (sorted-merge intersection).
    pub fn overlap(&self, a: usize, b: usize) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        let (ua, ub) = (&self.users[a], &self.users[b]);
        while i < ua.len() && j < ub.len() {
            match ua[i].cmp(&ub[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// The accessibility distance of Eq. 5. Zero when either cell has no
    /// visitors (empty cells never merge).
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let min = self.user_count(a).min(self.user_count(b));
        if min == 0 {
            return 0.0;
        }
        self.overlap(a, b) as f64 / min as f64
    }
}

/// How Algorithm 1 picks its seed cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedOrder {
    /// Densest (most check-ins) unmerged cell first — deterministic, and
    /// matches the paper's "starting from the dense grids" description.
    DenseFirst,
    /// Uniformly random order, as literally written in Algorithm 1.
    Random,
}

/// A uniformly accessible region: a set of flat cell indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Flat indices of member cells, sorted ascending.
    pub cells: Vec<usize>,
}

impl Region {
    /// Number of grid cells in the region (`S_r` in Eq. 6).
    pub fn size(&self) -> usize {
        self.cells.len()
    }
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Segmentation {
    /// All regions, in creation order.
    pub regions: Vec<Region>,
    /// For each flat cell index, its region (None for cells with no visitors).
    pub cell_region: Vec<Option<RegionId>>,
}

impl Segmentation {
    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region of a flat cell index, if assigned.
    pub fn region_of_cell(&self, cell: usize) -> Option<RegionId> {
        self.cell_region.get(cell).copied().flatten()
    }

    /// The cells of a region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0]
    }
}

/// Runs Algorithm 1 over `grid` with visitor data `index` and threshold
/// `delta`, growing each region by BFS over 4-adjacent cells whose Eq. 5
/// distance is at least `delta`.
///
/// Cells with zero visitors are left unassigned; every visited cell ends
/// up in exactly one region.
///
/// # Panics
/// Panics if `index` does not cover the grid or `delta` is not in `[0, 1]`.
pub fn segment_regions(
    grid: &Grid,
    index: &CellUserIndex,
    delta: f64,
    order: SeedOrder,
    rng: &mut impl Rng,
) -> Segmentation {
    assert_eq!(
        index.num_cells(),
        grid.num_cells(),
        "user index does not match grid"
    );
    assert!((0.0..=1.0).contains(&delta), "delta must be in [0, 1]");

    let mut seeds: Vec<usize> = (0..grid.num_cells())
        .filter(|&c| index.user_count(c) > 0)
        .collect();
    match order {
        SeedOrder::DenseFirst => {
            // Sort by descending check-ins, cell index as tiebreak for
            // full determinism.
            seeds.sort_by_key(|&c| (std::cmp::Reverse(index.checkin_count(c)), c));
        }
        SeedOrder::Random => seeds.shuffle(rng),
    }

    let mut cell_region: Vec<Option<RegionId>> = vec![None; grid.num_cells()];
    let mut regions: Vec<Region> = Vec::new();

    for seed in seeds {
        if cell_region[seed].is_some() {
            continue;
        }
        let id = RegionId(regions.len());
        let mut members = vec![seed];
        cell_region[seed] = Some(id);
        let mut frontier = vec![seed];
        while let Some(cell) = frontier.pop() {
            for nb in grid.neighbors(grid.cell_from_flat(cell)) {
                let nb = grid.flat_index(nb);
                if cell_region[nb].is_some() || index.user_count(nb) == 0 {
                    continue;
                }
                if index.distance(cell, nb) >= delta {
                    cell_region[nb] = Some(id);
                    members.push(nb);
                    frontier.push(nb);
                }
            }
        }
        members.sort_unstable();
        regions.push(Region { cells: members });
    }

    Segmentation {
        regions,
        cell_region,
    }
}

/// Convenience: maps points to cells and builds the [`CellUserIndex`] in
/// one pass, skipping points outside the grid.
pub fn build_cell_user_index<'a>(
    grid: &Grid,
    checkins: impl IntoIterator<Item = (&'a crate::GeoPoint, u32)>,
) -> CellUserIndex {
    let mut index = CellUserIndex::new(grid.num_cells());
    for (point, user) in checkins {
        if let Some(cell) = grid.cell_of(point) {
            index.record(grid.flat_index(cell), user);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundingBox;
    use rand::{rngs::SmallRng, SeedableRng};

    fn grid_3x3() -> Grid {
        Grid::new(BoundingBox::new(0.0, 3.0, 0.0, 3.0), 3, 3)
    }

    #[test]
    fn overlap_and_distance() {
        let mut idx = CellUserIndex::new(2);
        for u in [1, 2, 3] {
            idx.record(0, u);
        }
        for u in [2, 3, 4, 5] {
            idx.record(1, u);
        }
        assert_eq!(idx.overlap(0, 1), 2);
        // min(|U_0|,|U_1|) = 3 -> 2/3
        assert!((idx.distance(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_deduplicates_users_but_counts_checkins() {
        let mut idx = CellUserIndex::new(1);
        idx.record(0, 7);
        idx.record(0, 7);
        assert_eq!(idx.user_count(0), 1);
        assert_eq!(idx.checkin_count(0), 2);
    }

    #[test]
    fn empty_cell_distance_is_zero() {
        let mut idx = CellUserIndex::new(2);
        idx.record(0, 1);
        assert_eq!(idx.distance(0, 1), 0.0);
    }

    /// Two horizontal strips of cells with shared users inside each strip
    /// but none across: must produce exactly two regions.
    #[test]
    fn segments_two_disconnected_communities() {
        let grid = grid_3x3();
        let mut idx = CellUserIndex::new(9);
        // Row 0 (cells 0,1,2): users 1,2 visit all three cells.
        for cell in 0..3 {
            idx.record(cell, 1);
            idx.record(cell, 2);
        }
        // Row 2 (cells 6,7,8): users 10,11.
        for cell in 6..9 {
            idx.record(cell, 10);
            idx.record(cell, 11);
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let seg = segment_regions(&grid, &idx, 0.5, SeedOrder::DenseFirst, &mut rng);
        assert_eq!(seg.num_regions(), 2);
        let r0 = seg.region_of_cell(0).unwrap();
        assert_eq!(seg.region_of_cell(1), Some(r0));
        assert_eq!(seg.region_of_cell(2), Some(r0));
        let r2 = seg.region_of_cell(6).unwrap();
        assert_ne!(r0, r2);
        // Middle row has no visitors: unassigned.
        assert_eq!(seg.region_of_cell(4), None);
    }

    #[test]
    fn delta_one_requires_full_overlap() {
        let grid = grid_3x3();
        let mut idx = CellUserIndex::new(9);
        idx.record(0, 1);
        idx.record(0, 2);
        idx.record(1, 1); // overlap 1, min 1 -> dis = 1.0
        let mut rng = SmallRng::seed_from_u64(0);
        let seg = segment_regions(&grid, &idx, 1.0, SeedOrder::DenseFirst, &mut rng);
        assert_eq!(seg.region_of_cell(0), seg.region_of_cell(1));

        // Add a non-shared user to cell 1: dis = 1/2 < 1.0 -> split.
        idx.record(1, 9);
        let seg = segment_regions(&grid, &idx, 1.0, SeedOrder::DenseFirst, &mut rng);
        assert_ne!(seg.region_of_cell(0), seg.region_of_cell(1));
        assert_eq!(seg.num_regions(), 2);
    }

    #[test]
    fn delta_zero_merges_all_visited_connected_cells() {
        let grid = grid_3x3();
        let mut idx = CellUserIndex::new(9);
        // Disjoint user sets but all 9 cells visited: delta=0 accepts any
        // adjacency, so the whole grid is one region.
        for cell in 0..9 {
            idx.record(cell, cell as u32);
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let seg = segment_regions(&grid, &idx, 0.0, SeedOrder::DenseFirst, &mut rng);
        assert_eq!(seg.num_regions(), 1);
        assert_eq!(seg.region(RegionId(0)).size(), 9);
    }

    #[test]
    fn every_visited_cell_assigned_exactly_once() {
        let grid = grid_3x3();
        let mut idx = CellUserIndex::new(9);
        let mut rng = SmallRng::seed_from_u64(3);
        for cell in [0usize, 1, 3, 7, 8] {
            for u in 0..5u32 {
                if rng.gen::<bool>() {
                    idx.record(cell, u);
                }
            }
            idx.record(cell, 99); // ensure non-empty
        }
        let seg = segment_regions(&grid, &idx, 0.3, SeedOrder::DenseFirst, &mut rng);
        let mut seen = vec![0usize; seg.num_regions()];
        for cell in 0..9 {
            match seg.region_of_cell(cell) {
                Some(r) => {
                    assert!(idx.user_count(cell) > 0);
                    assert!(seg.region(r).cells.contains(&cell));
                    seen[r.0] += 1;
                }
                None => assert_eq!(idx.user_count(cell), 0),
            }
        }
        let total: usize = seg.regions.iter().map(Region::size).sum();
        assert_eq!(total, seen.iter().sum::<usize>());
    }

    #[test]
    fn dense_first_is_deterministic() {
        let grid = grid_3x3();
        let mut idx = CellUserIndex::new(9);
        for cell in 0..9 {
            for u in 0..(cell as u32 + 1) {
                idx.record(cell, u);
            }
        }
        let seg_a = segment_regions(
            &grid,
            &idx,
            0.4,
            SeedOrder::DenseFirst,
            &mut SmallRng::seed_from_u64(1),
        );
        let seg_b = segment_regions(
            &grid,
            &idx,
            0.4,
            SeedOrder::DenseFirst,
            &mut SmallRng::seed_from_u64(999),
        );
        assert_eq!(seg_a, seg_b);
    }

    #[test]
    fn build_index_skips_out_of_grid_points() {
        let grid = grid_3x3();
        let inside = crate::GeoPoint::new(0.5, 0.5);
        let outside = crate::GeoPoint::new(50.0, 50.0);
        let idx = build_cell_user_index(&grid, [(&inside, 1u32), (&outside, 2u32)]);
        assert_eq!(idx.checkin_count(0), 1);
        let total: usize = (0..9).map(|c| idx.checkin_count(c)).sum();
        assert_eq!(total, 1);
    }
}
