//! Region densities and the resampling quotas of Eq. 6-8.
//!
//! For a region `r`, density is `rho_r = n_r / S_r` where `n_r` counts
//! check-ins and `S_r` counts grid cells. The paper balances regions by
//! sampling extra check-ins so each region reaches the density of the
//! densest region `r*` (Eq. 6), damped by the punishment rate `alpha`, and
//! draws regions proportionally to `rho_{r*} / rho_r` (Eq. 8).

use crate::{Region, RegionId, Segmentation};

/// Densities of every region in one city's segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDensities {
    /// Check-ins per region (`n_r`).
    counts: Vec<usize>,
    /// Cells per region (`S_r`).
    sizes: Vec<usize>,
}

impl RegionDensities {
    /// Computes densities from a segmentation and per-flat-cell check-in
    /// counts.
    ///
    /// # Panics
    /// Panics if a region is empty (cannot happen for [`Segmentation`]
    /// output) or check-in counts don't cover the segmentation's cells.
    pub fn from_segmentation(seg: &Segmentation, cell_checkins: &[usize]) -> Self {
        assert_eq!(
            seg.cell_region.len(),
            cell_checkins.len(),
            "check-in counts must cover every grid cell"
        );
        let counts = seg
            .regions
            .iter()
            .map(|r| r.cells.iter().map(|&c| cell_checkins[c]).sum())
            .collect();
        let sizes = seg.regions.iter().map(Region::size).collect();
        Self::new(counts, sizes)
    }

    /// Builds directly from per-region counts and sizes.
    pub fn new(counts: Vec<usize>, sizes: Vec<usize>) -> Self {
        assert_eq!(counts.len(), sizes.len(), "counts/sizes length mismatch");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every region must contain at least one cell"
        );
        Self { counts, sizes }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.counts.len()
    }

    /// Check-ins in region `r` (`n_r`).
    pub fn count(&self, r: RegionId) -> usize {
        self.counts[r.0]
    }

    /// Cells in region `r` (`S_r`).
    pub fn size(&self, r: RegionId) -> usize {
        self.sizes[r.0]
    }

    /// Density `rho_r = n_r / S_r`.
    pub fn density(&self, r: RegionId) -> f64 {
        self.counts[r.0] as f64 / self.sizes[r.0] as f64
    }

    /// The densest region `r*` (ties broken by lowest id). `None` when
    /// there are no regions or no check-ins at all.
    pub fn densest(&self) -> Option<RegionId> {
        (0..self.num_regions())
            .filter(|&r| self.counts[r] > 0)
            .max_by(|&a, &b| {
                self.density(RegionId(a))
                    .partial_cmp(&self.density(RegionId(b)))
                    .expect("densities are finite")
                    .then(b.cmp(&a)) // prefer the lower id on ties
            })
            .map(RegionId)
    }

    /// Resampling quota `n'_r` of Eq. 6: the extra check-ins needed so
    /// `(n_r + n'_r) / S_r = n_{r*} / S_{r*}` (rounded to nearest; the
    /// densest region's own quota is zero).
    pub fn resample_quota(&self, r: RegionId) -> usize {
        let Some(rstar) = self.densest() else {
            return 0;
        };
        let target = self.density(rstar) * self.sizes[r.0] as f64;
        let quota = target - self.counts[r.0] as f64;
        quota.round().max(0.0) as usize
    }

    /// Total quota across all regions (`sum_r n'_r`, before the `alpha`
    /// punishment is applied).
    pub fn total_quota(&self) -> usize {
        (0..self.num_regions())
            .map(|r| self.resample_quota(RegionId(r)))
            .sum()
    }

    /// The region-sampling distribution `P(r | c)` of Eq. 8:
    /// `P(r) ∝ rho_{r*} / rho_r`, i.e. sparser regions are drawn more
    /// often. Regions with zero check-ins are given zero probability
    /// (there is nothing there to resample).
    ///
    /// Returns an empty vector when the city has no check-ins.
    pub fn region_distribution(&self) -> Vec<f64> {
        let Some(rstar) = self.densest() else {
            return vec![0.0; self.num_regions()];
        };
        let rho_star = self.density(rstar);
        let weights: Vec<f64> = (0..self.num_regions())
            .map(|r| {
                let rho = self.density(RegionId(r));
                if rho > 0.0 {
                    rho_star / rho
                } else {
                    0.0
                }
            })
            .collect();
        let z: f64 = weights.iter().sum();
        if z == 0.0 {
            return weights;
        }
        weights.into_iter().map(|w| w / z).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three regions mirroring Fig. 2a: dense (5 check-ins / 1 cell),
    /// sparse (2 / 1), medium (6 / 3).
    fn fig2_like() -> RegionDensities {
        RegionDensities::new(vec![5, 2, 6], vec![1, 1, 3])
    }

    #[test]
    fn density_and_densest() {
        let d = fig2_like();
        assert_eq!(d.density(RegionId(0)), 5.0);
        assert_eq!(d.density(RegionId(1)), 2.0);
        assert_eq!(d.density(RegionId(2)), 2.0);
        assert_eq!(d.densest(), Some(RegionId(0)));
    }

    #[test]
    fn quota_reaches_target_density() {
        let d = fig2_like();
        // Region 1 needs 5*1 - 2 = 3 extra; region 2 needs 5*3 - 6 = 9.
        assert_eq!(d.resample_quota(RegionId(0)), 0);
        assert_eq!(d.resample_quota(RegionId(1)), 3);
        assert_eq!(d.resample_quota(RegionId(2)), 9);
        assert_eq!(d.total_quota(), 12);
        // Post-resampling densities equal rho_{r*}.
        for r in 0..3 {
            let r = RegionId(r);
            let post = (d.count(r) + d.resample_quota(r)) as f64 / d.size(r) as f64;
            assert!(
                (post - 5.0).abs() <= 0.5,
                "rounding keeps density near target"
            );
        }
    }

    #[test]
    fn region_distribution_favours_sparse_regions() {
        let d = fig2_like();
        let p = d.region_distribution();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Weights: 5/5=1, 5/2=2.5, 5/2=2.5 -> sparse regions dominate.
        assert!(p[1] > p[0] && p[2] > p[0]);
        assert!((p[1] - p[2]).abs() < 1e-12);
    }

    #[test]
    fn empty_region_gets_zero_probability() {
        let d = RegionDensities::new(vec![4, 0], vec![1, 2]);
        let p = d.region_distribution();
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_checkins_city() {
        let d = RegionDensities::new(vec![0, 0], vec![1, 1]);
        assert_eq!(d.densest(), None);
        assert_eq!(d.total_quota(), 0);
        assert!(d.region_distribution().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn uniform_city_needs_no_resampling() {
        let d = RegionDensities::new(vec![10, 20, 30], vec![1, 2, 3]);
        assert_eq!(d.total_quota(), 0);
        let p = d.region_distribution();
        for w in &p {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_segmentation_aggregates_cells() {
        use crate::{Region, Segmentation};
        let seg = Segmentation {
            regions: vec![Region { cells: vec![0, 1] }, Region { cells: vec![3] }],
            cell_region: vec![
                Some(RegionId(0)),
                Some(RegionId(0)),
                None,
                Some(RegionId(1)),
            ],
        };
        let d = RegionDensities::from_segmentation(&seg, &[3, 4, 9, 5]);
        assert_eq!(d.count(RegionId(0)), 7);
        assert_eq!(d.size(RegionId(0)), 2);
        assert_eq!(d.count(RegionId(1)), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_inputs() {
        RegionDensities::new(vec![1], vec![1, 2]);
    }
}
