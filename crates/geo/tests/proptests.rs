//! Property-based tests for the geospatial substrate.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use st_geo::{
    segment_regions, BoundingBox, CellUserIndex, GeoPoint, Grid, RegionDensities, RegionId,
    SeedOrder,
};

fn point() -> impl Strategy<Value = GeoPoint> {
    (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn haversine_is_a_semimetric(a in point(), b in point(), c in point()) {
        let ab = a.haversine_km(&b);
        let ba = b.haversine_km(&a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(ab >= 0.0, "non-negativity");
        // Triangle inequality (with slack for floating point).
        let ac = a.haversine_km(&c);
        let cb = c.haversine_km(&b);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle: {ab} > {ac} + {cb}");
    }

    #[test]
    fn every_in_box_point_maps_to_a_valid_cell(
        lat in 0.0f64..9.999, lon in 0.0f64..9.999, n1 in 1usize..20, n2 in 1usize..20
    ) {
        let grid = Grid::new(BoundingBox::new(0.0, 10.0, 0.0, 10.0), n1, n2);
        let cell = grid.cell_of(&GeoPoint::new(lat, lon)).expect("inside");
        prop_assert!(cell.row < n1 && cell.col < n2);
        // Flat index roundtrip.
        prop_assert_eq!(grid.cell_from_flat(grid.flat_index(cell)), cell);
        // And the cell's centre maps back to the same cell.
        prop_assert_eq!(grid.cell_of(&grid.cell_center(cell)), Some(cell));
    }

    /// Algorithm 1 always yields a partition of the visited cells,
    /// regardless of visitor structure or threshold.
    #[test]
    fn segmentation_partitions_visited_cells(
        seed in 0u64..500, delta in 0.0f64..1.0, n in 2usize..7
    ) {
        let grid = Grid::new(BoundingBox::new(0.0, 1.0, 0.0, 1.0), n, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut index = CellUserIndex::new(grid.num_cells());
        use rand::Rng;
        for cell in 0..grid.num_cells() {
            for user in 0..6u32 {
                if rng.gen::<f32>() < 0.4 {
                    index.record(cell, user);
                }
            }
        }
        let seg = segment_regions(&grid, &index, delta, SeedOrder::DenseFirst, &mut rng);
        // Partition property: every visited cell in exactly one region.
        let mut assigned = vec![0usize; grid.num_cells()];
        for region in &seg.regions {
            prop_assert!(!region.cells.is_empty(), "empty region");
            for &cell in &region.cells {
                assigned[cell] += 1;
            }
        }
        for (cell, &count) in assigned.iter().enumerate() {
            if index.user_count(cell) > 0 {
                prop_assert_eq!(count, 1, "cell {} in {} regions", cell, count);
            } else {
                prop_assert_eq!(count, 0);
                prop_assert!(seg.region_of_cell(cell).is_none());
            }
        }
    }

    /// Eq. 5 distance is within [0, 1] and 1 on identical visitor sets.
    #[test]
    fn accessibility_distance_is_bounded(users_a in proptest::collection::vec(0u32..20, 1..10)) {
        let mut index = CellUserIndex::new(2);
        for &u in &users_a {
            index.record(0, u);
            index.record(1, u);
        }
        let d = index.distance(0, 1);
        prop_assert!((d - 1.0).abs() < 1e-12, "identical sets must have dis 1.0");
        // Drop overlap: add unique users to cell 1.
        let mut index2 = CellUserIndex::new(2);
        for &u in &users_a {
            index2.record(0, u);
            index2.record(1, u + 1000);
        }
        prop_assert_eq!(index2.distance(0, 1), 0.0);
    }

    /// Eq. 6: after granting every region its quota, densities equalize
    /// to the max density within rounding error.
    #[test]
    fn resample_quota_levels_densities(
        counts in proptest::collection::vec(0usize..500, 1..8),
        sizes in proptest::collection::vec(1usize..10, 8)
    ) {
        let n = counts.len();
        let d = RegionDensities::new(counts.clone(), sizes[..n].to_vec());
        if let Some(rstar) = d.densest() {
            let target = d.density(rstar);
            for r in 0..n {
                let r = RegionId(r);
                if d.count(r) == 0 { continue; }
                let post = (d.count(r) + d.resample_quota(r)) as f64 / d.size(r) as f64;
                prop_assert!(
                    (post - target).abs() <= 1.0,
                    "region {:?}: post {post} vs target {target}", r
                );
            }
            // Distribution over regions is a probability vector.
            let p = d.region_distribution();
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9 || total == 0.0);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
