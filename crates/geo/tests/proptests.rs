//! Property-based tests for the geospatial substrate.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use st_geo::{
    segment_regions, BoundingBox, CellUserIndex, GeoPoint, Grid, RegionDensities, RegionId,
    SeedOrder,
};

fn point() -> impl Strategy<Value = GeoPoint> {
    (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn haversine_is_a_semimetric(a in point(), b in point(), c in point()) {
        let ab = a.haversine_km(&b);
        let ba = b.haversine_km(&a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(ab >= 0.0, "non-negativity");
        // Triangle inequality (with slack for floating point).
        let ac = a.haversine_km(&c);
        let cb = c.haversine_km(&b);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle: {ab} > {ac} + {cb}");
    }

    #[test]
    fn every_in_box_point_maps_to_a_valid_cell(
        lat in 0.0f64..9.999, lon in 0.0f64..9.999, n1 in 1usize..20, n2 in 1usize..20
    ) {
        let grid = Grid::new(BoundingBox::new(0.0, 10.0, 0.0, 10.0), n1, n2);
        let cell = grid.cell_of(&GeoPoint::new(lat, lon)).expect("inside");
        prop_assert!(cell.row < n1 && cell.col < n2);
        // Flat index roundtrip.
        prop_assert_eq!(grid.cell_from_flat(grid.flat_index(cell)), cell);
        // And the cell's centre maps back to the same cell.
        prop_assert_eq!(grid.cell_of(&grid.cell_center(cell)), Some(cell));
    }

    /// `BoundingBox::covering` + `Grid::cell_of` lose no input point, for
    /// adversarial point sets: clustered at many scales, collinear (zero
    /// lat or lon span), all-identical, and pinned at the poles or the
    /// antimeridian where the covering margin must clamp to the legal
    /// coordinate domain. Points exactly on the covering box's max edges
    /// must land in the last row/column, never fall off, and every
    /// touched cell's center must be a constructible `GeoPoint`.
    #[test]
    fn covering_box_maps_every_point_to_a_valid_cell(
        (base_lat, base_lon) in (-95.0f64..95.0, -190.0f64..190.0),
        scale_idx in 0usize..5,
        offsets in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..40),
        (collapse_lat, collapse_lon) in (any::<bool>(), any::<bool>()),
        (n1, n2) in (1usize..12, 1usize..12)
    ) {
        // Scale 0.0 collapses all points onto the base (the degenerate
        // box); the base range overshoots the domain so clamping pins
        // whole point sets onto the poles / antimeridian.
        let scale = [0.0, 1e-9, 1e-3, 1.0, 30.0][scale_idx];
        let points: Vec<GeoPoint> = offsets
            .iter()
            .map(|&(dlat, dlon)| {
                let lat = base_lat + if collapse_lat { 0.0 } else { dlat * scale };
                let lon = base_lon + if collapse_lon { 0.0 } else { dlon * scale };
                GeoPoint::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0))
            })
            .collect();
        let bbox = BoundingBox::covering(points.clone()).expect("non-empty input");
        let grid = Grid::new(bbox, n1, n2);
        for p in &points {
            prop_assert!(bbox.contains(p), "{p:?} outside covering {bbox:?}");
            let cell = grid.cell_of(p).expect("covering box lost a point");
            prop_assert!(cell.row < n1 && cell.col < n2);
            // Cell centers of touched cells are valid geographic points
            // (panicked pre-fix for boxes at the domain edge).
            let _ = grid.cell_center(cell);
        }
        // Points exactly on the max edges still map into the last cells.
        let ne = GeoPoint::new(bbox.max_lat, bbox.max_lon);
        let cell = grid.cell_of(&ne).expect("max corner fell off the grid");
        prop_assert_eq!(cell, st_geo::GridCell { row: n1 - 1, col: n2 - 1 });
    }

    /// Algorithm 1 always yields a partition of the visited cells,
    /// regardless of visitor structure or threshold.
    #[test]
    fn segmentation_partitions_visited_cells(
        seed in 0u64..500, delta in 0.0f64..1.0, n in 2usize..7
    ) {
        let grid = Grid::new(BoundingBox::new(0.0, 1.0, 0.0, 1.0), n, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut index = CellUserIndex::new(grid.num_cells());
        use rand::Rng;
        for cell in 0..grid.num_cells() {
            for user in 0..6u32 {
                if rng.gen::<f32>() < 0.4 {
                    index.record(cell, user);
                }
            }
        }
        let seg = segment_regions(&grid, &index, delta, SeedOrder::DenseFirst, &mut rng);
        // Partition property: every visited cell in exactly one region.
        let mut assigned = vec![0usize; grid.num_cells()];
        for region in &seg.regions {
            prop_assert!(!region.cells.is_empty(), "empty region");
            for &cell in &region.cells {
                assigned[cell] += 1;
            }
        }
        for (cell, &count) in assigned.iter().enumerate() {
            if index.user_count(cell) > 0 {
                prop_assert_eq!(count, 1, "cell {} in {} regions", cell, count);
            } else {
                prop_assert_eq!(count, 0);
                prop_assert!(seg.region_of_cell(cell).is_none());
            }
        }
    }

    /// Eq. 5 distance is within [0, 1] and 1 on identical visitor sets.
    #[test]
    fn accessibility_distance_is_bounded(users_a in proptest::collection::vec(0u32..20, 1..10)) {
        let mut index = CellUserIndex::new(2);
        for &u in &users_a {
            index.record(0, u);
            index.record(1, u);
        }
        let d = index.distance(0, 1);
        prop_assert!((d - 1.0).abs() < 1e-12, "identical sets must have dis 1.0");
        // Drop overlap: add unique users to cell 1.
        let mut index2 = CellUserIndex::new(2);
        for &u in &users_a {
            index2.record(0, u);
            index2.record(1, u + 1000);
        }
        prop_assert_eq!(index2.distance(0, 1), 0.0);
    }

    /// Eq. 6: after granting every region its quota, densities equalize
    /// to the max density within rounding error.
    #[test]
    fn resample_quota_levels_densities(
        counts in proptest::collection::vec(0usize..500, 1..8),
        sizes in proptest::collection::vec(1usize..10, 8)
    ) {
        let n = counts.len();
        let d = RegionDensities::new(counts.clone(), sizes[..n].to_vec());
        if let Some(rstar) = d.densest() {
            let target = d.density(rstar);
            for r in 0..n {
                let r = RegionId(r);
                if d.count(r) == 0 { continue; }
                let post = (d.count(r) + d.resample_quota(r)) as f64 / d.size(r) as f64;
                prop_assert!(
                    (post - target).abs() <= 1.0,
                    "region {:?}: post {post} vs target {target}", r
                );
            }
            // Distribution over regions is a probability vector.
            let p = d.region_distribution();
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9 || total == 0.0);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
