//! Dataset statistics in the shape of the paper's Table 1.

use crate::{CityId, CrossingCitySplit, Dataset};
use std::fmt;

/// The rows of Table 1 for one dataset and one target city.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Total distinct users.
    pub users: usize,
    /// Total POIs.
    pub pois: usize,
    /// Vocabulary size.
    pub words: usize,
    /// Total check-ins.
    pub checkins: usize,
    /// Crossing-city users w.r.t. the target city.
    pub crossing_users: usize,
    /// Their held-out check-ins in the target city.
    pub crossing_checkins: usize,
}

impl DatasetStats {
    /// Computes all Table 1 statistics for `dataset` with `target` as the
    /// held-out city.
    pub fn compute(dataset: &Dataset, target: CityId) -> Self {
        let split = CrossingCitySplit::build(dataset, target);
        Self {
            users: dataset.num_users(),
            pois: dataset.num_pois(),
            words: dataset.vocab().len(),
            checkins: dataset.checkins().len(),
            crossing_users: split.test_users.len(),
            crossing_checkins: split.held_out_checkins(dataset),
        }
    }

    /// Fraction of all check-ins that are crossing-city (the paper cites
    /// figures below 1%, motivating the sparsity challenge).
    pub fn crossing_fraction(&self) -> f64 {
        if self.checkins == 0 {
            0.0
        } else {
            self.crossing_checkins as f64 / self.checkins as f64
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  #Users            {:>10}", self.users)?;
        writeln!(f, "  #POIs             {:>10}", self.pois)?;
        writeln!(f, "  #Words            {:>10}", self.words)?;
        writeln!(f, "  #Check-ins        {:>10}", self.checkins)?;
        writeln!(f, "  #Crossing users   {:>10}", self.crossing_users)?;
        write!(f, "  #Crossing check-ins{:>9}", self.crossing_checkins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::tiny_dataset;

    #[test]
    fn stats_match_fixture() {
        let d = tiny_dataset();
        let s = DatasetStats::compute(&d, CityId(1));
        assert_eq!(
            s,
            DatasetStats {
                users: 3,
                pois: 4,
                words: 3,
                checkins: 6,
                crossing_users: 1,
                crossing_checkins: 1,
            }
        );
        assert!((s.crossing_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_rows() {
        let d = tiny_dataset();
        let text = DatasetStats::compute(&d, CityId(1)).to_string();
        for needle in ["#Users", "#POIs", "#Words", "#Check-ins", "#Crossing"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
