//! Built-in topic lexicon for the synthetic datasets.
//!
//! POI descriptions mix *city-independent* words (shared across cities,
//! drawn from a topic's lexicon below) with *city-dependent* words
//! (generated per city, e.g. a landmark vocabulary). This mirrors
//! Fig. 1a: the shared words are the signal a transferable recommender
//! must latch onto; the city words are the nuisance MMD must suppress.

/// A named topic with its city-independent vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct Topic {
    /// Short topic name (also a word itself).
    pub name: &'static str,
    /// City-independent words evocative of the topic.
    pub shared_words: &'static [&'static str],
}

/// The built-in topics. Chosen to echo the paper's running examples
/// (museums, parks, casinos, theatres, Italian restaurants...).
pub const TOPICS: &[Topic] = &[
    Topic {
        name: "museum",
        shared_words: &[
            "museum",
            "art gallery",
            "exhibit",
            "sculpture",
            "paintings",
            "history",
            "artifacts",
            "modern art",
            "curator",
            "gallery tour",
            "installation",
            "photography",
        ],
    },
    Topic {
        name: "park",
        shared_words: &[
            "park",
            "scenic views",
            "hiking",
            "trails",
            "picnic",
            "gardens",
            "national park",
            "wildlife",
            "lake",
            "outdoors",
            "sunset",
            "playground",
        ],
    },
    Topic {
        name: "theater",
        shared_words: &[
            "theater",
            "concert hall",
            "stage",
            "live music",
            "blues",
            "dancing",
            "orchestra",
            "musical",
            "opera",
            "rock club",
            "acoustics",
            "encore",
        ],
    },
    Topic {
        name: "cinema",
        shared_words: &[
            "cinema",
            "multiplex",
            "popcorn",
            "movies",
            "premiere",
            "screening",
            "imax",
            "matinee",
            "caramel corn",
            "trailers",
            "blockbuster",
            "film festival",
        ],
    },
    Topic {
        name: "italian",
        shared_words: &[
            "italian restaurant",
            "pizza place",
            "bakery",
            "pasta",
            "cocktails",
            "espresso",
            "tiramisu",
            "risotto",
            "wine list",
            "antipasti",
            "gelato",
            "portobello fries",
        ],
    },
    Topic {
        name: "asian",
        shared_words: &[
            "thai restaurant",
            "pad thai",
            "sushi",
            "ramen",
            "dim sum",
            "spicy lime",
            "noodles",
            "dumplings",
            "curry",
            "wok",
            "bento",
            "great thai",
        ],
    },
    Topic {
        name: "nightlife",
        shared_words: &[
            "bar",
            "nightclub",
            "craft beer",
            "whiskey",
            "rooftop",
            "happy hour",
            "dj",
            "lounge",
            "speakeasy",
            "karaoke",
            "late night",
            "dance floor",
        ],
    },
    Topic {
        name: "casino",
        shared_words: &[
            "casino",
            "poker",
            "slots",
            "blackjack",
            "jackpot",
            "high roller",
            "roulette",
            "betting",
            "chips",
            "dealer",
            "neon",
            "buffet",
        ],
    },
    Topic {
        name: "shopping",
        shared_words: &[
            "shopping mall",
            "boutique",
            "outlet",
            "fashion",
            "souvenirs",
            "market",
            "vintage",
            "designer",
            "arcade",
            "bookstore",
            "record shop",
            "flea market",
        ],
    },
    Topic {
        name: "coffee",
        shared_words: &[
            "coffee shop",
            "latte",
            "espresso bar",
            "pastries",
            "wifi",
            "cozy",
            "cold brew",
            "croissant",
            "baristas",
            "quiet",
            "brunch",
            "bagels",
        ],
    },
    Topic {
        name: "sports",
        shared_words: &[
            "stadium",
            "arena",
            "baseball",
            "basketball",
            "tailgate",
            "season tickets",
            "scoreboard",
            "home team",
            "playoffs",
            "bleachers",
            "hot dogs",
            "jerseys",
        ],
    },
    Topic {
        name: "historic",
        shared_words: &[
            "historic site",
            "landmark",
            "monument",
            "architecture",
            "guided tours",
            "heritage",
            "old town",
            "cathedral",
            "memorial",
            "plaza",
            "walking tour",
            "cobblestone",
        ],
    },
    Topic {
        name: "hotel",
        shared_words: &[
            "hotel",
            "swimming pool",
            "lobby",
            "room service",
            "spa",
            "concierge",
            "suites",
            "valet",
            "rooftop pool",
            "check-in",
            "minibar",
            "bowling",
        ],
    },
    Topic {
        name: "transport",
        shared_words: &[
            "airport",
            "terminal",
            "flights",
            "24-hour",
            "gates",
            "layover",
            "train station",
            "metro",
            "departures",
            "baggage claim",
            "shuttle",
            "transit",
        ],
    },
];

/// Number of built-in topics.
pub fn num_topics() -> usize {
    TOPICS.len()
}

/// Deterministically generates `count` city-dependent words for
/// (`city_name`, topic). These play the role of "golden gate bridge" /
/// "hollywood sign": strings no other city shares.
pub fn city_words(city_name: &str, topic: &Topic, count: usize) -> Vec<String> {
    let slug: String = city_name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    (0..count)
        .map(|i| format!("{slug} {} spot {}", topic.name, i + 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topics_are_nonempty_and_distinctly_named() {
        assert!(num_topics() >= 10);
        let mut names: Vec<_> = TOPICS.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TOPICS.len(), "duplicate topic names");
        for t in TOPICS {
            assert!(t.shared_words.len() >= 10, "{} too small", t.name);
        }
    }

    #[test]
    fn shared_words_unique_within_topic() {
        for t in TOPICS {
            let mut w: Vec<_> = t.shared_words.to_vec();
            w.sort_unstable();
            w.dedup();
            assert_eq!(w.len(), t.shared_words.len(), "dup word in {}", t.name);
        }
    }

    #[test]
    fn city_words_are_city_specific_and_deterministic() {
        let a = city_words("Los Angeles", &TOPICS[0], 3);
        let b = city_words("Los Angeles", &TOPICS[0], 3);
        let c = city_words("New York", &TOPICS[0], 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|w| !c.contains(w)));
        assert!(a[0].starts_with("losangeles"));
    }
}
