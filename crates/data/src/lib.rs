//! # st-data
//!
//! Data substrate for the ST-TransRec reproduction: the check-in data
//! model (Def. 1-3), vocabulary with word2vec-style negative sampling,
//! the textual context graph `G_vw` (Def. 2), the crossing-city
//! train/test split construction (Sec. 4.1), Table 1 statistics, and the
//! calibrated synthetic dataset generators that stand in for the
//! non-redistributable Foursquare/Yelp dumps (see DESIGN.md).
//!
//! ```
//! use st_data::{synth, CityId, CrossingCitySplit, DatasetStats};
//!
//! let (dataset, _meta) = synth::generate(&synth::SynthConfig::tiny());
//! let target = CityId(1);
//! let split = CrossingCitySplit::build(&dataset, target);
//! let stats = DatasetStats::compute(&dataset, target);
//! assert_eq!(stats.crossing_users, split.test_users.len());
//! ```

#![warn(missing_docs)]

mod context_graph;
mod dataset;
pub mod io;
pub mod lexicon;
mod model;
mod split;
mod stats;
pub mod synth;
mod vocab;

pub use context_graph::{ContextSample, TextualContextGraph};
pub use dataset::Dataset;
pub use io::{read_dataset, write_dataset, IoError};
pub use model::{Checkin, City, CityId, Poi, PoiId, UserId, WordId};
pub use split::CrossingCitySplit;
pub use stats::DatasetStats;
pub use vocab::{NegativeTable, Vocabulary};
