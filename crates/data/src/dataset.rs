//! The check-in dataset with eagerly built secondary indexes.

use crate::{Checkin, City, CityId, Poi, PoiId, UserId, Vocabulary};

/// A complete check-in collection (`D` in Def. 3) with per-user, per-POI
/// and per-city indexes built at construction time.
#[derive(Debug, Clone)]
pub struct Dataset {
    cities: Vec<City>,
    pois: Vec<Poi>,
    vocab: Vocabulary,
    num_users: usize,
    checkins: Vec<Checkin>,
    /// Check-in indices per user.
    by_user: Vec<Vec<u32>>,
    /// Check-in indices per POI.
    by_poi: Vec<Vec<u32>>,
    /// POIs per city.
    pois_in_city: Vec<Vec<PoiId>>,
}

impl Dataset {
    /// Assembles a dataset and builds all indexes.
    ///
    /// # Panics
    /// Panics on referential violations: a check-in naming an unknown user
    /// or POI, a POI naming an unknown city or word, or non-dense POI ids.
    pub fn new(
        cities: Vec<City>,
        pois: Vec<Poi>,
        vocab: Vocabulary,
        num_users: usize,
        checkins: Vec<Checkin>,
    ) -> Self {
        for (i, poi) in pois.iter().enumerate() {
            assert_eq!(poi.id.idx(), i, "POI ids must be dense and ordered");
            assert!(
                poi.city.idx() < cities.len(),
                "POI {} references unknown city",
                i
            );
            for w in &poi.words {
                assert!(w.idx() < vocab.len(), "POI {} references unknown word", i);
            }
        }
        let mut by_user = vec![Vec::new(); num_users];
        let mut by_poi = vec![Vec::new(); pois.len()];
        for (i, c) in checkins.iter().enumerate() {
            assert!(c.user.idx() < num_users, "check-in {} unknown user", i);
            assert!(c.poi.idx() < pois.len(), "check-in {} unknown POI", i);
            by_user[c.user.idx()].push(i as u32);
            by_poi[c.poi.idx()].push(i as u32);
        }
        let mut pois_in_city = vec![Vec::new(); cities.len()];
        for poi in &pois {
            pois_in_city[poi.city.idx()].push(poi.id);
        }
        Self {
            cities,
            pois,
            vocab,
            num_users,
            checkins,
            by_user,
            by_poi,
            pois_in_city,
        }
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// A city by id.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.idx()]
    }

    /// All POIs, ordered by dense id.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// A POI by id.
    pub fn poi(&self, id: PoiId) -> &Poi {
        &self.pois[id.idx()]
    }

    /// The interned vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of POIs.
    pub fn num_pois(&self) -> usize {
        self.pois.len()
    }

    /// All check-ins in insertion order.
    pub fn checkins(&self) -> &[Checkin] {
        &self.checkins
    }

    /// A user's profile `D_u` (Def. 3): their check-ins in time order of
    /// insertion.
    pub fn user_checkins(&self, user: UserId) -> impl Iterator<Item = &Checkin> {
        self.by_user[user.idx()]
            .iter()
            .map(|&i| &self.checkins[i as usize])
    }

    /// Number of check-ins by a user.
    pub fn user_checkin_count(&self, user: UserId) -> usize {
        self.by_user[user.idx()].len()
    }

    /// Check-ins at a POI.
    pub fn poi_checkins(&self, poi: PoiId) -> impl Iterator<Item = &Checkin> {
        self.by_poi[poi.idx()]
            .iter()
            .map(|&i| &self.checkins[i as usize])
    }

    /// Popularity of a POI (its check-in count) — the ItemPop signal.
    pub fn poi_popularity(&self, poi: PoiId) -> usize {
        self.by_poi[poi.idx()].len()
    }

    /// POIs located in a city.
    pub fn pois_in_city(&self, city: CityId) -> &[PoiId] {
        &self.pois_in_city[city.idx()]
    }

    /// The distinct cities a user has checked into, ascending.
    pub fn user_cities(&self, user: UserId) -> Vec<CityId> {
        let mut cities: Vec<CityId> = self
            .user_checkins(user)
            .map(|c| self.poi(c.poi).city)
            .collect();
        cities.sort_unstable();
        cities.dedup();
        cities
    }

    /// The distinct POIs a user visited in `city`, ascending.
    pub fn user_visited_in_city(&self, user: UserId, city: CityId) -> Vec<PoiId> {
        let mut pois: Vec<PoiId> = self
            .user_checkins(user)
            .filter(|c| self.poi(c.poi).city == city)
            .map(|c| c.poi)
            .collect();
        pois.sort_unstable();
        pois.dedup();
        pois
    }

    /// Users who have checked into both `target` and at least one other
    /// city — the paper's *crossing-city users*.
    pub fn crossing_city_users(&self, target: CityId) -> Vec<UserId> {
        (0..self.num_users as u32)
            .map(UserId)
            .filter(|&u| {
                let cities = self.user_cities(u);
                cities.contains(&target) && cities.len() > 1
            })
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use st_geo::{BoundingBox, GeoPoint};

    /// Two cities, four POIs, three users; user 2 is a crossing-city user
    /// of city 1.
    pub fn tiny_dataset() -> Dataset {
        let cities = vec![
            City {
                id: CityId(0),
                name: "Source".into(),
                bbox: BoundingBox::new(0.0, 1.0, 0.0, 1.0),
            },
            City {
                id: CityId(1),
                name: "Target".into(),
                bbox: BoundingBox::new(10.0, 11.0, 10.0, 11.0),
            },
        ];
        let mut vocab = Vocabulary::new();
        let park = vocab.observe("park");
        let museum = vocab.observe("museum");
        let casino = vocab.observe("casino");
        let pois = vec![
            Poi {
                id: PoiId(0),
                city: CityId(0),
                location: GeoPoint::new(0.5, 0.5),
                words: vec![park],
                name: "p0".into(),
            },
            Poi {
                id: PoiId(1),
                city: CityId(0),
                location: GeoPoint::new(0.2, 0.8),
                words: vec![museum],
                name: "p1".into(),
            },
            Poi {
                id: PoiId(2),
                city: CityId(1),
                location: GeoPoint::new(10.5, 10.5),
                words: vec![park, casino],
                name: "p2".into(),
            },
            Poi {
                id: PoiId(3),
                city: CityId(1),
                location: GeoPoint::new(10.9, 10.1),
                words: vec![museum],
                name: "p3".into(),
            },
        ];
        let checkins = vec![
            Checkin {
                user: UserId(0),
                poi: PoiId(0),
                time: 0,
            },
            Checkin {
                user: UserId(0),
                poi: PoiId(1),
                time: 1,
            },
            Checkin {
                user: UserId(1),
                poi: PoiId(2),
                time: 2,
            },
            Checkin {
                user: UserId(2),
                poi: PoiId(0),
                time: 3,
            },
            Checkin {
                user: UserId(2),
                poi: PoiId(3),
                time: 4,
            },
            Checkin {
                user: UserId(2),
                poi: PoiId(0),
                time: 5,
            },
        ];
        Dataset::new(cities, pois, vocab, 3, checkins)
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::tiny_dataset;
    use super::*;

    #[test]
    fn indexes_are_consistent() {
        let d = tiny_dataset();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_pois(), 4);
        assert_eq!(d.checkins().len(), 6);
        assert_eq!(d.user_checkin_count(UserId(2)), 3);
        assert_eq!(d.poi_popularity(PoiId(0)), 3);
        assert_eq!(d.pois_in_city(CityId(1)), &[PoiId(2), PoiId(3)]);
    }

    #[test]
    fn user_cities_and_visits() {
        let d = tiny_dataset();
        assert_eq!(d.user_cities(UserId(0)), vec![CityId(0)]);
        assert_eq!(d.user_cities(UserId(2)), vec![CityId(0), CityId(1)]);
        assert_eq!(
            d.user_visited_in_city(UserId(2), CityId(0)),
            vec![PoiId(0)],
            "repeat visits dedupe"
        );
        assert_eq!(d.user_visited_in_city(UserId(2), CityId(1)), vec![PoiId(3)]);
    }

    #[test]
    fn crossing_city_users_found() {
        let d = tiny_dataset();
        assert_eq!(d.crossing_city_users(CityId(1)), vec![UserId(2)]);
        // User 1 only visited the target city: not a crossing user there.
        assert_eq!(d.crossing_city_users(CityId(0)), vec![UserId(2)]);
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn rejects_unknown_user() {
        let d = tiny_dataset();
        let mut checkins = d.checkins().to_vec();
        checkins.push(Checkin {
            user: UserId(99),
            poi: PoiId(0),
            time: 9,
        });
        Dataset::new(
            d.cities().to_vec(),
            d.pois().to_vec(),
            d.vocab().clone(),
            d.num_users(),
            checkins,
        );
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn rejects_non_dense_poi_ids() {
        let d = tiny_dataset();
        let mut pois = d.pois().to_vec();
        pois.swap(0, 1);
        Dataset::new(
            d.cities().to_vec(),
            pois,
            d.vocab().clone(),
            d.num_users(),
            vec![],
        );
    }
}
