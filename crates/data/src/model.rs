//! Core data model: ids, cities, POIs, and check-in records (Def. 1-3).

use st_geo::{BoundingBox, GeoPoint};

/// A user identifier, dense in `0..num_users`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// A POI identifier, dense in `0..num_pois`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoiId(pub u32);

/// A vocabulary word identifier, dense in `0..num_words`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(pub u32);

/// A city identifier, dense in `0..num_cities`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CityId(pub u16);

impl UserId {
    /// Index form for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PoiId {
    /// Index form for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl WordId {
    /// Index form for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl CityId {
    /// Index form for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A city with its geographic extent.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    /// Dense city id.
    pub id: CityId,
    /// Human-readable name ("Los Angeles").
    pub name: String,
    /// Geographic extent used for grid segmentation.
    pub bbox: BoundingBox,
}

/// A point of interest with its location and textual description
/// (Def. 1: the `(v, l_v, W_v, c)` part of a check-in tuple).
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// Dense POI id.
    pub id: PoiId,
    /// The city this POI belongs to.
    pub city: CityId,
    /// Latitude/longitude.
    pub location: GeoPoint,
    /// Word ids of the POI's categories/tips, deduplicated.
    pub words: Vec<WordId>,
    /// Display name (synthetic POIs get generated names).
    pub name: String,
}

/// A single check-in: user `u` visited POI `v` at ordinal time `t`
/// (Def. 1; POI attributes live on [`Poi`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkin {
    /// Who checked in.
    pub user: UserId,
    /// Where.
    pub poi: PoiId,
    /// Ordinal timestamp (only ordering matters to the model).
    pub time: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_index_roundtrips() {
        assert_eq!(UserId(7).idx(), 7);
        assert_eq!(PoiId(9).idx(), 9);
        assert_eq!(WordId(3).idx(), 3);
        assert_eq!(CityId(1).idx(), 1);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PoiId(1));
        set.insert(PoiId(1));
        set.insert(PoiId(2));
        assert_eq!(set.len(), 2);
        assert!(UserId(1) < UserId(2));
    }
}
