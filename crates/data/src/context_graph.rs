//! The textual context graph `G_vw` (Def. 2): a bipartite graph whose
//! nodes are POIs and words, with an edge for every word in a POI's
//! textual description. The skipgram loss (Eq. 4) trains on positive
//! `(poi, word)` edges plus sampled negatives.

use crate::{Dataset, NegativeTable, PoiId, WordId};
use rand::Rng;

/// Bipartite POI-word context graph restricted to one set of POIs
/// (ST-TransRec builds one per city side: source and target).
#[derive(Debug, Clone)]
pub struct TextualContextGraph {
    /// Member POIs (dense ids into the parent dataset).
    pois: Vec<PoiId>,
    /// Parallel to `pois`: that POI's word ids.
    words_per_poi: Vec<Vec<WordId>>,
    /// Flat edge list for uniform edge sampling.
    edges: Vec<(u32, WordId)>, // (index into `pois`, word)
    /// Negative sampler over the vocabulary, weighted by word frequency
    /// *within this graph* raised to 0.75 (or uniform, see
    /// [`TextualContextGraph::build`]).
    negative_table: NegativeTable,
}

impl TextualContextGraph {
    /// Builds the graph for the given POIs of `dataset`.
    ///
    /// `unigram_power` weights the negative-sampling distribution
    /// (0.75 = word2vec default; 0.0 = uniform — an ablation flag).
    ///
    /// # Panics
    /// Panics if no POI contributes any word (the skipgram loss would be
    /// undefined).
    pub fn build(dataset: &Dataset, pois: &[PoiId], unigram_power: f64) -> Self {
        let vocab_len = dataset.vocab().len();
        assert!(vocab_len > 0, "empty vocabulary");
        let mut counts = vec![0u64; vocab_len];
        let mut words_per_poi = Vec::with_capacity(pois.len());
        let mut edges = Vec::new();
        for (pi, &poi) in pois.iter().enumerate() {
            let words = dataset.poi(poi).words.clone();
            for &w in &words {
                counts[w.idx()] += 1;
                edges.push((pi as u32, w));
            }
            words_per_poi.push(words);
        }
        assert!(!edges.is_empty(), "context graph has no POI-word edges");
        Self {
            pois: pois.to_vec(),
            words_per_poi,
            edges,
            negative_table: NegativeTable::from_counts(&counts, unigram_power),
        }
    }

    /// Member POIs.
    pub fn pois(&self) -> &[PoiId] {
        &self.pois
    }

    /// Number of POI-word edges (`|E_vw|`).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Average POI degree (`n` in the paper's complexity analysis).
    pub fn avg_degree(&self) -> f64 {
        if self.pois.is_empty() {
            0.0
        } else {
            self.edges.len() as f64 / self.pois.len() as f64
        }
    }

    /// Words of the `i`-th member POI.
    pub fn poi_words(&self, i: usize) -> &[WordId] {
        &self.words_per_poi[i]
    }

    /// Samples a batch of training tuples: for each tuple, a POI (by its
    /// local index), one positive word, and `negatives` negative words not
    /// in the POI's description.
    ///
    /// Positive edges are drawn uniformly so every edge contributes
    /// equally to `L_Gvw`, as in Eq. 4's sum over `E_vw`.
    pub fn sample_batch(
        &self,
        batch: usize,
        negatives: usize,
        rng: &mut impl Rng,
    ) -> Vec<ContextSample> {
        (0..batch)
            .map(|_| {
                let &(pi, word) = &self.edges[rng.gen_range(0..self.edges.len())];
                let exclude = &self.words_per_poi[pi as usize];
                let negs = (0..negatives)
                    .map(|_| self.negative_table.sample_excluding(exclude, rng))
                    .collect();
                ContextSample {
                    poi_index: pi as usize,
                    positive: word,
                    negatives: negs,
                }
            })
            .collect()
    }
}

/// One skipgram training tuple produced by
/// [`TextualContextGraph::sample_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSample {
    /// Index into [`TextualContextGraph::pois`] (NOT a dense dataset id).
    pub poi_index: usize,
    /// A word actually describing the POI.
    pub positive: WordId,
    /// Sampled words not describing the POI.
    pub negatives: Vec<WordId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::tiny_dataset;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn builds_edges_for_selected_pois() {
        let d = tiny_dataset();
        let g = TextualContextGraph::build(&d, &[PoiId(2), PoiId(3)], 0.75);
        // p2 has 2 words, p3 has 1.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.pois(), &[PoiId(2), PoiId(3)]);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
        assert_eq!(g.poi_words(1), d.poi(PoiId(3)).words);
    }

    #[test]
    fn samples_respect_positive_membership() {
        let d = tiny_dataset();
        let g = TextualContextGraph::build(&d, &[PoiId(0), PoiId(1), PoiId(2), PoiId(3)], 0.75);
        let mut rng = SmallRng::seed_from_u64(5);
        for s in g.sample_batch(200, 3, &mut rng) {
            let words = g.poi_words(s.poi_index);
            assert!(
                words.contains(&s.positive),
                "positive must describe the POI"
            );
            assert_eq!(s.negatives.len(), 3);
            for n in &s.negatives {
                assert!(!words.contains(n), "negative must not describe the POI");
            }
        }
    }

    #[test]
    fn sampling_covers_all_edges_eventually() {
        let d = tiny_dataset();
        let g = TextualContextGraph::build(&d, &[PoiId(0), PoiId(2)], 0.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut seen = std::collections::HashSet::new();
        for s in g.sample_batch(300, 1, &mut rng) {
            seen.insert((s.poi_index, s.positive));
        }
        assert_eq!(
            seen.len(),
            g.num_edges(),
            "uniform edge sampling covers all"
        );
    }

    #[test]
    #[should_panic(expected = "no POI-word edges")]
    fn rejects_wordless_graph() {
        let d = tiny_dataset();
        TextualContextGraph::build(&d, &[], 0.75);
    }
}
