//! Vocabulary with word frequencies and a unigram^0.75 negative-sampling
//! table (Mikolov et al. [14], used by the skipgram loss of Eq. 4).

use crate::WordId;
use rand::Rng;
use std::collections::HashMap;

/// An interned word vocabulary with occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    words: Vec<String>,
    counts: Vec<u64>,
    index: HashMap<String, WordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id (stable across calls).
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = WordId(self.words.len() as u32);
        self.words.push(word.to_owned());
        self.counts.push(0);
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Interns `word` and counts one occurrence.
    pub fn observe(&mut self, word: &str) -> WordId {
        let id = self.intern(word);
        self.counts[id.idx()] += 1;
        id
    }

    /// Counts `n` additional occurrences of an already-interned word.
    pub fn add_count(&mut self, id: WordId, n: u64) {
        self.counts[id.idx()] += n;
    }

    /// Looks up a word's id.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// The string for an id.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id.idx()]
    }

    /// Occurrence count for an id.
    pub fn count(&self, id: WordId) -> u64 {
        self.counts[id.idx()]
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no words are interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates `(id, word, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str, u64)> {
        self.words
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(i, (w, &c))| (WordId(i as u32), w.as_str(), c))
    }

    /// Builds a negative-sampling table over this vocabulary.
    pub fn negative_table(&self, power: f64) -> NegativeTable {
        NegativeTable::from_counts(&self.counts, power)
    }
}

/// Samples word ids with probability proportional to `count^power`
/// (`power = 0.75` is the word2vec default; `power = 0` gives uniform).
///
/// Implemented as a cumulative table with binary search: O(log V) per
/// sample, no aliasing precision issues, and cheap to rebuild.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    cumulative: Vec<f64>,
}

impl NegativeTable {
    /// Builds the table from raw counts.
    ///
    /// # Panics
    /// Panics if `counts` is empty or sums to zero after weighting.
    pub fn from_counts(counts: &[u64], power: f64) -> Self {
        assert!(!counts.is_empty(), "cannot sample from an empty vocabulary");
        assert!(power >= 0.0, "power must be non-negative");
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for &c in counts {
            // Words with zero observed count still get epsilon mass so the
            // table never breaks on synthetic vocabularies with rare words.
            acc += (c as f64).powf(power).max(1e-12);
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "degenerate sampling weights");
        Self { cumulative }
    }

    /// Number of sampleable ids.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the table is empty (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one word id.
    pub fn sample(&self, rng: &mut impl Rng) -> WordId {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = rng.gen::<f64>() * total;
        let pos = self.cumulative.partition_point(|&c| c <= x);
        WordId(pos.min(self.cumulative.len() - 1) as u32)
    }

    /// Draws a negative that differs from every id in `exclude`, retrying
    /// a bounded number of times before falling back to a linear scan.
    pub fn sample_excluding(&self, exclude: &[WordId], rng: &mut impl Rng) -> WordId {
        for _ in 0..32 {
            let id = self.sample(rng);
            if !exclude.contains(&id) {
                return id;
            }
        }
        // Pathological exclusion set: scan for any admissible id.
        for i in 0..self.len() {
            let id = WordId(i as u32);
            if !exclude.contains(&id) {
                return id;
            }
        }
        panic!("exclusion set covers the entire vocabulary");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("park");
        let b = v.intern("park");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.word(a), "park");
        assert_eq!(v.get("park"), Some(a));
        assert_eq!(v.get("museum"), None);
    }

    #[test]
    fn observe_counts_occurrences() {
        let mut v = Vocabulary::new();
        let a = v.observe("pizza");
        v.observe("pizza");
        v.observe("bar");
        assert_eq!(v.count(a), 2);
        assert_eq!(v.iter().count(), 2);
    }

    #[test]
    fn negative_table_respects_frequency_skew() {
        let mut v = Vocabulary::new();
        let hot = v.intern("hot");
        let cold = v.intern("cold");
        v.add_count(hot, 1000);
        v.add_count(cold, 10);
        let table = v.negative_table(1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut hot_hits = 0;
        for _ in 0..2000 {
            if table.sample(&mut rng) == hot {
                hot_hits += 1;
            }
        }
        // Expected ~ 2000 * 1000/1010 = 1980.
        assert!(hot_hits > 1900, "hot sampled {hot_hits}/2000");
        let _ = cold;
    }

    #[test]
    fn power_zero_is_roughly_uniform() {
        let mut v = Vocabulary::new();
        let a = v.intern("a");
        v.add_count(a, 1_000_000);
        v.intern("b");
        let table = v.negative_table(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..2000).filter(|_| table.sample(&mut rng) == a).count();
        assert!((800..1200).contains(&hits), "a sampled {hits}/2000");
    }

    #[test]
    fn sample_excluding_avoids_listed_ids() {
        let mut v = Vocabulary::new();
        let a = v.observe("a");
        let b = v.observe("b");
        let table = v.negative_table(0.75);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(table.sample_excluding(&[a], &mut rng), b);
        }
    }

    #[test]
    #[should_panic(expected = "entire vocabulary")]
    fn sample_excluding_everything_panics() {
        let mut v = Vocabulary::new();
        let a = v.observe("only");
        let table = v.negative_table(0.75);
        let mut rng = SmallRng::seed_from_u64(3);
        table.sample_excluding(&[a], &mut rng);
    }

    #[test]
    fn zero_count_words_remain_sampleable() {
        let mut v = Vocabulary::new();
        v.intern("never-observed");
        let table = v.negative_table(0.75);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = table.sample(&mut rng); // must not panic on zero mass
    }
}
