//! Calibrated synthetic check-in generators.
//!
//! The paper's raw datasets are not redistributable, so every experiment
//! runs on synthetic data engineered to exhibit the four properties the
//! model (and each baseline) exploits — see DESIGN.md:
//!
//! 1. **Transferable taste**: each user has one latent topic-preference
//!    vector used in *every* city they visit; POI topics are observable
//!    through city-independent words.
//! 2. **City-dependent noise**: POI descriptions also contain words unique
//!    to their city, and each city skews which topics are available
//!    (behaviour drift: a casino-heavy city pulls check-ins toward
//!    casinos regardless of taste).
//! 3. **Imbalanced spatial density**: each city has districts with
//!    geometrically decaying accessibility; check-ins concentrate in
//!    accessible districts, POIs in marginal districts are structurally
//!    under-visited.
//! 4. **Sparse crossing users**: a small set of source-city users
//!    contributes a handful of target-city check-ins (<2% of the total),
//!    which become the evaluation ground truth.
//!
//! Presets [`SynthConfig::foursquare_like`] and [`SynthConfig::yelp_like`]
//! are calibrated to Table 1; [`SynthConfig::with_scale`] shrinks them
//! proportionally for CI-speed runs.
//!
//! **Timestamp invariant**: [`generate`] assigns every check-in a
//! globally unique, strictly increasing ordinal `time` (a single counter
//! advanced once per emitted check-in), so timestamps are strictly
//! monotone per user under a fixed seed. Leave-last-out splits and the
//! streaming windows of [`CheckinStream`] rely on this — ties would make
//! "most recent" ambiguous and windows non-deterministic.
//!
//! [`CheckinStream`] extends a generated dataset into a deterministic,
//! seeded live event source: the online-learning pipeline (`st-online`)
//! consumes it as the stand-in for a production check-in feed.

use crate::lexicon::{city_words, num_topics, TOPICS};
use crate::{Checkin, City, CityId, Dataset, Poi, PoiId, UserId, Vocabulary, WordId};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_geo::{BoundingBox, GeoPoint};

/// Specification of one synthetic city.
#[derive(Debug, Clone)]
pub struct CitySpec {
    /// Display name.
    pub name: String,
    /// Geographic centre.
    pub center: (f64, f64),
    /// Half-extent in degrees (bbox is `center ± extent`).
    pub extent: f64,
    /// Fraction of all POIs placed here.
    pub poi_share: f64,
    /// Fraction of all users living here.
    pub user_share: f64,
}

impl CitySpec {
    fn bbox(&self) -> BoundingBox {
        BoundingBox::new(
            self.center.0 - self.extent,
            self.center.0 + self.extent,
            self.center.1 - self.extent,
            self.center.1 + self.extent,
        )
    }
}

/// Full generator configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed: equal configs generate equal datasets.
    pub seed: u64,
    /// Cities; exactly one is the target (see `target_city`).
    pub cities: Vec<CitySpec>,
    /// Index into `cities` of the held-out target city.
    pub target_city: usize,
    /// Total users across all cities.
    pub users: usize,
    /// Total POIs across all cities.
    pub pois: usize,
    /// Total check-ins, *including* the crossing-city ones.
    pub checkins: usize,
    /// Number of source-city users who also visit the target city.
    pub crossing_users: usize,
    /// Mean target-city check-ins per crossing user.
    pub crossing_mean: f64,
    /// City-dependent words generated per (city, topic).
    pub city_words_per_topic: usize,
    /// Shared (city-independent) words per POI, inclusive range.
    pub shared_words_per_poi: (usize, usize),
    /// City-dependent words per POI, inclusive range.
    pub city_words_per_poi: (usize, usize),
    /// Districts per city (accessibility tiers).
    pub districts_per_city: usize,
    /// District accessibility decays as `decay^i` from downtown.
    pub accessibility_decay: f64,
    /// Dirichlet concentration of user topic preferences (lower = spikier
    /// users, easier to tell apart).
    pub pref_concentration: f64,
    /// Log-std of POI quality (popularity skew).
    pub quality_sigma: f64,
}

impl SynthConfig {
    /// Foursquare-like preset: Los Angeles target + four source cities,
    /// calibrated to Table 1 (3,600 users / 31,784 POIs / 3,619 words /
    /// 191,515 check-ins / 732 crossing users / 3,520 crossing check-ins).
    pub fn foursquare_like() -> Self {
        Self {
            seed: 0xF05A,
            cities: vec![
                CitySpec {
                    name: "Los Angeles".into(),
                    center: (34.05, -118.24),
                    extent: 0.25,
                    poi_share: 0.35,
                    user_share: 0.30,
                },
                CitySpec {
                    name: "New York".into(),
                    center: (40.71, -74.01),
                    extent: 0.20,
                    poi_share: 0.25,
                    user_share: 0.25,
                },
                CitySpec {
                    name: "Chicago".into(),
                    center: (41.88, -87.63),
                    extent: 0.20,
                    poi_share: 0.15,
                    user_share: 0.17,
                },
                CitySpec {
                    name: "San Francisco".into(),
                    center: (37.77, -122.42),
                    extent: 0.15,
                    poi_share: 0.13,
                    user_share: 0.15,
                },
                CitySpec {
                    name: "Boston".into(),
                    center: (42.36, -71.06),
                    extent: 0.15,
                    poi_share: 0.12,
                    user_share: 0.13,
                },
            ],
            target_city: 0,
            users: 3_600,
            pois: 31_784,
            checkins: 191_515,
            crossing_users: 732,
            crossing_mean: 4.8,
            city_words_per_topic: 49,
            shared_words_per_poi: (3, 6),
            city_words_per_poi: (3, 6),
            districts_per_city: 6,
            accessibility_decay: 0.55,
            pref_concentration: 0.45,
            quality_sigma: 0.7,
        }
    }

    /// Yelp-like preset: Phoenix source, Las Vegas target, calibrated to
    /// Table 1 (9,805 users / 6,910 POIs / 1,648 words / 433,305
    /// check-ins / 983 crossing users / 6,137 crossing check-ins).
    pub fn yelp_like() -> Self {
        Self {
            seed: 0x4E1F,
            cities: vec![
                CitySpec {
                    name: "Phoenix".into(),
                    center: (33.45, -112.07),
                    extent: 0.30,
                    poi_share: 0.50,
                    user_share: 0.55,
                },
                CitySpec {
                    name: "Las Vegas".into(),
                    center: (36.17, -115.14),
                    extent: 0.20,
                    poi_share: 0.50,
                    user_share: 0.45,
                },
            ],
            target_city: 1,
            users: 9_805,
            pois: 6_910,
            checkins: 433_305,
            crossing_users: 983,
            crossing_mean: 6.2,
            city_words_per_topic: 53,
            shared_words_per_poi: (3, 6),
            city_words_per_poi: (3, 6),
            districts_per_city: 6,
            accessibility_decay: 0.55,
            pref_concentration: 0.45,
            quality_sigma: 0.7,
        }
    }

    /// A two-city micro config for unit tests (fast to generate, still
    /// exhibits all four structural properties).
    pub fn tiny() -> Self {
        Self {
            seed: 7,
            cities: vec![
                CitySpec {
                    name: "Alpha".into(),
                    center: (10.0, 10.0),
                    extent: 0.2,
                    poi_share: 0.5,
                    user_share: 0.5,
                },
                CitySpec {
                    name: "Beta".into(),
                    center: (20.0, 20.0),
                    extent: 0.2,
                    poi_share: 0.5,
                    user_share: 0.5,
                },
            ],
            target_city: 1,
            users: 60,
            pois: 80,
            checkins: 1_500,
            crossing_users: 12,
            crossing_mean: 4.0,
            city_words_per_topic: 4,
            shared_words_per_poi: (3, 5),
            city_words_per_poi: (1, 2),
            districts_per_city: 3,
            accessibility_decay: 0.5,
            pref_concentration: 0.8,
            quality_sigma: 0.8,
        }
    }

    /// Scales counts by `s` (words by `sqrt(s)`), keeping structure.
    ///
    /// # Panics
    /// Panics unless `0 < s <= 1`.
    pub fn with_scale(mut self, s: f64) -> Self {
        assert!(s > 0.0 && s <= 1.0, "scale must be in (0, 1]");
        let scale = |x: usize, s: f64| ((x as f64 * s).round() as usize).max(1);
        self.users = scale(self.users, s).max(30);
        self.pois = scale(self.pois, s).max(40);
        self.checkins = scale(self.checkins, s).max(500);
        self.crossing_users = scale(self.crossing_users, s).max(5);
        self.city_words_per_topic = scale(self.city_words_per_topic, s.sqrt()).max(3);
        self
    }

    /// Replaces the seed (datasets for different seeds are independent).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.cities.len() >= 2, "need at least source + target city");
        assert!(self.target_city < self.cities.len(), "bad target index");
        let ps: f64 = self.cities.iter().map(|c| c.poi_share).sum();
        let us: f64 = self.cities.iter().map(|c| c.user_share).sum();
        assert!((ps - 1.0).abs() < 1e-6, "poi shares must sum to 1");
        assert!((us - 1.0).abs() < 1e-6, "user shares must sum to 1");
        assert!(self.crossing_users < self.users, "too many crossing users");
        assert!(self.crossing_mean >= 1.0);
        assert!(self.shared_words_per_poi.0 >= 1);
        assert!(self.shared_words_per_poi.0 <= self.shared_words_per_poi.1);
        assert!(self.city_words_per_poi.0 <= self.city_words_per_poi.1);
        assert!(self.districts_per_city >= 1);
        assert!((0.0..1.0).contains(&self.accessibility_decay) || self.accessibility_decay == 1.0);
        assert!(self.pref_concentration > 0.0);
    }
}

/// Latent ground truth the generator used — exposed for tests and
/// diagnostics (a recommender never sees this).
#[derive(Debug, Clone)]
pub struct SynthMeta {
    /// Per-user topic preference vectors (rows sum to 1).
    pub user_prefs: Vec<Vec<f32>>,
    /// Home city of each user.
    pub user_home: Vec<CityId>,
    /// Users that received target-city check-ins.
    pub crossing_users: Vec<UserId>,
    /// Topic of each POI.
    pub poi_topic: Vec<u16>,
    /// District (accessibility tier) of each POI within its city;
    /// 0 = downtown (most accessible).
    pub poi_district: Vec<u16>,
}

/// The generator: produces a [`Dataset`] plus its latent [`SynthMeta`].
pub fn generate(config: &SynthConfig) -> (Dataset, SynthMeta) {
    config.validate();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let t = num_topics();

    // ---- cities -----------------------------------------------------------
    let cities: Vec<City> = config
        .cities
        .iter()
        .enumerate()
        .map(|(i, spec)| City {
            id: CityId(i as u16),
            name: spec.name.clone(),
            bbox: spec.bbox(),
        })
        .collect();

    // Per-city topic availability tilt (behaviour drift): multiplier in
    // {0.4, 1.0, 2.5} per topic, plus the target city always gets one
    // strongly boosted "signature" topic (the casino effect).
    let mut city_topic_tilt: Vec<Vec<f64>> = (0..cities.len())
        .map(|_| {
            (0..t)
                .map(|_| [0.4, 1.0, 1.0, 1.0, 2.5][rng.gen_range(0..5usize)])
                .collect()
        })
        .collect();
    for (ci, tilt) in city_topic_tilt.iter_mut().enumerate() {
        let signature = (ci * 5 + 7) % t;
        tilt[signature] = 4.0;
    }

    // ---- vocabulary --------------------------------------------------------
    // Shared topic words first, then per-city words.
    let mut vocab = Vocabulary::new();
    let shared_ids: Vec<Vec<WordId>> = TOPICS
        .iter()
        .map(|topic| topic.shared_words.iter().map(|w| vocab.intern(w)).collect())
        .collect();
    let city_ids: Vec<Vec<Vec<WordId>>> = config
        .cities
        .iter()
        .map(|spec| {
            TOPICS
                .iter()
                .map(|topic| {
                    city_words(&spec.name, topic, config.city_words_per_topic)
                        .iter()
                        .map(|w| vocab.intern(w))
                        .collect()
                })
                .collect()
        })
        .collect();

    // ---- districts ----------------------------------------------------------
    // District d of city c sits at a deterministic offset inside the bbox;
    // accessibility decays geometrically from downtown (d = 0).
    let district_access: Vec<f64> = (0..config.districts_per_city)
        .map(|d| config.accessibility_decay.powi(d as i32))
        .collect();
    let district_centers: Vec<Vec<GeoPoint>> = config
        .cities
        .iter()
        .map(|spec| {
            (0..config.districts_per_city)
                .map(|d| {
                    if d == 0 {
                        GeoPoint::new(spec.center.0, spec.center.1)
                    } else {
                        // Ring placement: marginal districts sit toward the
                        // bbox edges.
                        let angle =
                            d as f64 / config.districts_per_city as f64 * std::f64::consts::TAU;
                        let radius = spec.extent * 0.65;
                        GeoPoint::new(
                            spec.center.0 + radius * angle.sin(),
                            spec.center.1 + radius * angle.cos(),
                        )
                    }
                })
                .collect()
        })
        .collect();

    // ---- POIs ---------------------------------------------------------------
    let poi_counts = largest_remainder(config.pois, config.cities.iter().map(|c| c.poi_share));
    let mut pois: Vec<Poi> = Vec::with_capacity(config.pois);
    let mut poi_topic: Vec<u16> = Vec::with_capacity(config.pois);
    let mut poi_district: Vec<u16> = Vec::with_capacity(config.pois);
    let mut poi_quality: Vec<f64> = Vec::with_capacity(config.pois);
    for (ci, &count) in poi_counts.iter().enumerate() {
        let spec = &config.cities[ci];
        let topic_dist = WeightedIndex::new(&city_topic_tilt[ci]).expect("positive tilts");
        // POIs spread across districts with a milder skew than check-ins
        // (downtown has more POIs, but marginal districts are not empty).
        let district_weights: Vec<f64> = district_access.iter().map(|a| a.sqrt()).collect();
        let district_dist = WeightedIndex::new(&district_weights).expect("positive weights");
        for k in 0..count {
            let topic = topic_dist.sample(&mut rng);
            let district = district_dist.sample(&mut rng);
            let center = district_centers[ci][district];
            let sigma = spec.extent * 0.08;
            let location = GeoPoint::new(
                clamp(
                    center.lat + sigma * gaussian(&mut rng),
                    spec.bbox().min_lat,
                    spec.bbox().max_lat,
                ),
                clamp(
                    center.lon + sigma * gaussian(&mut rng),
                    spec.bbox().min_lon,
                    spec.bbox().max_lon,
                ),
            );
            let mut words =
                sample_distinct(&shared_ids[topic], config.shared_words_per_poi, &mut rng);
            words.extend(sample_distinct(
                &city_ids[ci][topic],
                config.city_words_per_poi,
                &mut rng,
            ));
            words.sort_unstable();
            words.dedup();
            for &w in &words {
                vocab.add_count(w, 1);
            }
            pois.push(Poi {
                id: PoiId(pois.len() as u32),
                city: CityId(ci as u16),
                location,
                words,
                name: format!("{} {} #{}", spec.name, TOPICS[topic].name, k + 1),
            });
            poi_topic.push(topic as u16);
            poi_district.push(district as u16);
            poi_quality.push((config.quality_sigma * gaussian(&mut rng)).exp());
        }
    }

    // Per (city, topic) samplers weighted by quality x accessibility.
    let mut city_topic_pois: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); t]; cities.len()];
    for (i, poi) in pois.iter().enumerate() {
        city_topic_pois[poi.city.idx()][poi_topic[i] as usize].push(i as u32);
    }
    let make_sampler = |ci: usize, topic: usize, access_pow: f64| -> PoiSampler {
        let ids = &city_topic_pois[ci][topic];
        if ids.is_empty() {
            return None;
        }
        let weights: Vec<f64> = ids
            .iter()
            .map(|&p| {
                poi_quality[p as usize]
                    * district_access[poi_district[p as usize] as usize].powf(access_pow)
            })
            .collect();
        WeightedIndex::new(&weights).ok().map(|w| (ids.clone(), w))
    };
    // Locals see accessibility^1.0; travellers (crossing check-ins) see a
    // stronger skew, accessibility^1.3 — travellers stick to easy regions.
    let local_samplers: Vec<Vec<PoiSampler>> = (0..cities.len())
        .map(|ci| (0..t).map(|tp| make_sampler(ci, tp, 1.0)).collect())
        .collect();
    let traveller_samplers: Vec<PoiSampler> = (0..t)
        .map(|tp| make_sampler(config.target_city, tp, 1.3))
        .collect();

    // ---- users ---------------------------------------------------------------
    let user_counts = largest_remainder(config.users, config.cities.iter().map(|c| c.user_share));
    let mut user_home: Vec<CityId> = Vec::with_capacity(config.users);
    for (ci, &count) in user_counts.iter().enumerate() {
        user_home.extend(std::iter::repeat_n(CityId(ci as u16), count));
    }
    let user_prefs: Vec<Vec<f32>> = (0..config.users)
        .map(|_| dirichlet(t, config.pref_concentration, &mut rng))
        .collect();

    // Crossing users: a random subset of source-city users.
    let source_users: Vec<u32> = (0..config.users as u32)
        .filter(|&u| user_home[u as usize].idx() != config.target_city)
        .collect();
    assert!(
        source_users.len() >= config.crossing_users,
        "not enough source-city users for the requested crossing count"
    );
    let crossing: Vec<UserId> = {
        let mut pool = source_users;
        // Partial Fisher-Yates: take the first `crossing_users` of a shuffle.
        for i in 0..config.crossing_users {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let mut picked: Vec<UserId> = pool[..config.crossing_users]
            .iter()
            .map(|&u| UserId(u))
            .collect();
        picked.sort_unstable();
        picked
    };

    // ---- check-ins --------------------------------------------------------------
    // Budget: crossing check-ins first, remainder spread over home cities.
    let crossing_per_user: Vec<usize> = crossing
        .iter()
        .map(|_| {
            let raw = config.crossing_mean + 1.8 * gaussian(&mut rng);
            (raw.round() as i64).max(1) as usize
        })
        .collect();
    let crossing_total: usize = crossing_per_user.iter().sum();
    assert!(
        crossing_total < config.checkins,
        "crossing check-ins exceed the total budget"
    );
    let home_total = config.checkins - crossing_total;

    // Per-user home check-in counts: lognormal weights, largest-remainder
    // allocation, minimum 3 so every user is trainable.
    let weights: Vec<f64> = (0..config.users)
        .map(|_| (0.7 * gaussian(&mut rng)).exp())
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut home_counts = largest_remainder(home_total, weights.iter().map(|w| w / wsum));
    for c in &mut home_counts {
        *c = (*c).max(3);
    }

    let mut checkins: Vec<Checkin> = Vec::with_capacity(config.checkins + 3 * config.users);
    let mut time = 0u32;
    let sample_checkin = |user: u32,
                          samplers: &[PoiSampler],
                          prefs: &[f32],
                          time: &mut u32,
                          rng: &mut SmallRng|
     -> Option<Checkin> {
        // Topic ~ preference, restricted to topics present in the city.
        let avail: Vec<f64> = (0..t)
            .map(|tp| {
                if samplers[tp].is_some() {
                    prefs[tp] as f64
                } else {
                    0.0
                }
            })
            .collect();
        let dist = WeightedIndex::new(&avail).ok()?;
        let topic = dist.sample(rng);
        let (ids, widx) = samplers[topic].as_ref()?;
        let poi = ids[widx.sample(rng)];
        *time += 1;
        Some(Checkin {
            user: UserId(user),
            poi: PoiId(poi),
            time: *time,
        })
    };

    for u in 0..config.users as u32 {
        let home = user_home[u as usize].idx();
        for _ in 0..home_counts[u as usize] {
            if let Some(c) = sample_checkin(
                u,
                &local_samplers[home],
                &user_prefs[u as usize],
                &mut time,
                &mut rng,
            ) {
                checkins.push(c);
            }
        }
    }
    for (k, &u) in crossing.iter().enumerate() {
        for _ in 0..crossing_per_user[k] {
            if let Some(c) = sample_checkin(
                u.0,
                &traveller_samplers,
                &user_prefs[u.idx()],
                &mut time,
                &mut rng,
            ) {
                checkins.push(c);
            }
        }
    }

    // Timestamp invariant (see module docs): one global counter, bumped
    // exactly once per emitted check-in, makes `time` strictly increasing
    // over the whole vector — hence strictly monotone per user.
    debug_assert!(
        checkins.windows(2).all(|w| w[0].time < w[1].time),
        "check-in timestamps must be strictly increasing"
    );

    let dataset = Dataset::new(cities, pois, vocab, config.users, checkins);
    let meta = SynthMeta {
        user_prefs,
        user_home,
        crossing_users: crossing,
        poi_topic,
        poi_district,
    };
    (dataset, meta)
}

/// A deterministic, seeded stream of *new* check-in events over an
/// existing [`Dataset`] — the synthetic stand-in for a production
/// check-in feed that the online-learning pipeline ingests.
///
/// The stream continues the dataset's statistical structure rather than
/// replaying it: users are drawn proportionally to their historical
/// check-in volume (heavy users keep checking in), and each event picks
/// a POI from the user's modal ("home") city weighted by historical
/// popularity plus one (so cold POIs stay reachable and rankings can
/// drift — the reason continual training pays at all).
///
/// Two invariants the downstream trainer and shadow evaluator rely on:
///
/// - **Determinism**: equal `(dataset, seed)` produce the identical
///   event sequence, which is what makes end-to-end online-loop runs
///   two-pass reproducible.
/// - **Monotone time**: event timestamps continue strictly increasing
///   from the dataset's maximum timestamp (one global counter, like
///   [`generate`]), so "the last W events" is a well-defined window and
///   per-user histories never tie.
#[derive(Debug)]
pub struct CheckinStream {
    user_dist: WeightedIndex<f64>,
    /// Modal visited city per user (home fallback for users without
    /// history — they carry zero sampling weight, so it is never used).
    user_city: Vec<CityId>,
    /// Per-city POI pools with popularity + 1 weights.
    city_pois: Vec<Vec<PoiId>>,
    city_dist: Vec<Option<WeightedIndex<f64>>>,
    rng: SmallRng,
    next_time: u32,
}

impl CheckinStream {
    /// Builds a stream continuing `dataset` under `seed`.
    ///
    /// # Panics
    /// Panics if the dataset has no check-ins (no volume to imitate).
    pub fn new(dataset: &Dataset, seed: u64) -> Self {
        assert!(
            !dataset.checkins().is_empty(),
            "cannot stream over an empty dataset"
        );
        let num_cities = dataset.cities().len();

        // Per-user check-in volume and modal city.
        let mut volume = vec![0u32; dataset.num_users()];
        let mut city_visits = vec![vec![0u32; num_cities]; dataset.num_users()];
        let mut max_time = 0u32;
        for c in dataset.checkins() {
            volume[c.user.idx()] += 1;
            city_visits[c.user.idx()][dataset.poi(c.poi).city.idx()] += 1;
            max_time = max_time.max(c.time);
        }
        let user_city: Vec<CityId> = city_visits
            .iter()
            .map(|visits| {
                let best = visits
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &n)| n)
                    .map(|(ci, _)| ci)
                    .unwrap_or(0);
                CityId(best as u16)
            })
            .collect();
        let user_dist = WeightedIndex::new(volume.iter().map(|&v| v as f64))
            .expect("at least one user has check-ins");

        // Per-city popularity-weighted POI samplers.
        let city_pois: Vec<Vec<PoiId>> = (0..num_cities)
            .map(|ci| dataset.pois_in_city(CityId(ci as u16)).to_vec())
            .collect();
        let city_dist: Vec<Option<WeightedIndex<f64>>> = city_pois
            .iter()
            .map(|pool| {
                if pool.is_empty() {
                    return None;
                }
                let weights: Vec<f64> = pool
                    .iter()
                    .map(|&p| dataset.poi_popularity(p) as f64 + 1.0)
                    .collect();
                WeightedIndex::new(&weights).ok()
            })
            .collect();

        Self {
            user_dist,
            user_city,
            city_pois,
            city_dist,
            rng: SmallRng::seed_from_u64(seed),
            next_time: max_time.checked_add(1).expect("timestamp space exhausted"),
        }
    }

    /// The timestamp the next event will carry.
    pub fn next_time(&self) -> u32 {
        self.next_time
    }

    /// Draws the next event: a historically active user checking in at a
    /// popularity-weighted POI of their home city, at the next strictly
    /// increasing timestamp.
    pub fn next_event(&mut self) -> Checkin {
        loop {
            let user = self.user_dist.sample(&mut self.rng) as u32;
            let city = self.user_city[user as usize];
            let Some(dist) = self.city_dist[city.idx()].as_ref() else {
                // A home city with zero POIs cannot occur for a user with
                // history, but stay total: resample rather than panic.
                continue;
            };
            let poi = self.city_pois[city.idx()][dist.sample(&mut self.rng)];
            let time = self.next_time;
            self.next_time = time.checked_add(1).expect("timestamp space exhausted");
            return Checkin {
                user: UserId(user),
                poi,
                time,
            };
        }
    }

    /// Draws the next `n` events in arrival order.
    pub fn next_batch(&mut self, n: usize) -> Vec<Checkin> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

/// A weighted POI sampler for one (city, topic) pair: the POI ids and
/// their quality-x-accessibility weights.
type PoiSampler = Option<(Vec<u32>, WeightedIndex<f64>)>;

/// Largest-remainder (Hamilton) apportionment of `total` into shares.
fn largest_remainder(total: usize, shares: impl Iterator<Item = f64>) -> Vec<usize> {
    let shares: Vec<f64> = shares.collect();
    let raw: Vec<f64> = shares.iter().map(|s| s * total as f64).collect();
    let mut counts: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa).expect("finite remainders")
    });
    let n = counts.len();
    for i in 0..total.saturating_sub(assigned) {
        counts[order[i % n]] += 1;
    }
    counts
}

/// Samples `range.0..=range.1` distinct elements of `pool` (all of them if
/// the pool is smaller).
fn sample_distinct(pool: &[WordId], range: (usize, usize), rng: &mut SmallRng) -> Vec<WordId> {
    let k = rng.gen_range(range.0..=range.1).min(pool.len());
    let mut picked: Vec<WordId> = Vec::with_capacity(k);
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
        picked.push(pool[idx[i]]);
    }
    picked
}

/// Symmetric Dirichlet via normalized Gamma(alpha, 1) draws.
fn dirichlet(k: usize, alpha: f64, rng: &mut SmallRng) -> Vec<f32> {
    let draws: Vec<f64> = (0..k).map(|_| gamma(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / k as f32; k];
    }
    draws.into_iter().map(|d| (d / sum) as f32).collect()
}

/// Marsaglia-Tsang Gamma(alpha, 1) sampler (with the alpha < 1 boost).
fn gamma(alpha: f64, rng: &mut SmallRng) -> f64 {
    if alpha < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Standard normal via Box-Muller.
fn gaussian(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrossingCitySplit, DatasetStats};

    #[test]
    fn tiny_dataset_generates_and_validates() {
        let (d, meta) = generate(&SynthConfig::tiny());
        assert_eq!(d.num_users(), 60);
        assert_eq!(d.num_pois(), 80);
        assert!(d.checkins().len() >= 1_000, "got {}", d.checkins().len());
        assert_eq!(meta.user_prefs.len(), 60);
        assert_eq!(meta.poi_topic.len(), 80);
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate(&SynthConfig::tiny());
        let (b, _) = generate(&SynthConfig::tiny());
        assert_eq!(a.checkins(), b.checkins());
        assert_eq!(a.pois().len(), b.pois().len());
        let (c, _) = generate(&SynthConfig::tiny().with_seed(99));
        assert_ne!(a.checkins(), c.checkins(), "different seed, different data");
    }

    /// Regression test for the timestamp invariant the streaming windows
    /// and leave-last-out splits rely on: under a fixed seed, timestamps
    /// are strictly increasing globally — and therefore strictly
    /// monotone per user, with no ties anywhere.
    #[test]
    fn timestamps_strictly_monotone_per_user() {
        for cfg in [
            SynthConfig::tiny(),
            SynthConfig::tiny().with_seed(99),
            SynthConfig::foursquare_like().with_scale(0.02),
        ] {
            let (d, _) = generate(&cfg);
            let checkins = d.checkins();
            assert!(
                checkins.windows(2).all(|w| w[0].time < w[1].time),
                "global timestamps not strictly increasing (seed {})",
                cfg.seed
            );
            let mut last = vec![None::<u32>; d.num_users()];
            for c in checkins {
                if let Some(prev) = last[c.user.idx()] {
                    assert!(
                        c.time > prev,
                        "user {:?} times not strictly monotone: {prev} then {}",
                        c.user,
                        c.time
                    );
                }
                last[c.user.idx()] = Some(c.time);
            }
        }
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let (d, _) = generate(&SynthConfig::tiny());
        let a = CheckinStream::new(&d, 42).next_batch(500);
        let b = CheckinStream::new(&d, 42).next_batch(500);
        assert_eq!(a, b, "same seed must replay the same events");
        let c = CheckinStream::new(&d, 43).next_batch(500);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn stream_events_are_valid_and_continue_monotone_time() {
        let (d, _) = generate(&SynthConfig::tiny());
        let max_time = d.checkins().iter().map(|c| c.time).max().unwrap();
        let mut stream = CheckinStream::new(&d, 7);
        assert_eq!(stream.next_time(), max_time + 1);
        let events = stream.next_batch(400);
        let mut prev = max_time;
        for e in &events {
            assert!(e.user.idx() < d.num_users());
            assert!(e.poi.idx() < d.num_pois());
            assert!(e.time > prev, "stream time went backwards");
            prev = e.time;
            // Every event lands in the user's historically modal city.
            let city = d.poi(e.poi).city;
            assert!(
                d.user_checkins(e.user).count() > 0,
                "streamed a user with no history"
            );
            assert!(
                d.user_cities(e.user).contains(&city),
                "event outside the user's visited cities"
            );
        }
        // Volume weighting: the stream should touch many distinct users.
        let mut users: Vec<u32> = events.iter().map(|e| e.user.0).collect();
        users.sort_unstable();
        users.dedup();
        assert!(users.len() > 10, "stream stuck on {} users", users.len());
    }

    #[test]
    fn crossing_users_have_target_checkins() {
        let cfg = SynthConfig::tiny();
        let (d, meta) = generate(&cfg);
        let target = CityId(cfg.target_city as u16);
        assert_eq!(meta.crossing_users.len(), cfg.crossing_users);
        for &u in &meta.crossing_users {
            assert!(
                !d.user_visited_in_city(u, target).is_empty(),
                "crossing user {u:?} has no target check-ins"
            );
            assert_ne!(
                meta.user_home[u.idx()],
                target,
                "crossing users are non-local"
            );
        }
        // And they are exactly the crossing users the dataset detects.
        let detected = d.crossing_city_users(target);
        assert_eq!(detected, meta.crossing_users);
    }

    #[test]
    fn crossing_checkins_are_sparse() {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        let frac = split.held_out_checkins(&d) as f64 / d.checkins().len() as f64;
        assert!(frac < 0.08, "crossing fraction {frac} too large");
        assert!(frac > 0.0);
    }

    #[test]
    fn users_home_checkins_stay_home() {
        let cfg = SynthConfig::tiny();
        let (d, meta) = generate(&cfg);
        let target = CityId(cfg.target_city as u16);
        for u in 0..d.num_users() as u32 {
            let u = UserId(u);
            if meta.crossing_users.binary_search(&u).is_err() {
                let cities = d.user_cities(u);
                assert!(
                    cities.len() <= 1,
                    "non-crossing user {u:?} visited {cities:?}"
                );
                if meta.user_home[u.idx()] != target && !cities.is_empty() {
                    assert_ne!(cities[0], target);
                }
            }
        }
    }

    #[test]
    fn district_density_is_imbalanced() {
        // Downtown (district 0) must attract disproportionately many
        // check-ins relative to its POI count — the crux of Sec. 3.1.4.
        // The per-POI lognormal quality noise is large relative to a
        // tiny 80-POI dataset, so aggregate over several seeds to test
        // the structural bias rather than one draw.
        let base = SynthConfig::tiny();
        let mut checkins_by_district = vec![0usize; base.districts_per_city];
        let mut pois_by_district = vec![0usize; base.districts_per_city];
        for seed in 1..=5 {
            let cfg = base.clone().with_seed(seed);
            let (d, meta) = generate(&cfg);
            for (i, _) in d.pois().iter().enumerate() {
                pois_by_district[meta.poi_district[i] as usize] += 1;
            }
            for c in d.checkins() {
                checkins_by_district[meta.poi_district[c.poi.idx()] as usize] += 1;
            }
        }
        let rate = |d: usize| checkins_by_district[d] as f64 / pois_by_district[d].max(1) as f64;
        let last = base.districts_per_city - 1;
        assert!(
            rate(0) > 1.5 * rate(last),
            "downtown {} vs marginal {}",
            rate(0),
            rate(last)
        );
    }

    #[test]
    fn poi_words_mix_shared_and_city_vocab() {
        let (d, _) = generate(&SynthConfig::tiny());
        let vocab = d.vocab();
        let mut any_shared = false;
        let mut any_city = false;
        for poi in d.pois() {
            assert!(!poi.words.is_empty());
            for &w in &poi.words {
                let s = vocab.word(w);
                if s.contains(" spot ") {
                    any_city = true;
                    // City word must belong to this POI's own city.
                    let city_name = &d.city(poi.city).name.to_ascii_lowercase().replace(' ', "");
                    assert!(
                        s.starts_with(city_name.as_str()),
                        "POI in {} carries foreign city word {s}",
                        d.city(poi.city).name
                    );
                } else {
                    any_shared = true;
                }
            }
        }
        assert!(any_shared && any_city);
    }

    #[test]
    fn popularity_is_skewed() {
        let (d, _) = generate(&SynthConfig::tiny());
        let mut pops: Vec<usize> = (0..d.num_pois())
            .map(|p| d.poi_popularity(PoiId(p as u32)))
            .collect();
        pops.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = pops[..d.num_pois() / 10].iter().sum();
        let total: usize = pops.iter().sum();
        assert!(
            top_decile as f64 > 0.25 * total as f64,
            "top 10% of POIs hold only {top_decile}/{total} check-ins"
        );
    }

    #[test]
    fn with_scale_shrinks_proportionally() {
        let cfg = SynthConfig::foursquare_like().with_scale(0.1);
        assert_eq!(cfg.users, 360);
        assert!((cfg.pois as i64 - 3_178).abs() <= 1);
        assert!((cfg.checkins as i64 - 19_152).abs() <= 1);
        assert_eq!(cfg.crossing_users, 73);
        let (d, _) = generate(&cfg);
        let stats = DatasetStats::compute(&d, CityId(0));
        assert_eq!(stats.users, 360);
        assert!(
            stats.crossing_users >= 70,
            "crossing users {}",
            stats.crossing_users
        );
    }

    #[test]
    fn table1_calibration_shape_holds_at_small_scale() {
        // At scale 0.05 the Foursquare preset keeps its ratios: check-ins
        // per user ~53, crossing fraction ~2%.
        let cfg = SynthConfig::foursquare_like().with_scale(0.05);
        let (d, _) = generate(&cfg);
        let stats = DatasetStats::compute(&d, CityId(0));
        let per_user = stats.checkins as f64 / stats.users as f64;
        assert!(
            (40.0..75.0).contains(&per_user),
            "check-ins/user {per_user}"
        );
        assert!(stats.crossing_fraction() < 0.05);
        assert!(stats.words > 500, "vocabulary too small: {}", stats.words);
    }

    #[test]
    fn largest_remainder_sums_exactly() {
        let counts = largest_remainder(100, [0.335, 0.335, 0.33].into_iter());
        assert_eq!(counts.iter().sum::<usize>(), 100);
        let counts = largest_remainder(7, [0.5, 0.5].into_iter());
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn dirichlet_sums_to_one_and_varies() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = dirichlet(5, 0.8, &mut rng);
        let b = dirichlet(5, 0.8, &mut rng);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_ne!(a, b);
        assert!(a.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn gamma_mean_is_alpha() {
        let mut rng = SmallRng::seed_from_u64(2);
        for &alpha in &[0.5, 1.0, 3.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma(alpha, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.15 * alpha.max(0.5),
                "alpha {alpha}: mean {mean}"
            );
        }
    }
}
