//! Train/test construction for crossing-city evaluation (Sec. 4.1,
//! "Dataset Construction").
//!
//! Pick a target city; users who checked into both the target and some
//! source city are *test users*. Their target-city check-ins become held
//! out ground truth; everything else (all source-city check-ins, plus
//! target-city check-ins of non-crossing local users) is training data.

use crate::{Checkin, CityId, Dataset, PoiId, UserId};

/// A crossing-city train/test split over a [`Dataset`].
#[derive(Debug, Clone)]
pub struct CrossingCitySplit {
    /// The held-out city.
    pub target_city: CityId,
    /// Training check-ins (order preserved from the dataset).
    pub train: Vec<Checkin>,
    /// Crossing-city users, ascending by id.
    pub test_users: Vec<UserId>,
    /// Parallel to `test_users`: distinct ground-truth POIs each visited
    /// in the target city.
    pub ground_truth: Vec<Vec<PoiId>>,
}

impl CrossingCitySplit {
    /// Builds the split for `target_city`.
    pub fn build(dataset: &Dataset, target_city: CityId) -> Self {
        let test_users = dataset.crossing_city_users(target_city);
        let is_test = {
            let mut mask = vec![false; dataset.num_users()];
            for u in &test_users {
                mask[u.idx()] = true;
            }
            mask
        };

        let train = dataset
            .checkins()
            .iter()
            .filter(|c| {
                let in_target = dataset.poi(c.poi).city == target_city;
                // Held out iff: test user AND check-in is in the target city.
                !(is_test[c.user.idx()] && in_target)
            })
            .copied()
            .collect();

        let ground_truth = test_users
            .iter()
            .map(|&u| dataset.user_visited_in_city(u, target_city))
            .collect();

        Self {
            target_city,
            train,
            test_users,
            ground_truth,
        }
    }

    /// Number of held-out check-ins (the paper's "crossing-city
    /// check-ins" row of Table 1 counts these).
    pub fn held_out_checkins(&self, dataset: &Dataset) -> usize {
        dataset.checkins().len() - self.train.len()
    }

    /// Ground truth for one test user, by position.
    pub fn ground_truth_for(&self, idx: usize) -> &[PoiId] {
        &self.ground_truth[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::tiny_dataset;

    #[test]
    fn holds_out_crossing_users_target_checkins() {
        let d = tiny_dataset();
        let split = CrossingCitySplit::build(&d, CityId(1));
        assert_eq!(split.test_users, vec![UserId(2)]);
        assert_eq!(split.ground_truth_for(0), &[PoiId(3)]);
        // User 2's one target-city check-in (PoiId(3)) is held out.
        assert_eq!(split.held_out_checkins(&d), 1);
        assert!(split
            .train
            .iter()
            .all(|c| !(c.user == UserId(2) && d.poi(c.poi).city == CityId(1))));
        // User 1 is a target-city local: their check-ins stay in training.
        assert!(split
            .train
            .iter()
            .any(|c| c.user == UserId(1) && d.poi(c.poi).city == CityId(1)));
    }

    #[test]
    fn source_checkins_of_test_users_kept_for_training() {
        let d = tiny_dataset();
        let split = CrossingCitySplit::build(&d, CityId(1));
        let kept = split.train.iter().filter(|c| c.user == UserId(2)).count();
        assert_eq!(kept, 2, "both source-city check-ins of user 2 remain");
    }

    #[test]
    fn no_crossing_users_means_empty_test_set() {
        let d = tiny_dataset();
        // City 0 as target: only user 2 crosses (visited both) — so use a
        // fresh city id that nobody visited twice. City 0's crossing users:
        let split = CrossingCitySplit::build(&d, CityId(0));
        assert_eq!(split.test_users, vec![UserId(2)]);
        // Their city-0 check-ins are held out (2 of them: dedup happens
        // only in ground truth, not in the held-out count).
        assert_eq!(split.held_out_checkins(&d), 2);
        assert_eq!(split.ground_truth_for(0), &[PoiId(0)]);
    }
}
