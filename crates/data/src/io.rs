//! Plain-text dataset interchange.
//!
//! Real check-in dumps (the paper's Foursquare format: user-ID, POI-ID,
//! time, contents, location, city) arrive as delimited text. This module
//! reads and writes a self-contained two-section format so users can run
//! the library on their own data without any extra dependencies:
//!
//! ```text
//! # cities
//! city_id<TAB>name<TAB>min_lat<TAB>max_lat<TAB>min_lon<TAB>max_lon
//! # pois
//! poi_id<TAB>city_id<TAB>lat<TAB>lon<TAB>name<TAB>word|word|word
//! # checkins
//! user_id<TAB>poi_id<TAB>time
//! ```
//!
//! Ids must be dense (0..n) per entity, matching [`Dataset::new`]'s
//! invariants; violations surface as [`IoError::Malformed`] with a line
//! number rather than a panic.

use crate::{Checkin, City, CityId, Dataset, Poi, PoiId, UserId, Vocabulary, WordId};
use st_geo::{BoundingBox, GeoPoint};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from dataset parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structural problem, with the 1-based line number.
    Malformed {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Malformed { line, message } => {
                write!(f, "malformed dataset at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> IoError {
    IoError::Malformed {
        line,
        message: message.into(),
    }
}

/// Serializes a dataset to the text format.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# cities")?;
    for c in dataset.cities() {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            c.id.0, c.name, c.bbox.min_lat, c.bbox.max_lat, c.bbox.min_lon, c.bbox.max_lon
        )?;
    }
    writeln!(out, "# pois")?;
    for p in dataset.pois() {
        let words: Vec<&str> = p.words.iter().map(|&w| dataset.vocab().word(w)).collect();
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            p.id.0,
            p.city.0,
            p.location.lat,
            p.location.lon,
            p.name,
            words.join("|")
        )?;
    }
    writeln!(out, "# checkins")?;
    for c in dataset.checkins() {
        writeln!(out, "{}\t{}\t{}", c.user.0, c.poi.0, c.time)?;
    }
    Ok(())
}

/// Parses a dataset from the text format.
///
/// The number of users is inferred as `max(user_id) + 1`.
pub fn read_dataset<R: BufRead>(input: R) -> Result<Dataset, IoError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Cities,
        Pois,
        Checkins,
    }
    let mut section = Section::None;
    let mut cities: Vec<City> = Vec::new();
    let mut pois: Vec<Poi> = Vec::new();
    let mut vocab = Vocabulary::new();
    let mut checkins: Vec<Checkin> = Vec::new();
    let mut max_user: i64 = -1;

    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        match line {
            "# cities" => {
                section = Section::Cities;
                continue;
            }
            "# pois" => {
                section = Section::Pois;
                continue;
            }
            "# checkins" => {
                section = Section::Checkins;
                continue;
            }
            _ => {}
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match section {
            Section::None => {
                return Err(malformed(line_no, "record before any section header"));
            }
            Section::Cities => {
                if fields.len() != 6 {
                    return Err(malformed(line_no, "city needs 6 tab-separated fields"));
                }
                let id: u16 = parse(fields[0], line_no, "city id")?;
                if id as usize != cities.len() {
                    return Err(malformed(
                        line_no,
                        format!("city ids must be dense; got {id}"),
                    ));
                }
                let (min_lat, max_lat): (f64, f64) = (
                    parse(fields[2], line_no, "min_lat")?,
                    parse(fields[3], line_no, "max_lat")?,
                );
                let (min_lon, max_lon): (f64, f64) = (
                    parse(fields[4], line_no, "min_lon")?,
                    parse(fields[5], line_no, "max_lon")?,
                );
                if min_lat >= max_lat || min_lon >= max_lon {
                    return Err(malformed(line_no, "degenerate bounding box"));
                }
                cities.push(City {
                    id: CityId(id),
                    name: fields[1].to_string(),
                    bbox: BoundingBox::new(min_lat, max_lat, min_lon, max_lon),
                });
            }
            Section::Pois => {
                if fields.len() != 6 {
                    return Err(malformed(line_no, "POI needs 6 tab-separated fields"));
                }
                let id: u32 = parse(fields[0], line_no, "poi id")?;
                if id as usize != pois.len() {
                    return Err(malformed(
                        line_no,
                        format!("POI ids must be dense; got {id}"),
                    ));
                }
                let city: u16 = parse(fields[1], line_no, "city id")?;
                if city as usize >= cities.len() {
                    return Err(malformed(
                        line_no,
                        format!("POI references unknown city {city}"),
                    ));
                }
                let lat: f64 = parse(fields[2], line_no, "lat")?;
                let lon: f64 = parse(fields[3], line_no, "lon")?;
                if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
                    return Err(malformed(line_no, "coordinates out of range"));
                }
                let mut words: Vec<WordId> = fields[5]
                    .split('|')
                    .filter(|w| !w.is_empty())
                    .map(|w| vocab.observe(w))
                    .collect();
                words.sort_unstable();
                words.dedup();
                if words.is_empty() {
                    return Err(malformed(line_no, "POI needs at least one word"));
                }
                pois.push(Poi {
                    id: PoiId(id),
                    city: CityId(city),
                    location: GeoPoint::new(lat, lon),
                    words,
                    name: fields[4].to_string(),
                });
            }
            Section::Checkins => {
                if fields.len() != 3 {
                    return Err(malformed(line_no, "check-in needs 3 tab-separated fields"));
                }
                let user: u32 = parse(fields[0], line_no, "user id")?;
                let poi: u32 = parse(fields[1], line_no, "poi id")?;
                if poi as usize >= pois.len() {
                    return Err(malformed(
                        line_no,
                        format!("check-in references unknown POI {poi}"),
                    ));
                }
                let time: u32 = parse(fields[2], line_no, "time")?;
                max_user = max_user.max(user as i64);
                checkins.push(Checkin {
                    user: UserId(user),
                    poi: PoiId(poi),
                    time,
                });
            }
        }
    }
    if cities.is_empty() {
        return Err(malformed(0, "no cities section"));
    }
    Ok(Dataset::new(
        cities,
        pois,
        vocab,
        (max_user + 1).max(0) as usize,
        checkins,
    ))
}

fn parse<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, IoError> {
    s.parse()
        .map_err(|_| malformed(line, format!("cannot parse {what} from {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let (d, _) = generate(&SynthConfig::tiny());
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset(BufReader::new(buf.as_slice())).unwrap();

        assert_eq!(d.num_users(), d2.num_users());
        assert_eq!(d.num_pois(), d2.num_pois());
        assert_eq!(d.checkins(), d2.checkins());
        assert_eq!(d.cities().len(), d2.cities().len());
        for (a, b) in d.pois().iter().zip(d2.pois()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.city, b.city);
            assert_eq!(a.name, b.name);
            // Word *strings* must match (ids may be renumbered).
            let words = |d: &Dataset, p: &Poi| -> Vec<String> {
                let mut w: Vec<String> = p
                    .words
                    .iter()
                    .map(|&w| d.vocab().word(w).to_string())
                    .collect();
                w.sort();
                w
            };
            assert_eq!(words(&d, a), words(&d2, b));
        }
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        let bad = "# cities\n0\tX\t0\t1\t0\t1\n# pois\n0\t5\t0.5\t0.5\tname\tword\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        match err {
            IoError::Malformed { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("unknown city"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_non_dense_ids() {
        let bad = "# cities\n0\tX\t0\t1\t0\t1\n# pois\n7\t0\t0.5\t0.5\tname\tword\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("dense"), "{err}");
    }

    #[test]
    fn rejects_record_before_header() {
        let bad = "0\tX\t0\t1\t0\t1\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("section header"));
    }

    #[test]
    fn rejects_unknown_poi_in_checkin() {
        let bad = "# cities\n0\tX\t0\t1\t0\t1\n# pois\n0\t0\t0.5\t0.5\tn\tw\n# checkins\n0\t9\t1\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("unknown POI"), "{err}");
    }

    #[test]
    fn empty_lines_are_skipped() {
        let ok = "# cities\n\n0\tX\t0\t1\t0\t1\n\n# pois\n0\t0\t0.5\t0.5\tn\tw\n# checkins\n";
        let d = read_dataset(BufReader::new(ok.as_bytes())).unwrap();
        assert_eq!(d.num_pois(), 1);
        assert_eq!(d.num_users(), 0);
    }
}
