//! Property-based tests for the data substrate and generator invariants.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, NegativeTable, UserId, Vocabulary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seeded tiny dataset satisfies the referential and split
    /// invariants the rest of the system assumes.
    #[test]
    fn generated_datasets_are_internally_consistent(seed in 0u64..50) {
        let cfg = SynthConfig::tiny().with_seed(seed);
        let (d, meta) = generate(&cfg);
        let target = CityId(cfg.target_city as u16);

        // Every check-in references valid users and POIs (Dataset::new
        // would have panicked otherwise); POIs have non-empty words.
        for poi in d.pois() {
            prop_assert!(!poi.words.is_empty());
            prop_assert!(d.city(poi.city).bbox.contains(&poi.location)
                || on_boundary(&d.city(poi.city).bbox, &poi.location));
        }

        // Split invariants: held-out = test users' target check-ins.
        let split = CrossingCitySplit::build(&d, target);
        prop_assert_eq!(&split.test_users, &meta.crossing_users);
        let held = split.held_out_checkins(&d);
        prop_assert!(held > 0);
        prop_assert_eq!(split.train.len() + held, d.checkins().len());
        for (i, &u) in split.test_users.iter().enumerate() {
            prop_assert!(!split.ground_truth_for(i).is_empty());
            // No ground-truth POI appears among the user's training
            // check-ins (no leakage).
            for c in split.train.iter().filter(|c| c.user == u) {
                prop_assert!(!split.ground_truth_for(i).contains(&c.poi)
                    || d.poi(c.poi).city != target);
            }
        }
        let _ = UserId(0);
    }
}

fn on_boundary(bbox: &st_geo::BoundingBox, p: &st_geo::GeoPoint) -> bool {
    // Clamping in the generator can place a POI exactly on the max edge,
    // which `contains` treats as outside (half-open box).
    (p.lat - bbox.max_lat).abs() < 1e-9 || (p.lon - bbox.max_lon).abs() < 1e-9
}

proptest! {
    /// The negative table samples valid ids under any count profile.
    #[test]
    fn negative_table_samples_in_range(
        counts in proptest::collection::vec(0u64..1000, 1..40),
        power in 0.0f64..2.0,
        seed in 0u64..100
    ) {
        let table = NegativeTable::from_counts(&counts, power);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let id = table.sample(&mut rng);
            prop_assert!((id.idx()) < counts.len());
        }
    }

    /// Interning is injective and stable under arbitrary word sets.
    #[test]
    fn vocabulary_interning_is_bijective(words in proptest::collection::hash_set("[a-z]{1,8}", 1..30)) {
        let mut vocab = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| vocab.intern(w)).collect();
        prop_assert_eq!(vocab.len(), words.len());
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ids.len(), "duplicate ids for distinct words");
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(vocab.word(*id), w.as_str());
            prop_assert_eq!(vocab.get(w), Some(*id));
        }
    }
}
