//! Per-replica circuit breaker.
//!
//! Extends the PR 5 shed/degrade philosophy one tier up: when a replica
//! keeps failing (transport errors or *unexpected* backend 5xx — not
//! 429s or Retry-After-stamped 503 sheds, which are the backend
//! protecting itself), the router stops burning connections on it and
//! answers `503` + `Retry-After` for that shard immediately ("dark
//! shard"). After a cooldown the breaker half-opens
//! and admits exactly one probe request; its outcome closes or re-opens
//! the breaker.
//!
//! The state machine is clock-free: every transition takes `now` as a
//! parameter and [`CircuitBreaker::force_half_open`] models cooldown
//! expiry explicitly, so the fleet-chaos suite can drive transitions
//! deterministically under a fixed seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before half-opening.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_secs(2),
        }
    }
}

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests admitted.
    Closed,
    /// Tripped: requests rejected until the cooldown elapses.
    Open,
    /// Probing: exactly one in-flight request allowed; its outcome
    /// decides Closed vs Open.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        })
    }
}

/// What the breaker says about admitting one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: forward normally.
    Allow,
    /// Half-open: forward as the single probe.
    Probe,
    /// Open (or probe already in flight): answer 503 without forwarding.
    Reject,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A per-replica circuit breaker. Thread-safe; cheap under contention
/// (one short mutex per admission decision).
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
    config: BreakerConfig,
    /// Closed/HalfOpen → Open transitions.
    pub opened_total: AtomicU64,
    /// Open → HalfOpen transitions.
    pub half_opened_total: AtomicU64,
    /// HalfOpen → Closed transitions.
    pub closed_total: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given config.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            config,
            opened_total: AtomicU64::new(0),
            half_opened_total: AtomicU64::new(0),
            closed_total: AtomicU64::new(0),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// Decides whether one request may go to this replica at `now`.
    pub fn admit(&self, now: Instant) -> Admission {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                let expired = inner
                    .opened_at
                    .is_some_and(|at| now.duration_since(at) >= self.config.cooldown);
                if expired {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    self.half_opened_total.fetch_add(1, Ordering::Relaxed);
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    Admission::Reject
                } else {
                    inner.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Forces an open breaker to half-open, as if the cooldown elapsed.
    /// The chaos suite uses this instead of sleeping through cooldowns.
    pub fn force_half_open(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.state == BreakerState::Open {
            inner.state = BreakerState::HalfOpen;
            inner.probe_in_flight = false;
            self.half_opened_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a successful forward (2xx/4xx answer from the replica).
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.state != BreakerState::Closed {
            self.closed_total.fetch_add(1, Ordering::Relaxed);
        }
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.probe_in_flight = false;
    }

    /// Records a failed forward (transport error or backend 5xx) at `now`.
    pub fn record_failure(&self, now: Instant) {
        let mut inner = self.inner.lock().unwrap();
        inner.probe_in_flight = false;
        match inner.state {
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(now);
                self.opened_total.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(now);
                    self.opened_total.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Resets to Closed with counters cleared. Used when a replica
    /// rejoins the fleet (probe confirms it is back).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.probe_in_flight = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let b = breaker(3, 10_000);
        let t0 = Instant::now();
        b.record_failure(t0);
        b.record_failure(t0);
        b.record_success(); // streak broken
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(t0), Admission::Reject);
        assert_eq!(b.opened_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cooldown_expiry_admits_single_probe() {
        let b = breaker(1, 50);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert_eq!(b.admit(t0), Admission::Reject);
        let later = t0 + Duration::from_millis(60);
        assert_eq!(b.admit(later), Admission::Probe);
        // Second concurrent request during the probe is rejected.
        assert_eq!(b.admit(later), Admission::Reject);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closed_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker(1, 0);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert_eq!(b.admit(t0), Admission::Probe);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened_total.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn force_half_open_skips_cooldown() {
        let b = breaker(1, 3_600_000);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert_eq!(b.admit(t0), Admission::Reject);
        b.force_half_open();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(t0), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
