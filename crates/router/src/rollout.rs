//! Rolling snapshot rollout: upgrade replicas one at a time, verify each
//! swap, and never let one user observe mixed model generations.
//!
//! The driver is a resumable state machine over the fleet order:
//!
//! 1. Mark the next replica [`Generation::InFlight`] — the fleet diverts
//!    its users to a healthy old-generation successor.
//! 2. `POST /admin/reload` and parse the outcome the backend reports
//!    (`model_epoch`, `snapshot_format`, ...).
//! 3. Independently verify via `GET /metrics` that the
//!    `st_serve_model_epoch` gauge and the `st_serve_snapshot_format`
//!    one-hot agree with the reload report (and with the expected format
//!    when the operator pinned one).
//! 4. Mark the replica [`Generation::New`]; its users come back to it
//!    and are pinned to the new generation from their first answer.
//!
//! A dead replica, failed reload, or verification mismatch **pauses**
//! the rollout at that shard: the replica stays diverted (its state is
//! unverified), already-upgraded replicas keep serving the new
//! generation, and a later [`RolloutDriver::step`] retries the same
//! shard. Pausing instead of skipping is what keeps the "no mixed epochs
//! for one user" invariant trivially true under mid-rollout failures.
//!
//! The rollout's position lives on the [`Fleet`] (generation labels +
//! the `rollout_active` flag), not in the driver: a *fresh* driver over
//! a fleet whose rollout is already active resumes at the first
//! not-yet-verified shard, preserving pins and labels. That is what lets
//! each `POST /admin/reload` build its own short-lived driver and still
//! continue a paused rollout instead of restarting it.

use crate::fleet::{Fleet, Generation};
use crate::ring::ReplicaId;
use st_serve::HttpClient;
use st_tensor::StorageEncoding;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Rollout tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RolloutConfig {
    /// When set, every replica must land on exactly this snapshot format
    /// or the rollout pauses.
    pub expect_format: Option<StorageEncoding>,
    /// Reload/verify RPC timeout; `None` uses a generous default
    /// (reloads deserialize whole checkpoints).
    pub rpc_timeout: Option<Duration>,
}

/// Outcome of one [`RolloutDriver::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutStep {
    /// The shard reloaded and verified; its users now pin to the new
    /// generation.
    Upgraded {
        /// The upgraded replica.
        replica: ReplicaId,
        /// Its verified post-reload epoch.
        epoch: u64,
    },
    /// The rollout cannot proceed past this shard right now; retrying
    /// `step()` resumes here.
    Paused {
        /// The blocking replica.
        replica: ReplicaId,
        /// Human-readable cause.
        reason: String,
    },
    /// Every replica is upgraded; rollout state has been cleared.
    Done,
}

/// Summary of a full [`RolloutDriver::run`].
#[derive(Debug, Clone)]
pub struct RolloutReport {
    /// Whether every replica upgraded.
    pub completed: bool,
    /// `(replica, verified epoch)` per upgraded shard, in order.
    pub upgraded: Vec<(ReplicaId, u64)>,
    /// The pause point, when not completed.
    pub paused: Option<(ReplicaId, String)>,
}

impl RolloutReport {
    /// Renders the report as the `/admin/reload` response body.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"completed\":{},\"upgraded\":[", self.completed);
        for (i, (id, epoch)) in self.upgraded.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"replica\":{id},\"model_epoch\":{epoch}}}");
        }
        out.push(']');
        if let Some((id, reason)) = &self.paused {
            let _ = write!(
                out,
                ",\"paused\":{{\"replica\":{id},\"reason\":{}}}",
                st_serve::http::json_string(reason)
            );
        }
        out.push('}');
        out
    }
}

/// Drives one rolling rollout across a fleet.
pub struct RolloutDriver<'a> {
    fleet: &'a Fleet,
    config: RolloutConfig,
    next: usize,
    active: bool,
}

impl<'a> RolloutDriver<'a> {
    /// A driver positioned before the first replica.
    pub fn new(fleet: &'a Fleet, config: RolloutConfig) -> Self {
        Self {
            fleet,
            config,
            next: 0,
            active: false,
        }
    }

    /// Index of the next replica to upgrade.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Advances the rollout by (at most) one shard.
    pub fn step(&mut self) -> RolloutStep {
        if !self.active {
            if self.fleet.rollout_active() {
                // Resume the rollout already overlaying this fleet
                // (e.g. a re-POST after a pause): keep the pins and
                // generation labels, and recover the position as the
                // first shard not yet verified onto the new generation.
                // Restarting here would relabel upgraded replicas Old
                // and clear the pin set — an epoch regression for every
                // user already served by the new model.
                self.next = self
                    .fleet
                    .replicas()
                    .iter()
                    .position(|r| r.generation() != Generation::New)
                    .unwrap_or(self.fleet.len());
            } else {
                self.fleet.begin_rollout();
                self.next = 0;
            }
            self.active = true;
        }
        if self.next >= self.fleet.len() {
            self.fleet.finish_rollout();
            self.active = false;
            return RolloutStep::Done;
        }
        let replica = &self.fleet.replicas()[self.next];
        let id = replica.id;
        if !replica.healthy() {
            // Upgrading through a dead shard would leave its reload
            // state unknowable; wait for it to rejoin.
            return RolloutStep::Paused {
                replica: id,
                reason: "replica down".into(),
            };
        }
        replica.set_generation(Generation::InFlight);
        match self.reload_and_verify(replica.addr()) {
            Ok((epoch, format)) => {
                replica.last_epoch.store(epoch, Ordering::Release);
                replica.set_last_format(format);
                replica.set_generation(Generation::New);
                self.next += 1;
                RolloutStep::Upgraded { replica: id, epoch }
            }
            Err(reason) => {
                // Stay InFlight: the shard's serving state is unverified,
                // so its users remain diverted to the old generation.
                RolloutStep::Paused {
                    replica: id,
                    reason,
                }
            }
        }
    }

    /// Steps until the rollout completes or pauses.
    pub fn run(&mut self) -> RolloutReport {
        let mut upgraded = Vec::new();
        loop {
            match self.step() {
                RolloutStep::Upgraded { replica, epoch } => upgraded.push((replica, epoch)),
                RolloutStep::Paused { replica, reason } => {
                    return RolloutReport {
                        completed: false,
                        upgraded,
                        paused: Some((replica, reason)),
                    }
                }
                RolloutStep::Done => {
                    return RolloutReport {
                        completed: true,
                        upgraded,
                        paused: None,
                    }
                }
            }
        }
    }

    /// Abandons the rollout, clearing diversion and pins. Upgraded
    /// replicas keep serving whatever they reloaded (epochs only move
    /// forward); only the routing overlay is dropped.
    pub fn abort(&mut self) {
        if self.active {
            self.fleet.finish_rollout();
            self.active = false;
        }
    }

    fn rpc_timeout(&self) -> Duration {
        self.config.rpc_timeout.unwrap_or(Duration::from_secs(30))
    }

    /// Issues the reload RPC and cross-checks the reported outcome
    /// against the replica's own `/metrics` gauges.
    fn reload_and_verify(&self, addr: SocketAddr) -> Result<(u64, StorageEncoding), String> {
        let timeout = self.rpc_timeout();
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))
            .map_err(|e| format!("reload connect failed: {e}"))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("reload socket setup failed: {e}"))?;
        let mut client = HttpClient::from_stream(stream)
            .map_err(|e| format!("reload socket setup failed: {e}"))?;
        let resp = client
            .post("/admin/reload")
            .map_err(|e| format!("reload rpc failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!("reload returned {}: {}", resp.status, resp.body));
        }
        let epoch = parse_u64_field(&resp.body, "\"model_epoch\":")
            .ok_or_else(|| format!("reload body missing model_epoch: {}", resp.body))?;
        let format = parse_string_field(&resp.body, "\"snapshot_format\":\"")
            .and_then(|s| s.parse::<StorageEncoding>().ok())
            .ok_or_else(|| format!("reload body missing snapshot_format: {}", resp.body))?;
        if let Some(expect) = self.config.expect_format {
            if format != expect {
                return Err(format!(
                    "snapshot format mismatch: reloaded {format}, expected {expect}"
                ));
            }
        }
        // Independent verification: what the replica *reports serving*
        // must match what the reload claimed to install.
        let scrape = crate::fleet::probe_metrics(addr, timeout)
            .ok_or_else(|| "verification scrape failed".to_string())?;
        if scrape.epoch != epoch {
            return Err(format!(
                "epoch gauge {} does not match reloaded epoch {epoch}",
                scrape.epoch
            ));
        }
        if scrape.format != Some(format) {
            return Err(format!(
                "format gauge {:?} does not match reloaded format {format}",
                scrape.format.map(|f| f.to_string())
            ));
        }
        Ok((epoch, format))
    }
}

/// Parses the integer right after `key` in a flat JSON body.
pub fn parse_u64_field(body: &str, key: &str) -> Option<u64> {
    let start = body.find(key)? + key.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the string right after `key` (which must include the opening
/// quote) in a flat JSON body.
pub fn parse_string_field<'b>(body: &'b str, key: &str) -> Option<&'b str> {
    let start = body.find(key)? + key.len();
    let rest = &body[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::ring::RouteKey;

    #[test]
    fn fresh_driver_resumes_paused_rollout_without_resetting_state() {
        // Nothing listens on port 1: any reload attempt fails fast, so
        // this exercises only the position/state logic.
        let addrs: Vec<SocketAddr> = (0..3).map(|_| "127.0.0.1:1".parse().unwrap()).collect();
        let fleet = Fleet::new(&addrs, FleetConfig::default());

        // An earlier driver (a previous /admin/reload) upgraded shard 0,
        // pinned one of its users to the new generation, and paused.
        fleet.begin_rollout();
        fleet.replica(ReplicaId(0)).set_generation(Generation::New);
        fleet.note_served(RouteKey::User(7), ReplicaId(0));
        assert_eq!(fleet.pinned_count(), 1);

        // A fresh driver (the re-POST) must resume at shard 1, not
        // restart: shard 0 stays New and the pin survives.
        let mut driver = RolloutDriver::new(&fleet, RolloutConfig::default());
        match driver.step() {
            RolloutStep::Paused { replica, .. } => assert_eq!(replica, ReplicaId(1)),
            other => panic!("expected pause at shard 1, got {other:?}"),
        }
        assert_eq!(driver.position(), 1);
        assert_eq!(fleet.replica(ReplicaId(0)).generation(), Generation::New);
        assert_eq!(fleet.pinned_count(), 1, "resume must not clear pins");
        assert!(fleet.rollout_active());

        // Once every shard is verified New, a fresh driver just closes
        // out the rollout.
        for r in fleet.replicas() {
            r.set_generation(Generation::New);
        }
        let mut closer = RolloutDriver::new(&fleet, RolloutConfig::default());
        assert_eq!(closer.step(), RolloutStep::Done);
        assert!(!fleet.rollout_active());
        assert_eq!(fleet.pinned_count(), 0);
    }

    #[test]
    fn parses_reload_body_fields() {
        let body = "{\"reloaded\":true,\"model_epoch\":3,\"snapshot_format\":\"f16\",\
                    \"snapshot_bytes\":4096,\"snapshot_mapped\":true}";
        assert_eq!(parse_u64_field(body, "\"model_epoch\":"), Some(3));
        assert_eq!(
            parse_string_field(body, "\"snapshot_format\":\""),
            Some("f16")
        );
        assert_eq!(parse_u64_field(body, "\"missing\":"), None);
    }

    #[test]
    fn report_renders_json() {
        let report = RolloutReport {
            completed: false,
            upgraded: vec![(ReplicaId(0), 2)],
            paused: Some((ReplicaId(1), "replica down".into())),
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"completed\":false,\"upgraded\":[{\"replica\":0,\"model_epoch\":2}],\
             \"paused\":{\"replica\":1,\"reason\":\"replica down\"}}"
        );
    }
}
