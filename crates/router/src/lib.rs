//! # st-router
//!
//! The horizontally sharded serving front tier: a std-only HTTP/1.1
//! reverse proxy that consistent-hashes users (or cities) across a
//! fleet of `st-serve` replicas, with health-checked membership,
//! per-replica circuit breakers, and a rolling snapshot-rollout driver
//! that upgrades replicas one at a time without ever serving mixed
//! model generations to a single user.
//!
//! Five layers:
//!
//! - [`ring`] — a deterministic consistent-hash ring with virtual
//!   nodes; key ownership is a pure function of the configured fleet,
//!   and losing a replica remaps only its own keys (≤ ~1/N).
//! - [`breaker`] — clock-free per-replica circuit breakers (closed →
//!   open on consecutive failures → half-open probe → closed), the
//!   PR 5 shed/degrade philosophy applied across the fleet: a dark
//!   shard answers `503` + `Retry-After` instead of thrashing caches
//!   by failing over.
//! - [`fleet`] — membership (probe-driven health via each replica's
//!   `/metrics`), routing policy, and the rollout pinning rules that
//!   keep per-user model epochs monotone.
//! - [`rollout`] — the resumable rolling-upgrade state machine:
//!   divert → reload → verify (epoch gauge + snapshot-format one-hot)
//!   → admit; failures pause the rollout at the unverified shard.
//! - [`proxy`] — the HTTP server: byte-faithful relay (hop-by-hop
//!   headers stripped, `X-Router-Replica` stamped), per-worker backend
//!   connection pools, `st_router_*` metrics ([`metrics`]).
//!
//! [`fault`] provides the seeded [`fault::FleetFaultPlan`] schedules the
//! fleet-chaos suite and `loadgen --fleet` replay bit-reproducibly.

#![warn(missing_docs)]

pub mod breaker;
pub mod fault;
pub mod fleet;
pub mod metrics;
pub mod proxy;
pub mod ring;
pub mod rollout;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use fault::{FleetChaosPhase, FleetFaultPlan};
pub use fleet::{Fleet, FleetConfig, Generation, Replica, RouteError};
pub use metrics::RouterMetrics;
pub use proxy::{Router, RouterConfig, RouterServer};
pub use ring::{HashRing, PartitionMode, ReplicaId, RouteKey};
pub use rollout::{RolloutConfig, RolloutDriver, RolloutReport, RolloutStep};
