//! The router HTTP front tier: a std-only HTTP/1.1 reverse proxy.
//!
//! `GET /recommend` is consistent-hashed onto the replica fleet and
//! relayed *byte-faithfully*: the backend's status line, headers, and
//! body are forwarded verbatim minus hop-by-hop headers, plus an
//! `X-Router-Replica` header naming the shard that answered. Backend
//! connections are pooled per worker thread and kept alive; a stale
//! pooled connection is silently replaced (one retry on a fresh socket)
//! so backend idle timeouts never surface as client errors — only a
//! fresh-connection failure counts against the shard's breaker.
//!
//! The router's own routes:
//!
//! - `GET /healthz` — fleet summary (replicas up / total, rollout flag).
//! - `GET /metrics` — `st_router_*` exposition.
//! - `POST /admin/probe` — one synchronous health sweep of the fleet.
//! - `POST /admin/reload` — runs the rolling rollout across the fleet
//!   (`?format=f32|f16|int8` pins the expected snapshot format); the
//!   fleet acts as one logical server behind this endpoint.

use crate::fleet::{Fleet, RouteError};
use crate::metrics::RouterMetrics;
use crate::ring::{PartitionMode, ReplicaId, RouteKey};
use crate::rollout::{RolloutConfig, RolloutDriver};
use st_serve::http::{read_request, ParseError, Request, Response};
use st_tensor::StorageEncoding;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// HTTP worker threads (each holds its own backend connection pool).
    pub workers: usize,
    /// Keep-alive idle timeout on client connections.
    pub idle_timeout: Duration,
    /// Backend connect timeout.
    pub connect_timeout: Duration,
    /// Backend read timeout — generous, because an overloaded replica
    /// answers via its own deadline machinery (503 deadline-exceeded)
    /// and the router must relay that rather than racing it.
    pub read_timeout: Duration,
    /// `Retry-After` value on shed responses, seconds.
    pub retry_after_secs: u32,
    /// Background health-probe interval; `None` disables the probe
    /// thread (tests and the chaos harness drive probes explicitly).
    pub probe_interval: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            idle_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            probe_interval: None,
        }
    }
}

/// A raw backend response: everything needed to relay it byte-faithfully.
#[derive(Debug)]
pub struct RawResponse {
    /// Status line without CRLF, e.g. `HTTP/1.1 200 OK`.
    pub status_line: String,
    /// Header lines exactly as received (original casing), without CRLF.
    pub headers: Vec<String>,
    /// Parsed status code.
    pub status: u16,
    /// Body bytes (per `Content-Length`).
    pub body: Vec<u8>,
}

impl RawResponse {
    /// First header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }
}

/// Headers that describe one hop, never forwarded by a proxy.
fn is_hop_by_hop(header_line: &str) -> bool {
    let name = header_line
        .split_once(':')
        .map(|(k, _)| k.trim())
        .unwrap_or("");
    [
        "connection",
        "keep-alive",
        "proxy-authenticate",
        "proxy-authorization",
        "te",
        "trailer",
        "transfer-encoding",
        "upgrade",
    ]
    .iter()
    .any(|h| name.eq_ignore_ascii_case(h))
}

/// One pooled keep-alive connection to a backend replica.
struct BackendConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl BackendConn {
    fn connect(addr: SocketAddr, config: &RouterConfig) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
        })
    }

    /// One request/response round trip, keeping the raw response bytes.
    fn roundtrip(&mut self, method: &str, target: &str) -> std::io::Result<RawResponse> {
        write!(
            self.writer,
            "{method} {target} HTTP/1.1\r\nHost: st-router\r\n\r\n"
        )?;
        self.writer.flush()?;
        read_raw_response(&mut self.reader)
    }
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads one response preserving the exact status and header lines.
///
/// Only `Content-Length` framing is supported; a response that carries
/// `Transfer-Encoding` or omits `Content-Length` (outside the bodiless
/// 1xx/204/304 statuses) is an error. Erroring — rather than guessing a
/// length of zero — matters for the connection pool: unread body bytes
/// left in a pooled keep-alive connection would desynchronize every
/// later response on it, and `forward` never pools a failed connection.
fn read_raw_response<R: BufRead>(reader: &mut R) -> std::io::Result<RawResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(invalid("connection closed before response"));
    }
    let status_line = status_line.trim_end().to_string();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("EOF inside response headers"));
        }
        let line = line.trim_end().to_string();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| invalid("bad content-length"))?,
                );
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(invalid("transfer-encoding framing not supported"));
            }
        }
        headers.push(line);
    }
    let content_length = match content_length {
        Some(n) => n,
        None if status == 204 || status == 304 || (100..200).contains(&status) => 0,
        None => return Err(invalid("response without content-length")),
    };
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(RawResponse {
        status_line,
        headers,
        status,
        body,
    })
}

/// Per-worker backend connection pool, keyed by replica index. The
/// stored address detects rejoin-at-new-port and drops the old socket.
type ConnPool = HashMap<usize, (SocketAddr, BackendConn)>;

/// What one handled request produces: a router-authored response or a
/// byte-faithful relay from a replica.
enum Outcome {
    Own(Response),
    Relay(RawResponse, ReplicaId),
}

impl Outcome {
    fn status(&self) -> u16 {
        match self {
            Outcome::Own(r) => r.status,
            Outcome::Relay(raw, _) => raw.status,
        }
    }
}

/// The routing engine shared by all router workers.
pub struct Router {
    /// Fleet membership + routing state.
    pub fleet: Arc<Fleet>,
    /// Router-tier counters.
    pub metrics: Arc<RouterMetrics>,
    config: RouterConfig,
    /// Serializes rolling rollouts; `try_lock` failure means one is
    /// already running and the request gets `409`.
    rollout_lock: Mutex<()>,
}

impl Router {
    /// A router over `fleet` under `config`.
    pub fn new(fleet: Arc<Fleet>, config: RouterConfig) -> Arc<Self> {
        Arc::new(Self {
            fleet,
            metrics: Arc::new(RouterMetrics::new()),
            config,
            rollout_lock: Mutex::new(()),
        })
    }

    /// The router config.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    fn shed(&self, status: u16, message: &str) -> Response {
        Response::error(status, message)
            .with_header("Retry-After", &self.config.retry_after_secs.to_string())
    }

    fn handle(&self, req: &Request, pool: &mut ConnPool) -> Outcome {
        self.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/recommend") => self.handle_proxy(req, pool),
            ("GET", "/healthz") => Outcome::Own(Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"replicas\":{},\"healthy\":{},\"rollout_active\":{}}}",
                    self.fleet.len(),
                    self.fleet.healthy_count(),
                    self.fleet.rollout_active()
                ),
            )),
            ("GET", "/metrics") => {
                Outcome::Own(Response::text(200, self.metrics.render(&self.fleet)))
            }
            ("POST", "/admin/probe") => {
                let healthy = self.fleet.probe_all();
                Outcome::Own(Response::json(
                    200,
                    format!(
                        "{{\"healthy\":{healthy},\"replicas\":{}}}",
                        self.fleet.len()
                    ),
                ))
            }
            ("POST", "/admin/reload") => Outcome::Own(self.handle_rollout(req)),
            (_, "/recommend")
            | (_, "/healthz")
            | (_, "/metrics")
            | (_, "/admin/probe")
            | (_, "/admin/reload") => Outcome::Own(Response::error(405, "method not allowed")),
            _ => Outcome::Own(Response::error(404, &format!("no route for {}", req.path))),
        }
    }

    /// Extracts the routing key per the fleet's partition mode. The
    /// router validates only the key parameter; everything else is the
    /// backend's to judge (and relay back).
    fn route_key(&self, req: &Request) -> Result<RouteKey, Response> {
        match self.fleet.config.partition {
            PartitionMode::ByUser => match req.query_param("user").map(str::parse::<u32>) {
                Some(Ok(u)) => Ok(RouteKey::User(u)),
                Some(Err(_)) => Err(Response::error(400, "user must be a non-negative integer")),
                None => Err(Response::error(400, "missing query parameter: user")),
            },
            PartitionMode::ByCity => match req.query_param("city").map(str::parse::<u16>) {
                Some(Ok(c)) => Ok(RouteKey::City(c)),
                Some(Err(_)) => Err(Response::error(400, "city must be a non-negative integer")),
                None => Err(Response::error(400, "missing query parameter: city")),
            },
        }
    }

    fn handle_proxy(&self, req: &Request, pool: &mut ConnPool) -> Outcome {
        self.metrics
            .recommend_requests
            .fetch_add(1, Ordering::Relaxed);
        let key = match self.route_key(req) {
            Ok(key) => key,
            Err(resp) => return Outcome::Own(resp),
        };
        let now = Instant::now();
        let decision = match self.fleet.route(key, now) {
            Ok(d) => d,
            Err(RouteError::NoReplica) => {
                self.metrics
                    .unroutable_total
                    .fetch_add(1, Ordering::Relaxed);
                return Outcome::Own(self.shed(503, "no healthy replica for shard"));
            }
            Err(RouteError::ShardDark(id)) => {
                self.metrics.dark_total.fetch_add(1, Ordering::Relaxed);
                return Outcome::Own(
                    self.shed(503, &format!("shard {id} dark: circuit open, retry later")),
                );
            }
            Err(RouteError::EpochPinned) => {
                self.metrics.pin_total.fetch_add(1, Ordering::Relaxed);
                return Outcome::Own(self.shed(
                    503,
                    "shard behind this user's model generation, retry later",
                ));
            }
        };
        let replica = &self.fleet.replicas()[decision.replica];
        let id = replica.id;
        match self.forward(pool, decision.replica, replica.addr(), &req.target) {
            Ok(raw) => {
                replica.forwarded_total.fetch_add(1, Ordering::Relaxed);
                self.metrics.forwarded_total.fetch_add(1, Ordering::Relaxed);
                if decision.remapped {
                    self.metrics.remapped_total.fetch_add(1, Ordering::Relaxed);
                }
                // Backend 5xx counts against the breaker (the shard is
                // failing); 429/4xx are the backend's own flow control.
                // A 503 carrying Retry-After is a *deliberate* shed
                // (st-serve's deadline machinery protecting itself, the
                // same contract as its 429): the replica is alive and
                // answering, so relay it without darkening the shard —
                // three overload sheds must not convert a transient
                // spike into a cooldown-long outage.
                let deliberate_shed = raw.status == 503 && raw.header("retry-after").is_some();
                if raw.status >= 500 && !deliberate_shed {
                    replica.breaker.record_failure(Instant::now());
                } else {
                    replica.breaker.record_success();
                }
                if raw.status == 200 {
                    if let Some(epoch) = raw.header("x-model-epoch").and_then(|v| v.parse().ok()) {
                        replica.last_epoch.store(epoch, Ordering::Release);
                    }
                    self.fleet.note_served(key, id);
                }
                Outcome::Relay(raw, id)
            }
            Err(_) => {
                self.metrics
                    .forward_errors_total
                    .fetch_add(1, Ordering::Relaxed);
                replica.breaker.record_failure(Instant::now());
                Outcome::Own(self.shed(503, &format!("shard {id} unreachable, retry later")))
            }
        }
    }

    /// Forwards one request, transparently replacing a stale pooled
    /// connection. Only a fresh-connection failure propagates.
    fn forward(
        &self,
        pool: &mut ConnPool,
        idx: usize,
        addr: SocketAddr,
        target: &str,
    ) -> std::io::Result<RawResponse> {
        if let Some((pooled_addr, conn)) = pool.get_mut(&idx) {
            if *pooled_addr == addr {
                match conn.roundtrip("GET", target) {
                    Ok(raw) => return Ok(raw),
                    Err(_) => {
                        // Stale keep-alive (backend idled it out): retry
                        // once on a fresh socket before judging health.
                        self.metrics
                            .conn_retries_total
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            pool.remove(&idx);
        }
        let mut conn = BackendConn::connect(addr, &self.config)?;
        let raw = conn.roundtrip("GET", target)?;
        pool.insert(idx, (addr, conn));
        Ok(raw)
    }

    fn handle_rollout(&self, req: &Request) -> Response {
        let Ok(_guard) = self.rollout_lock.try_lock() else {
            return Response::error(409, "rollout already in progress");
        };
        let expect_format = match req.query_param("format") {
            None => None,
            Some(s) => match s.parse::<StorageEncoding>() {
                Ok(f) => Some(f),
                Err(_) => return Response::error(400, &format!("unknown snapshot format {s:?}")),
            },
        };
        // The driver is per-request, but the rollout's position lives on
        // the fleet: when one is already active this POST *resumes* it
        // at the blocking shard, preserving pins and generation labels.
        if self.fleet.rollout_active() {
            self.metrics
                .rollouts_resumed
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics
                .rollouts_started
                .fetch_add(1, Ordering::Relaxed);
        }
        let mut driver = RolloutDriver::new(
            &self.fleet,
            RolloutConfig {
                expect_format,
                rpc_timeout: Some(self.config.read_timeout),
            },
        );
        let report = driver.run();
        if report.completed {
            self.metrics
                .rollouts_completed
                .fetch_add(1, Ordering::Relaxed);
            Response::json(200, report.to_json())
        } else {
            self.metrics.rollouts_paused.fetch_add(1, Ordering::Relaxed);
            // The rollout holds position (diversion stays active);
            // re-POST once the blocking shard rejoins. 503 tells the
            // operator the fleet is not yet on the new snapshot.
            Response::json(503, report.to_json())
                .with_header("Retry-After", &self.config.retry_after_secs.to_string())
        }
    }
}

/// Writes a relayed backend response, filtering hop-by-hop headers and
/// stamping the answering shard.
fn write_relay<W: Write>(
    mut out: W,
    raw: &RawResponse,
    replica: ReplicaId,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(out, "{}\r\n", raw.status_line)?;
    for line in &raw.headers {
        if !is_hop_by_hop(line) {
            write!(out, "{line}\r\n")?;
        }
    }
    write!(out, "X-Router-Replica: {replica}\r\n")?;
    write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    out.write_all(&raw.body)?;
    out.flush()
}

/// A running router; dropping it (or [`RouterServer::shutdown`]) stops
/// the listener, workers, and probe thread.
pub struct RouterServer {
    addr: SocketAddr,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    conns: ConnRegistry,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    probe_handle: Option<std::thread::JoinHandle<()>>,
}

/// Live client connections keyed by accept order, so shutdown can
/// force-close a blocked keep-alive read instead of waiting out its
/// idle timeout.
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

impl RouterServer {
    /// Binds and starts routing for `router`.
    pub fn start(router: Arc<Router>) -> std::io::Result<RouterServer> {
        let config = router.config().clone();
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad addr")
            })?)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = conn_rx.clone();
            let router = router.clone();
            let registry = conns.clone();
            let idle = config.idle_timeout;
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("st-router-worker-{i}"))
                    .spawn(move || {
                        // The backend pool lives as long as the worker:
                        // keep-alive reuse across client connections.
                        let mut pool = ConnPool::new();
                        loop {
                            let conn = rx.lock().expect("conn rx poisoned").recv();
                            match conn {
                                Ok((conn_id, stream)) => {
                                    handle_connection(&router, stream, idle, &mut pool);
                                    registry
                                        .lock()
                                        .expect("conn registry poisoned")
                                        .remove(&conn_id);
                                }
                                Err(_) => return,
                            }
                        }
                    })
                    .expect("spawn router worker"),
            );
        }

        let accept_stop = stop.clone();
        let accept_conns = conns.clone();
        let accept_handle = std::thread::Builder::new()
            .name("st-router-accept".into())
            .spawn(move || {
                let mut next_id = 0u64;
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let conn_id = next_id;
                            next_id += 1;
                            if let Ok(clone) = stream.try_clone() {
                                accept_conns
                                    .lock()
                                    .expect("conn registry poisoned")
                                    .insert(conn_id, clone);
                            }
                            if conn_tx.send((conn_id, stream)).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
            .expect("spawn router accept thread");

        let probe_handle = config.probe_interval.map(|interval| {
            let router = router.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("st-router-probe".into())
                .spawn(move || {
                    // Probe immediately so the fleet starts with real
                    // health/epoch data, then on the interval. The wait
                    // is sliced so shutdown joins this thread promptly
                    // instead of blocking up to a full probe interval.
                    router.fleet.probe_all();
                    let slice = Duration::from_millis(25).min(interval);
                    'probe: loop {
                        let mut waited = Duration::ZERO;
                        while waited < interval {
                            if stop.load(Ordering::Acquire) {
                                break 'probe;
                            }
                            std::thread::sleep(slice);
                            waited += slice;
                        }
                        router.fleet.probe_all();
                    }
                })
                .expect("spawn router probe thread")
        });

        Ok(RouterServer {
            addr,
            router,
            stop,
            conns,
            accept_handle: Some(accept_handle),
            worker_handles,
            probe_handle,
        })
    }

    /// The bound address (use this to learn an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing engine behind this server.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Blocks the calling thread until the router stops.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Force-close live keep-alive connections so blocked worker
        // reads fail now rather than at their idle timeout.
        for (_, stream) in self.conns.lock().expect("conn registry poisoned").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.probe_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Serves one client connection: keep-alive request loop with relay.
fn handle_connection(
    router: &Router,
    stream: TcpStream,
    idle_timeout: Duration,
    pool: &mut ConnPool,
) {
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let outcome = router.handle(&req, pool);
                router.metrics.record_status(outcome.status());
                let keep_alive = !req.wants_close();
                let ok = match &outcome {
                    Outcome::Own(resp) => resp.write_to(&mut writer, keep_alive).is_ok(),
                    Outcome::Relay(raw, id) => {
                        write_relay(&mut writer, raw, *id, keep_alive).is_ok()
                    }
                };
                if !ok || !keep_alive {
                    return;
                }
            }
            Err(ParseError::Malformed(msg)) => {
                let response = Response::error(400, &msg);
                router.metrics.record_status(400);
                let _ = response.write_to(&mut writer, false);
                return;
            }
            Err(ParseError::Io(_)) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_by_hop_filter() {
        assert!(is_hop_by_hop("Connection: keep-alive"));
        assert!(is_hop_by_hop("transfer-encoding: chunked"));
        assert!(!is_hop_by_hop("Content-Type: application/json"));
        assert!(!is_hop_by_hop("X-Cache: HIT"));
    }

    #[test]
    fn unframeable_responses_are_rejected_not_guessed() {
        // Chunked framing would leave the chunk bytes unread in a pooled
        // connection; the reader must refuse it outright.
        let chunked = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n2\r\n{}\r\n0\r\n\r\n";
        let err = read_raw_response(&mut BufReader::new(&chunked[..])).unwrap_err();
        assert!(err.to_string().contains("transfer-encoding"), "{err}");

        // Same for a close-delimited body (no Content-Length at all).
        let unframed = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello";
        let err = read_raw_response(&mut BufReader::new(&unframed[..])).unwrap_err();
        assert!(err.to_string().contains("content-length"), "{err}");

        // Bodiless statuses may legitimately omit the header.
        let no_content = b"HTTP/1.1 204 No Content\r\n\r\n";
        let raw = read_raw_response(&mut BufReader::new(&no_content[..])).unwrap();
        assert_eq!(raw.status, 204);
        assert!(raw.body.is_empty());
    }

    #[test]
    fn raw_response_roundtrip_parsing() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\nX-Cache: MISS\r\n\r\n{}";
        let raw = read_raw_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(raw.status, 200);
        assert_eq!(raw.status_line, "HTTP/1.1 200 OK");
        assert_eq!(raw.body, b"{}");
        assert_eq!(raw.header("x-cache"), Some("MISS"));
        assert_eq!(raw.header("content-type"), Some("application/json"));

        let mut out = Vec::new();
        write_relay(&mut out, &raw, ReplicaId(1), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("X-Router-Replica: 1\r\n"));
        // The backend's Connection header is replaced, not relayed.
        assert_eq!(text.matches("Connection:").count(), 1);
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
