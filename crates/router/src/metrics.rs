//! Router-tier metrics in the same plain-text exposition style as
//! `st-serve`'s `/metrics`, under the `st_router_` prefix. Counters are
//! lock-free atomics; per-replica gauges (health, breaker state, epoch,
//! generation) are read live from the [`Fleet`](crate::fleet::Fleet) at
//! render time so the exposition can never drift from routing reality.

use crate::breaker::BreakerState;
use crate::fleet::{Fleet, Generation};
use std::fmt::Write;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Router request/forward counters.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// All requests handled (any route).
    pub requests_total: AtomicU64,
    /// `GET /recommend` requests.
    pub recommend_requests: AtomicU64,
    /// Requests forwarded to a replica (includes breaker probes).
    pub forwarded_total: AtomicU64,
    /// Forwards that landed on a replica other than the key's static
    /// ring owner (health remap or rollout diversion).
    pub remapped_total: AtomicU64,
    /// 503s shed because the shard's breaker was open.
    pub dark_total: AtomicU64,
    /// 503s shed to protect a user's epoch pin during a rollout.
    pub pin_total: AtomicU64,
    /// 503s with no eligible replica at all.
    pub unroutable_total: AtomicU64,
    /// Forwards that failed at the transport layer (counted toward the
    /// target's breaker).
    pub forward_errors_total: AtomicU64,
    /// Stale pooled backend connections silently replaced (not failures).
    pub conn_retries_total: AtomicU64,
    /// Rolling rollouts started fresh.
    pub rollouts_started: AtomicU64,
    /// Reload POSTs that resumed an already-active (paused) rollout.
    pub rollouts_resumed: AtomicU64,
    /// Rollouts that upgraded every replica.
    pub rollouts_completed: AtomicU64,
    /// Rollout steps that paused (replica down or verify failed).
    pub rollouts_paused: AtomicU64,
    /// Responses by status class: `[2xx, 4xx, 5xx]`.
    pub responses: [AtomicU64; 3],
}

impl RouterMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies one response status.
    pub fn record_status(&self, status: u16) {
        let idx = match status {
            200..=299 => 0,
            400..=499 => 1,
            _ => 2,
        };
        self.responses[idx].fetch_add(1, Relaxed);
    }

    /// Renders the exposition, joining counters with live fleet gauges.
    pub fn render(&self, fleet: &Fleet) -> String {
        let mut out = String::with_capacity(2048);
        let counters: [(&str, &AtomicU64); 13] = [
            ("st_router_requests_total", &self.requests_total),
            (
                "st_router_recommend_requests_total",
                &self.recommend_requests,
            ),
            ("st_router_forwarded_total", &self.forwarded_total),
            ("st_router_remapped_total", &self.remapped_total),
            ("st_router_dark_shard_503_total", &self.dark_total),
            ("st_router_epoch_pin_503_total", &self.pin_total),
            ("st_router_unroutable_503_total", &self.unroutable_total),
            ("st_router_forward_errors_total", &self.forward_errors_total),
            ("st_router_conn_retries_total", &self.conn_retries_total),
            ("st_router_rollouts_started_total", &self.rollouts_started),
            ("st_router_rollouts_resumed_total", &self.rollouts_resumed),
            (
                "st_router_rollouts_completed_total",
                &self.rollouts_completed,
            ),
            ("st_router_rollouts_paused_total", &self.rollouts_paused),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "{name} {}", v.load(Relaxed));
        }
        for (class, v) in ["2xx", "4xx", "5xx"].iter().zip(&self.responses) {
            let _ = writeln!(
                out,
                "st_router_responses_total{{class=\"{class}\"}} {}",
                v.load(Relaxed)
            );
        }
        let _ = writeln!(out, "st_router_replicas_total {}", fleet.len());
        let _ = writeln!(out, "st_router_replicas_healthy {}", fleet.healthy_count());
        let _ = writeln!(
            out,
            "st_router_rollout_active {}",
            u64::from(fleet.rollout_active())
        );
        let _ = writeln!(out, "st_router_pinned_keys {}", fleet.pinned_count());
        let (mut opened, mut half_opened, mut closed) = (0u64, 0u64, 0u64);
        for r in fleet.replicas() {
            let id = r.id;
            let _ = writeln!(
                out,
                "st_router_replica_healthy{{replica=\"{id}\"}} {}",
                u64::from(r.healthy())
            );
            let state = match r.breaker.state() {
                BreakerState::Closed => 0u64,
                BreakerState::Open => 1,
                BreakerState::HalfOpen => 2,
            };
            let _ = writeln!(
                out,
                "st_router_replica_breaker_state{{replica=\"{id}\"}} {state}"
            );
            let _ = writeln!(
                out,
                "st_router_replica_model_epoch{{replica=\"{id}\"}} {}",
                r.last_epoch.load(Relaxed)
            );
            let generation = match r.generation() {
                Generation::Old => 0u64,
                Generation::InFlight => 1,
                Generation::New => 2,
            };
            let _ = writeln!(
                out,
                "st_router_replica_generation{{replica=\"{id}\"}} {generation}"
            );
            let _ = writeln!(
                out,
                "st_router_replica_forwarded_total{{replica=\"{id}\"}} {}",
                r.forwarded_total.load(Relaxed)
            );
            opened += r.breaker.opened_total.load(Relaxed);
            half_opened += r.breaker.half_opened_total.load(Relaxed);
            closed += r.breaker.closed_total.load(Relaxed);
        }
        let _ = writeln!(out, "st_router_breaker_opened_total {opened}");
        let _ = writeln!(out, "st_router_breaker_half_opened_total {half_opened}");
        let _ = writeln!(out, "st_router_breaker_closed_total {closed}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;

    #[test]
    fn render_includes_counters_and_per_replica_gauges() {
        let addrs: Vec<std::net::SocketAddr> = (0..2)
            .map(|i| format!("127.0.0.1:{}", 9100 + i).parse().unwrap())
            .collect();
        let fleet = Fleet::new(&addrs, FleetConfig::default());
        let m = RouterMetrics::new();
        m.requests_total.fetch_add(3, Relaxed);
        m.record_status(200);
        m.record_status(503);
        let text = m.render(&fleet);
        assert!(text.contains("st_router_requests_total 3"));
        assert!(text.contains("st_router_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("st_router_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("st_router_replicas_total 2"));
        assert!(text.contains("st_router_replicas_healthy 2"));
        assert!(text.contains("st_router_replica_healthy{replica=\"0\"} 1"));
        assert!(text.contains("st_router_replica_breaker_state{replica=\"1\"} 0"));
        assert!(text.contains("st_router_breaker_opened_total 0"));
    }
}
