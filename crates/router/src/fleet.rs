//! Fleet membership, health, and routing policy.
//!
//! A [`Fleet`] holds the configured replica set (addresses + per-replica
//! state: health flag, circuit breaker, last verified epoch/format,
//! rollout generation) plus the static consistent-hash [`HashRing`].
//! Routing walks the key's ring-successor order:
//!
//! - **Membership** (probe-driven health) removes dead replicas from
//!   consideration — their keys remap to the next healthy successor.
//! - **Breakers** do *not* remap: a breaker-open primary is a "dark
//!   shard" answered with `503` + `Retry-After`. Failing over on
//!   breaker state would thrash caches and, during a rollout, could
//!   bounce one user between model generations; shedding for one
//!   cooldown is the PR 5 answer one level up.
//! - **Rollouts** divert users of the in-flight replica to the next
//!   healthy *old-generation* successor until the swap is verified, and
//!   pin any user who has seen a new-generation response to new-only
//!   (a dark `503` beats an epoch regression).

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::ring::{HashRing, PartitionMode, ReplicaId, RouteKey};
use st_serve::HttpClient;
use st_tensor::StorageEncoding;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Rollout generation label for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// Serving the pre-rollout snapshot (also the steady-state label).
    Old,
    /// Reload issued but not yet verified: users diverted away.
    InFlight,
    /// Reload verified: serving the new snapshot.
    New,
}

impl Generation {
    fn from_u8(v: u8) -> Generation {
        match v {
            1 => Generation::InFlight,
            2 => Generation::New,
            _ => Generation::Old,
        }
    }
}

/// One configured backend replica.
#[derive(Debug)]
pub struct Replica {
    /// Stable fleet position; also the ring identity.
    pub id: ReplicaId,
    addr: Mutex<SocketAddr>,
    healthy: AtomicBool,
    probe_failures: AtomicU32,
    /// Per-replica circuit breaker.
    pub breaker: CircuitBreaker,
    /// Model epoch last verified via probe or reload (0 = unknown).
    pub last_epoch: AtomicU64,
    /// `StorageEncoding::code + 1` last verified (0 = unknown).
    last_format: AtomicU8,
    generation: AtomicU8,
    /// Requests forwarded to this replica.
    pub forwarded_total: AtomicU64,
}

impl Replica {
    fn new(id: ReplicaId, addr: SocketAddr, breaker: BreakerConfig) -> Self {
        Self {
            id,
            addr: Mutex::new(addr),
            healthy: AtomicBool::new(true),
            probe_failures: AtomicU32::new(0),
            breaker: CircuitBreaker::new(breaker),
            last_epoch: AtomicU64::new(0),
            last_format: AtomicU8::new(0),
            generation: AtomicU8::new(0),
            forwarded_total: AtomicU64::new(0),
        }
    }

    /// Current address (replicas may rejoin on a fresh port).
    pub fn addr(&self) -> SocketAddr {
        *self.addr.lock().unwrap()
    }

    /// Whether probes consider this replica alive.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Rollout generation label.
    pub fn generation(&self) -> Generation {
        Generation::from_u8(self.generation.load(Ordering::Acquire))
    }

    pub(crate) fn set_generation(&self, g: Generation) {
        let v = match g {
            Generation::Old => 0,
            Generation::InFlight => 1,
            Generation::New => 2,
        };
        self.generation.store(v, Ordering::Release);
    }

    /// Snapshot format last verified on this replica, if known.
    pub fn last_format(&self) -> Option<StorageEncoding> {
        match self.last_format.load(Ordering::Acquire) {
            0 => None,
            v => StorageEncoding::from_code(v - 1),
        }
    }

    pub(crate) fn set_last_format(&self, format: StorageEncoding) {
        self.last_format.store(format.code() + 1, Ordering::Release);
    }
}

/// Fleet tuning knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: u32,
    /// Request-to-key mapping.
    pub partition: PartitionMode,
    /// Per-replica breaker config.
    pub breaker: BreakerConfig,
    /// Consecutive failed probes before a replica is marked down.
    pub down_after: u32,
    /// Probe connect/read timeout.
    pub probe_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            vnodes: 128,
            partition: PartitionMode::ByUser,
            breaker: BreakerConfig::default(),
            down_after: 2,
            probe_timeout: Duration::from_millis(500),
        }
    }
}

/// Why a request could not be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No healthy replica is eligible for this key.
    NoReplica,
    /// The shard's breaker is open (or probing): shed, do not remap.
    ShardDark(ReplicaId),
    /// The user is pinned to the new generation but only old-generation
    /// replicas are reachable for their key; serving would mix epochs.
    EpochPinned,
}

/// A routing decision: which replica, and under what admission.
#[derive(Debug, Clone)]
pub struct RouteDecision {
    /// Target replica index into [`Fleet::replicas`].
    pub replica: usize,
    /// Breaker admission for this forward.
    pub admission: Admission,
    /// Whether the target differs from the key's static ring owner
    /// (health remap or rollout diversion).
    pub remapped: bool,
}

/// The replica set plus routing state.
pub struct Fleet {
    replicas: Vec<Replica>,
    ring: HashRing,
    /// Fleet config (public for the router and rollout driver).
    pub config: FleetConfig,
    rollout_active: AtomicBool,
    /// Key hashes that have been served a new-generation response during
    /// the active rollout; cleared when the rollout finishes.
    pins: Mutex<HashSet<u64>>,
}

impl Fleet {
    /// A fleet over `addrs`, ids assigned by position.
    pub fn new(addrs: &[SocketAddr], config: FleetConfig) -> Self {
        let replicas: Vec<Replica> = addrs
            .iter()
            .enumerate()
            .map(|(i, a)| Replica::new(ReplicaId(i as u16), *a, config.breaker))
            .collect();
        let ring = HashRing::with_members(replicas.len() as u16, config.vnodes);
        Self {
            replicas,
            ring,
            config,
            rollout_active: AtomicBool::new(false),
            pins: Mutex::new(HashSet::new()),
        }
    }

    /// All replicas in id order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Replica by id.
    pub fn replica(&self, id: ReplicaId) -> &Replica {
        &self.replicas[id.0 as usize]
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Count of probe-healthy replicas.
    pub fn healthy_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.healthy()).count()
    }

    /// Whether a rolling rollout is in progress.
    pub fn rollout_active(&self) -> bool {
        self.rollout_active.load(Ordering::Acquire)
    }

    /// The static ring owner for `key`, ignoring health — the anchor the
    /// `remapped` flag and the routing-stability tests compare against.
    pub fn static_owner(&self, key: RouteKey) -> Option<ReplicaId> {
        self.ring.assign(key.hash())
    }

    /// Re-points a replica id at a new address (rejoin after restart).
    /// Ring position is unchanged — identity is the id, not the socket.
    pub fn update_addr(&self, id: ReplicaId, addr: SocketAddr) {
        *self.replica(id).addr.lock().unwrap() = addr;
    }

    /// Decides where one request for `key` goes, at time `now`.
    pub fn route(&self, key: RouteKey, now: Instant) -> Result<RouteDecision, RouteError> {
        let hash = key.hash();
        let order = self.ring.successors(hash);
        let static_owner = order.first().copied();
        let rollout = self.rollout_active();

        // Primary = first healthy replica in ring order (membership
        // remap only; breaker state intentionally not consulted here).
        let mut primary: Option<ReplicaId> = None;
        for id in &order {
            if self.replica(*id).healthy() {
                primary = Some(*id);
                break;
            }
        }
        let primary = primary.ok_or(RouteError::NoReplica)?;

        let mut target = primary;
        if rollout {
            if self.replica(primary).generation() == Generation::InFlight {
                // Divert this shard's users to the old generation until
                // the swap is verified. If no old replica remains (last
                // shard of the rollout), stay put: the in-flight replica
                // is still serving, just not yet verified.
                let divert = order
                    .iter()
                    .copied()
                    .filter(|id| *id != primary)
                    .find(|id| {
                        let r = self.replica(*id);
                        r.healthy() && r.generation() == Generation::Old
                    });
                if let Some(old) = divert {
                    target = old;
                }
            }
            let pinned = self.pins.lock().unwrap().contains(&hash);
            if pinned && self.replica(target).generation() != Generation::New {
                // This user has seen the new model; never answer from
                // the old one. A bounded 503 beats an epoch regression.
                return Err(RouteError::EpochPinned);
            }
        }

        let replica = self.replica(target);
        match replica.breaker.admit(now) {
            Admission::Reject => Err(RouteError::ShardDark(target)),
            admission => Ok(RouteDecision {
                replica: target.0 as usize,
                admission,
                remapped: Some(target) != static_owner,
            }),
        }
    }

    /// Records that `key` was served by `replica` (post-forward): pins
    /// the user to the new generation if that is what answered.
    pub fn note_served(&self, key: RouteKey, replica: ReplicaId) {
        if self.rollout_active() && self.replica(replica).generation() == Generation::New {
            self.pins.lock().unwrap().insert(key.hash());
        }
    }

    /// Marks the start of a rolling rollout: every replica is labeled
    /// old-generation and the pin set is cleared.
    pub fn begin_rollout(&self) {
        for r in &self.replicas {
            r.set_generation(Generation::Old);
        }
        self.pins.lock().unwrap().clear();
        self.rollout_active.store(true, Ordering::Release);
    }

    /// Marks the end of a rollout: labels reset, pins dropped.
    pub fn finish_rollout(&self) {
        self.rollout_active.store(false, Ordering::Release);
        for r in &self.replicas {
            r.set_generation(Generation::Old);
        }
        self.pins.lock().unwrap().clear();
    }

    /// Number of keys currently pinned to the new generation.
    pub fn pinned_count(&self) -> usize {
        self.pins.lock().unwrap().len()
    }

    /// Probes one replica's `/metrics` endpoint. Success refreshes the
    /// verified epoch/format and (re)marks the replica healthy, resetting
    /// its breaker on a down→up transition; `down_after` consecutive
    /// failures mark it down.
    pub fn probe(&self, id: ReplicaId) -> bool {
        let replica = self.replica(id);
        let addr = replica.addr();
        let outcome = probe_metrics(addr, self.config.probe_timeout);
        match outcome {
            Some(scrape) => {
                replica.probe_failures.store(0, Ordering::Release);
                replica.last_epoch.store(scrape.epoch, Ordering::Release);
                if let Some(format) = scrape.format {
                    replica.set_last_format(format);
                }
                if !replica.healthy.swap(true, Ordering::AcqRel) {
                    // Rejoin: the breaker's failure history belongs to
                    // the dead incarnation.
                    replica.breaker.reset();
                }
                true
            }
            None => {
                let fails = replica.probe_failures.fetch_add(1, Ordering::AcqRel) + 1;
                if fails >= self.config.down_after {
                    replica.healthy.store(false, Ordering::Release);
                }
                false
            }
        }
    }

    /// Probes every replica once; returns the number of healthy ones.
    pub fn probe_all(&self) -> usize {
        for r in &self.replicas {
            self.probe(r.id);
        }
        self.healthy_count()
    }
}

/// What one `/metrics` probe learned.
pub struct MetricsScrape {
    /// `st_serve_model_epoch`.
    pub epoch: u64,
    /// The one-hot `st_serve_snapshot_format` label, if present.
    pub format: Option<StorageEncoding>,
}

/// Scrapes `st_serve_model_epoch` and the snapshot-format one-hot from a
/// replica's `/metrics`. `None` on any transport or parse failure.
pub fn probe_metrics(addr: SocketAddr, timeout: Duration) -> Option<MetricsScrape> {
    let stream = std::net::TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_nodelay(true).ok()?;
    let mut client = HttpClient::from_stream(stream).ok()?;
    let resp = client.get("/metrics").ok()?;
    if resp.status != 200 {
        return None;
    }
    parse_metrics_scrape(&resp.body)
}

/// Parses the epoch gauge and one-hot format family out of a metrics
/// exposition body.
pub fn parse_metrics_scrape(body: &str) -> Option<MetricsScrape> {
    let mut epoch = None;
    let mut format = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("st_serve_model_epoch ") {
            epoch = rest.trim().parse::<u64>().ok();
        } else if let Some(rest) = line.strip_prefix("st_serve_snapshot_format{format=\"") {
            if let Some((label, value)) = rest.split_once("\"} ") {
                if value.trim() == "1" {
                    format = label.parse::<StorageEncoding>().ok();
                }
            }
        }
    }
    Some(MetricsScrape {
        epoch: epoch?,
        format,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_fleet(n: usize) -> Fleet {
        let addrs: Vec<SocketAddr> = (0..n)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap())
            .collect();
        Fleet::new(&addrs, FleetConfig::default())
    }

    #[test]
    fn routes_to_static_owner_when_all_healthy() {
        let fleet = test_fleet(3);
        let now = Instant::now();
        for user in 0..50u32 {
            let key = RouteKey::User(user);
            let d = fleet.route(key, now).unwrap();
            assert!(!d.remapped);
            assert_eq!(
                ReplicaId(d.replica as u16),
                fleet.static_owner(key).unwrap()
            );
        }
    }

    #[test]
    fn unhealthy_owner_remaps_to_successor() {
        let fleet = test_fleet(3);
        let now = Instant::now();
        // Find a user owned by replica 1, then mark 1 down.
        let user = (0..1000u32)
            .find(|u| fleet.static_owner(RouteKey::User(*u)) == Some(ReplicaId(1)))
            .unwrap();
        fleet
            .replica(ReplicaId(1))
            .healthy
            .store(false, Ordering::Release);
        let d = fleet.route(RouteKey::User(user), now).unwrap();
        assert!(d.remapped);
        assert_ne!(d.replica, 1);
    }

    #[test]
    fn dark_shard_is_shed_not_remapped() {
        let fleet = test_fleet(3);
        let now = Instant::now();
        let user = (0..1000u32)
            .find(|u| fleet.static_owner(RouteKey::User(*u)) == Some(ReplicaId(0)))
            .unwrap();
        for _ in 0..fleet.config.breaker.failure_threshold {
            fleet.replica(ReplicaId(0)).breaker.record_failure(now);
        }
        let err = fleet.route(RouteKey::User(user), now).unwrap_err();
        assert_eq!(err, RouteError::ShardDark(ReplicaId(0)));
    }

    #[test]
    fn rollout_diverts_in_flight_shard_to_old_replica() {
        let fleet = test_fleet(3);
        let now = Instant::now();
        let user = (0..1000u32)
            .find(|u| fleet.static_owner(RouteKey::User(*u)) == Some(ReplicaId(2)))
            .unwrap();
        fleet.begin_rollout();
        fleet
            .replica(ReplicaId(2))
            .set_generation(Generation::InFlight);
        let d = fleet.route(RouteKey::User(user), now).unwrap();
        assert!(d.remapped);
        assert_eq!(
            fleet.replicas()[d.replica].generation(),
            Generation::Old,
            "diversion must land on the old generation"
        );
        fleet.finish_rollout();
        let d = fleet.route(RouteKey::User(user), now).unwrap();
        assert!(!d.remapped);
    }

    #[test]
    fn pinned_user_never_regresses_to_old_generation() {
        let fleet = test_fleet(2);
        let now = Instant::now();
        let user = (0..1000u32)
            .find(|u| fleet.static_owner(RouteKey::User(*u)) == Some(ReplicaId(0)))
            .unwrap();
        fleet.begin_rollout();
        fleet.replica(ReplicaId(0)).set_generation(Generation::New);
        fleet.note_served(RouteKey::User(user), ReplicaId(0));
        assert_eq!(fleet.pinned_count(), 1);
        // The upgraded replica dies; the only fallback is old-generation.
        fleet
            .replica(ReplicaId(0))
            .healthy
            .store(false, Ordering::Release);
        let err = fleet.route(RouteKey::User(user), now).unwrap_err();
        assert_eq!(err, RouteError::EpochPinned);
        fleet.finish_rollout();
        assert_eq!(fleet.pinned_count(), 0);
    }

    #[test]
    fn metrics_scrape_parses_epoch_and_format() {
        let body = "st_serve_requests_total 9\nst_serve_model_epoch 4\n\
                    st_serve_snapshot_format{format=\"f32\"} 0\n\
                    st_serve_snapshot_format{format=\"f16\"} 0\n\
                    st_serve_snapshot_format{format=\"int8\"} 1\n";
        let scrape = parse_metrics_scrape(body).unwrap();
        assert_eq!(scrape.epoch, 4);
        assert_eq!(scrape.format, Some(StorageEncoding::I8));
    }
}
