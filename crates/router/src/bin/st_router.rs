//! `st-router` — front a fleet of `st-serve` replicas.
//!
//! ```text
//! st-router --replica 127.0.0.1:8080 --replica 127.0.0.1:8081 \
//!           --addr 127.0.0.1:8070 --partition user
//! ```

use st_router::{
    BreakerConfig, Fleet, FleetConfig, PartitionMode, Router, RouterConfig, RouterServer,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
st-router: consistent-hash reverse proxy over st-serve replicas

USAGE:
    st-router --replica ADDR [--replica ADDR ...] [OPTIONS]

OPTIONS:
    --replica ADDR          backend replica address (repeatable, required)
    --addr ADDR             bind address [default: 127.0.0.1:8070]
    --partition user|city   routing key [default: user]
    --vnodes N              virtual nodes per replica [default: 128]
    --workers N             HTTP worker threads [default: 8]
    --breaker-threshold N   consecutive failures to open a breaker [default: 3]
    --breaker-cooldown-ms N open-breaker cooldown [default: 2000]
    --down-after N          failed probes before a replica is down [default: 2]
    --probe-interval-ms N   health-probe period, 0 disables [default: 1000]
    --retry-after SECS      Retry-After on shed responses [default: 1]
    -h, --help              print this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut replicas: Vec<SocketAddr> = Vec::new();
    let mut addr = "127.0.0.1:8070".to_string();
    let mut partition = PartitionMode::ByUser;
    let mut vnodes: u32 = 128;
    let mut workers: usize = 8;
    let mut breaker_threshold: u32 = 3;
    let mut breaker_cooldown_ms: u64 = 2_000;
    let mut down_after: u32 = 2;
    let mut probe_interval_ms: u64 = 1_000;
    let mut retry_after: u32 = 1;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg {
            "--replica" => {
                let v = value("--replica");
                match v.parse() {
                    Ok(a) => replicas.push(a),
                    Err(_) => fail(&format!("bad replica address {v:?}")),
                }
            }
            "--addr" => addr = value("--addr"),
            "--partition" => match value("--partition").parse() {
                Ok(p) => partition = p,
                Err(e) => fail(&e),
            },
            "--vnodes" => match value("--vnodes").parse() {
                Ok(n) => vnodes = n,
                Err(_) => fail("--vnodes must be an integer"),
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) => workers = n,
                Err(_) => fail("--workers must be an integer"),
            },
            "--breaker-threshold" => match value("--breaker-threshold").parse() {
                Ok(n) => breaker_threshold = n,
                Err(_) => fail("--breaker-threshold must be an integer"),
            },
            "--breaker-cooldown-ms" => match value("--breaker-cooldown-ms").parse() {
                Ok(n) => breaker_cooldown_ms = n,
                Err(_) => fail("--breaker-cooldown-ms must be an integer"),
            },
            "--down-after" => match value("--down-after").parse() {
                Ok(n) => down_after = n,
                Err(_) => fail("--down-after must be an integer"),
            },
            "--probe-interval-ms" => match value("--probe-interval-ms").parse() {
                Ok(n) => probe_interval_ms = n,
                Err(_) => fail("--probe-interval-ms must be an integer"),
            },
            "--retry-after" => match value("--retry-after").parse() {
                Ok(n) => retry_after = n,
                Err(_) => fail("--retry-after must be an integer"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if replicas.is_empty() {
        fail("at least one --replica is required");
    }

    let fleet = Arc::new(Fleet::new(
        &replicas,
        FleetConfig {
            vnodes,
            partition,
            breaker: BreakerConfig {
                failure_threshold: breaker_threshold,
                cooldown: Duration::from_millis(breaker_cooldown_ms),
            },
            down_after,
            probe_timeout: Duration::from_millis(500),
        },
    ));
    let router = Router::new(
        fleet,
        RouterConfig {
            addr,
            workers,
            retry_after_secs: retry_after,
            probe_interval: (probe_interval_ms > 0)
                .then(|| Duration::from_millis(probe_interval_ms)),
            ..RouterConfig::default()
        },
    );
    let server = match RouterServer::start(router) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start router: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "st-router on http://{} fronting {} replica(s)",
        server.local_addr(),
        replicas.len()
    );
    server.wait();
}
