//! Seed-reproducible fleet-level chaos schedules.
//!
//! Extends the PR 5 [`st_serve::FaultPlan`] idea one tier up: a
//! [`FleetFaultPlan`] expands a single `u64` seed into a sequence of
//! [`FleetChaosPhase`]s — replica kills, batcher hangs plus forced
//! scorer failures that trip breakers, and rolling reloads — with all
//! victims and request counts fixed by the seed. The fleet-chaos harness (in `st-bench`) executes
//! the phases single-threaded against an in-process fleet, so two runs
//! with the same seed must produce bit-identical count signatures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One phase of a fleet chaos schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetChaosPhase {
    /// Baseline traffic spread across every shard; all answers 200.
    Normal {
        /// Requests per replica's key space.
        per_shard: usize,
    },
    /// Kill one replica: its users see `503`s (fresh-connect failures,
    /// then breaker-open fast rejects) until probes mark it down and
    /// remap them to the ring successor; the replica then rejoins on a
    /// new port and traffic returns to it.
    ReplicaOutage {
        /// Which replica dies (index into the fleet).
        victim: u16,
        /// Requests sent into the dark window. Must exceed the breaker
        /// threshold so the open transition is observed.
        while_dark: usize,
        /// Requests after probes mark the victim down (served remapped).
        remapped: usize,
        /// Requests after the victim rejoins (served by it again).
        after: usize,
    },
    /// Freeze one replica's batcher so queued requests die of deadline
    /// expiry: the backend's Retry-After-stamped 503 sheds are relayed
    /// and must *not* trip the router breaker (deliberate flow control
    /// is breaker-exempt). The phase then forces scorer failures —
    /// genuine unexpected 5xx — on the same replica to trip the breaker,
    /// observes fast dark-shard rejects, forces half-open, and closes it
    /// with a successful probe request.
    HangBreaker {
        /// Which replica hangs (and then fails its scorer).
        victim: u16,
        /// Requests parked in the frozen queue (≥ breaker threshold,
        /// ≤ the harness queue capacity) — enough sheds that the old
        /// 5xx-counts-all accounting would have darkened the shard.
        hung: usize,
        /// Fast dark-shard rejects observed while the breaker is open.
        dark: usize,
    },
    /// Publish a new checkpoint and roll it across the fleet one replica
    /// at a time, interleaving traffic between steps; per-user epochs
    /// must be non-decreasing throughout.
    RollingReload {
        /// Requests per shard between rollout steps.
        per_shard: usize,
    },
}

/// A seeded fleet chaos schedule.
#[derive(Debug, Clone)]
pub struct FleetFaultPlan {
    /// The seed the phases were expanded from.
    pub seed: u64,
    /// Fleet size the plan was sized for.
    pub replicas: u16,
    /// Phases in execution order.
    pub phases: Vec<FleetChaosPhase>,
}

impl FleetFaultPlan {
    /// Expands `seed` into a schedule for a fleet of `replicas`. The
    /// plan covers every fault mode at least once, then appends
    /// `extra_phases` more drawn at random; victims, counts, and order
    /// are fully determined by the seed.
    ///
    /// `breaker_threshold` and `queue_capacity` bound phase parameters
    /// so every scheduled fault actually manifests: dark windows are
    /// long enough to trip breakers, hang phases fit in the victim's
    /// batcher queue.
    pub fn from_seed(
        seed: u64,
        replicas: u16,
        breaker_threshold: u32,
        queue_capacity: usize,
        extra_phases: usize,
    ) -> Self {
        assert!(replicas >= 2, "fleet chaos needs at least two replicas");
        assert!(
            queue_capacity >= breaker_threshold as usize,
            "hang phases must be able to trip the breaker within the queue"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let draw = |rng: &mut SmallRng, idx: usize| -> FleetChaosPhase {
            match idx {
                0 => FleetChaosPhase::Normal {
                    per_shard: rng.gen_range(2..=4),
                },
                1 => FleetChaosPhase::ReplicaOutage {
                    victim: rng.gen_range(0..replicas),
                    while_dark: rng.gen_range(
                        breaker_threshold as usize + 1
                            ..=queue_capacity.max(breaker_threshold as usize + 2),
                    ),
                    remapped: rng.gen_range(2..=4),
                    after: rng.gen_range(1..=3),
                },
                2 => FleetChaosPhase::HangBreaker {
                    victim: rng.gen_range(0..replicas),
                    hung: rng.gen_range(breaker_threshold as usize..=queue_capacity),
                    dark: rng.gen_range(1..=3),
                },
                _ => FleetChaosPhase::RollingReload {
                    per_shard: rng.gen_range(1..=2),
                },
            }
        };
        // One deck covering all four modes, in seed-shuffled order.
        let mut deck: Vec<usize> = (0..4).collect();
        for i in (1..deck.len()).rev() {
            let j = rng.gen_range(0..=i);
            deck.swap(i, j);
        }
        let mut phases: Vec<FleetChaosPhase> = Vec::with_capacity(4 + extra_phases + 1);
        for idx in deck {
            phases.push(draw(&mut rng, idx));
        }
        for _ in 0..extra_phases {
            let idx = rng.gen_range(0..4usize);
            phases.push(draw(&mut rng, idx));
        }
        // Always end on normal traffic: proves the fleet recovered.
        phases.push(FleetChaosPhase::Normal { per_shard: 2 });
        Self {
            seed,
            replicas,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FleetFaultPlan::from_seed(42, 3, 3, 6, 4);
        let b = FleetFaultPlan::from_seed(42, 3, 3, 6, 4);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.phases.len(), 4 + 4 + 1);
    }

    #[test]
    fn different_seeds_differ() {
        let plans: Vec<_> = (0..8u64)
            .map(|s| FleetFaultPlan::from_seed(s, 3, 3, 6, 4).phases)
            .collect();
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn covers_every_mode_and_bounds_parameters() {
        for seed in 0..16u64 {
            let plan = FleetFaultPlan::from_seed(seed, 4, 3, 6, 3);
            let (mut normal, mut outage, mut hang, mut reload) = (0, 0, 0, 0);
            for phase in &plan.phases {
                match *phase {
                    FleetChaosPhase::Normal { per_shard } => {
                        normal += 1;
                        assert!(per_shard >= 1);
                    }
                    FleetChaosPhase::ReplicaOutage {
                        victim, while_dark, ..
                    } => {
                        outage += 1;
                        assert!(victim < 4);
                        assert!(while_dark > 3, "dark window must trip the breaker");
                    }
                    FleetChaosPhase::HangBreaker { victim, hung, .. } => {
                        hang += 1;
                        assert!(victim < 4);
                        assert!((3..=6).contains(&hung));
                    }
                    FleetChaosPhase::RollingReload { per_shard } => {
                        reload += 1;
                        assert!(per_shard >= 1);
                    }
                }
            }
            assert!(normal >= 1 && outage >= 1 && hang >= 1 && reload >= 1);
        }
    }
}
