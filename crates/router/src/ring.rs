//! Deterministic consistent-hash ring with virtual nodes.
//!
//! The router partitions traffic by hashing a routing key (user id, or
//! city id in partition-by-city mode) onto a ring of hash points. Each
//! replica owns a fixed set of virtual nodes, so key ownership depends
//! only on the configured replica set — never on boot order or wall
//! clock — and removing one replica remaps only the keys it owned
//! (≤ ~1/N of the key space) to their ring successors.
//!
//! Health is deliberately *not* baked into the ring: the ring stays
//! static over the configured fleet and callers walk [`HashRing::successors`]
//! skipping unhealthy replicas. That keeps the remap-on-death behavior
//! structural (successor order is fixed) and makes routing decisions
//! reproducible in the chaos suite.

/// Identifies one backend replica by its position in the fleet config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u16);

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How requests map onto routing keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Hash the `user` query parameter: per-user cache affinity and the
    /// per-user epoch-monotonicity guarantee during rollouts.
    #[default]
    ByUser,
    /// Hash the `city` query parameter: all traffic for one city lands
    /// on one replica (useful when city catalogs are sharded).
    ByCity,
}

impl std::str::FromStr for PartitionMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "user" => Ok(PartitionMode::ByUser),
            "city" => Ok(PartitionMode::ByCity),
            other => Err(format!("unknown partition mode {other:?} (user|city)")),
        }
    }
}

/// A concrete routing key extracted from one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKey {
    /// Partition-by-user key.
    User(u32),
    /// Partition-by-city key.
    City(u16),
}

impl RouteKey {
    /// Stable 64-bit hash of the key, domain-separated per key kind so
    /// user 7 and city 7 land on unrelated ring points.
    pub fn hash(self) -> u64 {
        match self {
            RouteKey::User(u) => mix64(0x755b_a176_9d7f_3a21 ^ u as u64),
            RouteKey::City(c) => mix64(0xc3a5_c85c_97cb_3127 ^ c as u64),
        }
    }
}

/// SplitMix64 finalizer: cheap, stateless, well-distributed.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash point for virtual node `vnode` of `replica`.
fn vnode_point(replica: ReplicaId, vnode: u32) -> u64 {
    mix64(0x1234_5678_9abc_def0 ^ ((replica.0 as u64) << 32) ^ vnode as u64)
}

/// A static consistent-hash ring over the configured replica set.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, replica)` pairs; ties broken by replica id so the
    /// ring is a pure function of the member set.
    points: Vec<(u64, ReplicaId)>,
    /// Members in id order.
    members: Vec<ReplicaId>,
    /// Virtual nodes per replica.
    vnodes: u32,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per future member.
    pub fn new(vnodes: u32) -> Self {
        Self {
            points: Vec::new(),
            members: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// A ring over replicas `0..n`.
    pub fn with_members(n: u16, vnodes: u32) -> Self {
        let mut ring = Self::new(vnodes);
        for id in 0..n {
            ring.add(ReplicaId(id));
        }
        ring
    }

    /// Adds a replica's virtual nodes. Idempotent.
    pub fn add(&mut self, id: ReplicaId) {
        if self.members.contains(&id) {
            return;
        }
        self.members.push(id);
        self.members.sort();
        for vnode in 0..self.vnodes {
            self.points.push((vnode_point(id, vnode), id));
        }
        self.points.sort();
    }

    /// Removes a replica's virtual nodes. Idempotent.
    pub fn remove(&mut self, id: ReplicaId) {
        self.members.retain(|m| *m != id);
        self.points.retain(|(_, r)| *r != id);
    }

    /// Members in id order.
    pub fn members(&self) -> &[ReplicaId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The replica owning `hash`: the first ring point at or after it,
    /// wrapping at the top of the u64 space.
    pub fn assign(&self, hash: u64) -> Option<ReplicaId> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|(p, _)| *p < hash);
        let (_, id) = self.points[idx % self.points.len()];
        Some(id)
    }

    /// All members in ring-successor order starting at `hash`'s owner,
    /// each listed once. Callers skip unhealthy entries, which yields
    /// the minimal-remap property: keys of a dead replica move to the
    /// next distinct owner on the ring while everyone else's owner is
    /// untouched.
    pub fn successors(&self, hash: u64) -> Vec<ReplicaId> {
        let mut order = Vec::with_capacity(self.members.len());
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|(p, _)| *p < hash);
        for i in 0..self.points.len() {
            let (_, id) = self.points[(start + i) % self.points.len()];
            if !order.contains(&id) {
                order.push(id);
                if order.len() == self.members.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_is_deterministic_and_total() {
        let ring = HashRing::with_members(4, 64);
        for user in 0..200u32 {
            let h = RouteKey::User(user).hash();
            let a = ring.assign(h).unwrap();
            let b = ring.assign(h).unwrap();
            assert_eq!(a, b);
            assert!(ring.members().contains(&a));
            assert_eq!(ring.successors(h)[0], a);
        }
    }

    #[test]
    fn successors_cover_all_members_once() {
        let ring = HashRing::with_members(5, 32);
        let h = RouteKey::User(42).hash();
        let succ = ring.successors(h);
        assert_eq!(succ.len(), 5);
        let mut sorted = succ.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn removal_only_remaps_owned_keys() {
        let full = HashRing::with_members(4, 64);
        let mut reduced = full.clone();
        reduced.remove(ReplicaId(2));
        for user in 0..500u32 {
            let h = RouteKey::User(user).hash();
            let before = full.assign(h).unwrap();
            let after = reduced.assign(h).unwrap();
            if before != ReplicaId(2) {
                assert_eq!(before, after, "user {user} moved without need");
            } else {
                // Keys of the removed replica land on its ring successor.
                let succ = full.successors(h);
                let expect = succ.iter().find(|r| **r != ReplicaId(2)).unwrap();
                assert_eq!(after, *expect);
            }
        }
    }

    #[test]
    fn user_and_city_domains_are_separated() {
        assert_ne!(RouteKey::User(7).hash(), RouteKey::City(7).hash());
    }
}
